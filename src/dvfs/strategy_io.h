/**
 * @file
 * DVFS strategy serialisation.
 *
 * In the paper's production flow the DVFS Executor "reads the strategy
 * generated in the DVFS Strategy Generate phase" (Sect. 7.1): strategy
 * generation and execution are decoupled processes.  This module
 * persists a generated strategy - the candidate stages, the frequency
 * per stage, and the planned SetFreq triggers - as a line-oriented
 * text format, and loads it back for execution.
 *
 * Format (one record per line, '#' comments ignored):
 *
 *   strategy v1
 *   counts <stages> <triggers>
 *   stage <start_tick> <duration_tick> <mhz> <hfc|lfc>
 *   trigger <after_op_index> <mhz>
 *   initial <mhz>
 *
 * The optional `counts` record (always emitted by saveStrategy)
 * declares the expected record shape; a mismatch at load time means a
 * truncated or corrupted file.  Loading rejects non-finite, negative
 * and non-positive frequencies, negative stage timings and malformed
 * counts with descriptive errors instead of handing garbage to the
 * executor; validateStrategy() additionally pins every frequency to a
 * device table.
 */

#ifndef OPDVFS_DVFS_STRATEGY_IO_H
#define OPDVFS_DVFS_STRATEGY_IO_H

#include <iosfwd>
#include <string>
#include <vector>

#include "dvfs/executor.h"
#include "dvfs/preprocess.h"
#include "npu/freq_table.h"

namespace opdvfs::dvfs {

/** A generated strategy, ready to persist or execute. */
struct Strategy
{
    /** Stage boundaries (timing + kind only; op lists not persisted). */
    std::vector<Stage> stages;
    /** Chosen frequency per stage, MHz. */
    std::vector<double> mhz_per_stage;
    /** Planned SetFreq triggers (Fig. 14 placements). */
    ExecutionPlan plan;

    /** Number of distinct frequency changes per iteration. */
    std::size_t triggerCount() const { return plan.triggers.size(); }
};

/** Serialise @p strategy to the text format. */
void saveStrategy(const Strategy &strategy, std::ostream &os);

/**
 * Parse a strategy from the text format.
 * @throws std::invalid_argument on malformed input: bad header,
 *         unknown record, field count/shape errors, non-finite or
 *         non-positive frequencies, negative stage timings, or a
 *         `counts` declaration that does not match the records.
 *
 * When @p table is non-null the loaded strategy is additionally
 * checked against the device (validateStrategy).
 */
Strategy loadStrategy(std::istream &is,
                      const npu::FreqTable *table = nullptr);

/**
 * Check @p strategy against a device frequency table: every stage,
 * trigger and initial frequency must be a supported operating point,
 * and stage/frequency vectors must have matching shapes.
 * @throws std::invalid_argument with a descriptive message otherwise.
 */
void validateStrategy(const Strategy &strategy,
                      const npu::FreqTable &table);

/** Convenience: round-trip through files. */
void saveStrategyFile(const Strategy &strategy, const std::string &path);
Strategy loadStrategyFile(const std::string &path,
                          const npu::FreqTable *table = nullptr);

} // namespace opdvfs::dvfs

#endif // OPDVFS_DVFS_STRATEGY_IO_H
