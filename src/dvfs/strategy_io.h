/**
 * @file
 * DVFS strategy serialisation.
 *
 * In the paper's production flow the DVFS Executor "reads the strategy
 * generated in the DVFS Strategy Generate phase" (Sect. 7.1): strategy
 * generation and execution are decoupled processes.  This module
 * persists a generated strategy - the candidate stages, the frequency
 * per stage, and the planned SetFreq triggers - as a line-oriented
 * text format, and loads it back for execution.
 *
 * Format (one record per line, '#' comments ignored):
 *
 *   strategy v1
 *   stage <start_tick> <duration_tick> <mhz> <hfc|lfc>
 *   trigger <after_op_index> <mhz>
 *   initial <mhz>
 */

#ifndef OPDVFS_DVFS_STRATEGY_IO_H
#define OPDVFS_DVFS_STRATEGY_IO_H

#include <iosfwd>
#include <string>
#include <vector>

#include "dvfs/executor.h"
#include "dvfs/preprocess.h"

namespace opdvfs::dvfs {

/** A generated strategy, ready to persist or execute. */
struct Strategy
{
    /** Stage boundaries (timing + kind only; op lists not persisted). */
    std::vector<Stage> stages;
    /** Chosen frequency per stage, MHz. */
    std::vector<double> mhz_per_stage;
    /** Planned SetFreq triggers (Fig. 14 placements). */
    ExecutionPlan plan;

    /** Number of distinct frequency changes per iteration. */
    std::size_t triggerCount() const { return plan.triggers.size(); }
};

/** Serialise @p strategy to the text format. */
void saveStrategy(const Strategy &strategy, std::ostream &os);

/**
 * Parse a strategy from the text format.
 * @throws std::invalid_argument on malformed input (bad header,
 *         unknown record, field count/shape errors).
 */
Strategy loadStrategy(std::istream &is);

/** Convenience: round-trip through files. */
void saveStrategyFile(const Strategy &strategy, const std::string &path);
Strategy loadStrategyFile(const std::string &path);

} // namespace opdvfs::dvfs

#endif // OPDVFS_DVFS_STRATEGY_IO_H
