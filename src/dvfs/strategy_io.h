/**
 * @file
 * DVFS strategy serialisation.
 *
 * In the paper's production flow the DVFS Executor "reads the strategy
 * generated in the DVFS Strategy Generate phase" (Sect. 7.1): strategy
 * generation and execution are decoupled processes.  This module
 * persists a generated strategy - the candidate stages, the frequency
 * per stage, and the planned SetFreq triggers - as a line-oriented
 * text format, and loads it back for execution.
 *
 * Format (one record per line, '#' comments ignored):
 *
 *   strategy v1
 *   counts <stages> <triggers>
 *   meta score <best> <pre_refine> <converged_at> <generations>
 *   meta provenance <token> <fingerprint-hex>
 *   stage <start_tick> <duration_tick> <mhz> <hfc|lfc>
 *   trigger <after_op_index> <mhz>
 *   initial <mhz>
 *
 * The optional `meta` records carry the search provenance alongside
 * the strategy (Eq. 17 score, generation budget, how the strategy
 * service produced it and for which workload fingerprint), so cached
 * service entries survive persistence and reload with their scores.
 *
 * The optional `counts` record (always emitted by saveStrategy)
 * declares the expected record shape; a mismatch at load time means a
 * truncated or corrupted file.  Loading rejects non-finite, negative
 * and non-positive frequencies, negative stage timings and malformed
 * counts with descriptive errors instead of handing garbage to the
 * executor; validateStrategy() additionally pins every frequency to a
 * device table.
 */

#ifndef OPDVFS_DVFS_STRATEGY_IO_H
#define OPDVFS_DVFS_STRATEGY_IO_H

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "dvfs/executor.h"
#include "dvfs/preprocess.h"
#include "npu/freq_table.h"

namespace opdvfs::dvfs {

/**
 * Search provenance persisted alongside a strategy: what the GA
 * scored it at and where it came from.  `provenance` is a single
 * whitespace-free token, by convention one of "cold", "warm-start",
 * "exact-hit" (strategy-service paths) or "unknown".
 */
struct StrategyMeta
{
    /** Eq. 17 score of the persisted strategy. */
    double score = 0.0;
    /** Score before the memetic refinement pass. */
    double pre_refine_score = 0.0;
    /** Generation at which the best score was first reached. */
    int converged_at = 0;
    /** Generation budget the search ran with. */
    int generations = 0;
    /** How the strategy was produced (single token, no whitespace). */
    std::string provenance = "unknown";
    /** Workload fingerprint digest the strategy was generated for. */
    std::uint64_t fingerprint = 0;
};

/** A generated strategy, ready to persist or execute. */
struct Strategy
{
    /** Stage boundaries (timing + kind only; op lists not persisted). */
    std::vector<Stage> stages;
    /** Chosen frequency per stage, MHz. */
    std::vector<double> mhz_per_stage;
    /** Planned SetFreq triggers (Fig. 14 placements). */
    ExecutionPlan plan;
    /** Optional search provenance (persisted when present). */
    std::optional<StrategyMeta> meta;

    /** Number of distinct frequency changes per iteration. */
    std::size_t triggerCount() const { return plan.triggers.size(); }
};

/** Serialise @p strategy to the text format. */
void saveStrategy(const Strategy &strategy, std::ostream &os);

/**
 * Parse a strategy from the text format.
 * @throws std::invalid_argument on malformed input: bad header,
 *         unknown record, field count/shape errors, non-finite or
 *         non-positive frequencies, negative stage timings, or a
 *         `counts` declaration that does not match the records.
 *
 * When @p table is non-null the loaded strategy is additionally
 * checked against the device (validateStrategy).
 */
Strategy loadStrategy(std::istream &is,
                      const npu::FreqTable *table = nullptr);

/**
 * Check @p strategy against a device frequency table: every stage,
 * trigger and initial frequency must be a supported operating point,
 * and stage/frequency vectors must have matching shapes.
 * @throws std::invalid_argument with a descriptive message otherwise.
 */
void validateStrategy(const Strategy &strategy,
                      const npu::FreqTable &table);

/** Convenience: round-trip through files. */
void saveStrategyFile(const Strategy &strategy, const std::string &path);
Strategy loadStrategyFile(const std::string &path,
                          const npu::FreqTable *table = nullptr);

} // namespace opdvfs::dvfs

#endif // OPDVFS_DVFS_STRATEGY_IO_H
