/**
 * @file
 * The DVFS Executor (paper Sect. 7.1, Fig. 14): turns a per-stage
 * frequency strategy into SetFreq trigger placements.
 *
 * Frequency changes must land at stage boundaries.  The executor
 * subtracts the (assumed) SetFreq latency from each adjustment time
 * point and selects the last operator completing before the resulting
 * time as the trigger: when that operator finishes, a SetFreq operator
 * is dispatched on the dedicated stream, synchronised by event
 * record/wait, and takes effect right at the boundary.  Strategies
 * apply cyclically across iterations, so the change into stage 0 is
 * triggered near the end of the previous iteration.
 *
 * The Fig. 18 V100 ablation is expressed by configuring the chip with
 * a larger true SetFreq latency than the executor assumes.
 */

#ifndef OPDVFS_DVFS_EXECUTOR_H
#define OPDVFS_DVFS_EXECUTOR_H

#include <vector>

#include "dvfs/preprocess.h"
#include "trace/workload_runner.h"

namespace opdvfs::dvfs {

/** Executor planning knobs. */
struct ExecutorOptions
{
    /** SetFreq latency the executor compensates for (paper: 1 ms). */
    Tick assumed_set_freq_latency = kTicksPerMs;
};

/** A planned strategy, ready for the workload runner. */
struct ExecutionPlan
{
    std::vector<trace::SetFreqTrigger> triggers;
    /** Frequency the iteration starts at (the cyclic steady state). */
    double initial_mhz = 1800.0;
};

/**
 * Plan SetFreq triggers for @p mhz_per_stage over the profiled
 * baseline timeline (@p records supply per-operator timings).
 */
ExecutionPlan planExecution(const std::vector<Stage> &stages,
                            const std::vector<double> &mhz_per_stage,
                            const std::vector<trace::OpRecord> &records,
                            const ExecutorOptions &options = {});

} // namespace opdvfs::dvfs

#endif // OPDVFS_DVFS_EXECUTOR_H
