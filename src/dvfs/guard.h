/**
 * @file
 * Runtime DVFS guard: the safety net between a generated strategy and
 * a misbehaving device.
 *
 * The strategy generator proves (on its models) that the strategy
 * stays within `perf_loss_target`; the guard enforces it at runtime.
 * It watches each iteration's measured wall time and die temperature
 * against the profiled baseline:
 *
 *  - every planned SetFreq is verified after its apply latency and
 *    re-issued with bounded exponential backoff when the firmware
 *    dropped it;
 *  - a throttled device that violates its envelope gets a DVFS
 *    governor reset (clears latched/spurious firmware clamps);
 *  - after `violation_limit` consecutive violating iterations the
 *    guard falls back to the maximum frequency with the strategy
 *    disabled, and re-enables it only after `reenable_after` clean
 *    iterations (hysteresis, so a persistent fault cannot make the
 *    system flap).
 *
 * Temperature observations come from the (faultable) telemetry
 * channel; the guard median-filters them per iteration so a spiked
 * sample cannot trigger a false fallback, and holds the last good
 * reading through blackouts.
 */

#ifndef OPDVFS_DVFS_GUARD_H
#define OPDVFS_DVFS_GUARD_H

#include <cstdint>
#include <vector>

#include "models/workload.h"
#include "npu/npu_chip.h"
#include "trace/workload_runner.h"

namespace opdvfs::dvfs {

/** Guard tuning knobs. */
struct GuardOptions
{
    /** Master switch; disabled = observe-only (no repair actions). */
    bool enabled = true;
    /** Allowed relative performance loss (mirrors the pipeline's). */
    double perf_loss_target = 0.02;
    /** An iteration violates when loss > violation_factor * target. */
    double violation_factor = 2.0;
    /** Consecutive violating iterations before strategy fallback. */
    int violation_limit = 1;
    /** Clean fallback iterations before the strategy is re-enabled. */
    int reenable_after = 4;
    /** Die-temperature envelope; readings above it are violations. */
    double max_temperature_c = 100.0;
    /** Verification retries per planned SetFreq. */
    int set_freq_retries = 3;
    /** Initial retry backoff; doubles on every attempt. */
    Tick retry_backoff = kTicksPerMs / 2;
};

/** Guard control state. */
enum class GuardState
{
    /** Strategy active, watchdog armed. */
    Monitoring,
    /** Strategy disabled, device held at maximum frequency. */
    Fallback,
};

/** One iteration's measurements, as the guard sees them. */
struct GuardObservation
{
    double iteration_seconds = 0.0;
    /** Median filtered telemetry temperature (spike-robust). */
    double temperature_c = 0.0;
    /** False when telemetry blacked out for the whole iteration. */
    bool telemetry_ok = true;
    /** Firmware throttle engaged at any point of the iteration. */
    bool throttled = false;
};

/** Guard action/event counters. */
struct GuardStats
{
    std::uint64_t perf_violations = 0;
    std::uint64_t thermal_violations = 0;
    std::uint64_t fallbacks = 0;
    std::uint64_t reenables = 0;
    std::uint64_t throttle_resets = 0;
    std::uint64_t set_freq_retries = 0;
    /** SetFreqs still wrong after the retry budget. */
    std::uint64_t set_freq_abandoned = 0;
    std::uint64_t telemetry_gaps = 0;
    /** Forced safe-frequency holds (model recalibration swaps). */
    std::uint64_t safe_holds = 0;
    /** Baseline replacements after a model recalibration. */
    std::uint64_t rebases = 0;
};

/**
 * The iteration-level watchdog state machine.  Pure logic: callers
 * feed observations and act on the returned state; all device
 * interaction (retry wiring, governor resets) lives in runGuarded()
 * and the cluster runner.
 */
class DvfsGuard
{
  public:
    DvfsGuard(const GuardOptions &options,
              double baseline_iteration_seconds);

    /**
     * Feed one iteration's measurements; returns the state the NEXT
     * iteration must run under.  With the guard disabled this only
     * records statistics and never leaves Monitoring.
     */
    GuardState observe(const GuardObservation &observation);

    GuardState state() const { return state_; }

    /** True when the next iteration should apply the strategy. */
    bool strategyEnabled() const
    {
        return state_ == GuardState::Monitoring;
    }

    /**
     * True when the last observation warrants a DVFS governor reset
     * (device throttled while violating its envelope).
     */
    bool wantsThrottleReset() const { return wants_throttle_reset_; }

    /**
     * Force Fallback (device at maximum frequency, strategy disabled)
     * for the next @p iterations observations regardless of what they
     * measure.  Used while the calibration layer swaps model
     * coefficients: the chip must sit at a safe operating point until
     * a strategy consistent with the new models is in place.
     */
    void holdSafe(int iterations);

    /** True while a holdSafe() window is still running down. */
    bool safeHoldActive() const { return safe_hold_remaining_ > 0; }

    /**
     * Replace the baseline iteration time the loss is measured
     * against (the recalibrated perf model's prediction).  Clears the
     * violation/hysteresis counters so stale history cannot trip the
     * fresh baseline.
     */
    void rebase(double baseline_iteration_seconds);

    /** Relative loss of the last observed iteration. */
    double lastLoss() const { return last_loss_; }

    double baselineSeconds() const { return baseline_seconds_; }
    const GuardOptions &options() const { return options_; }
    const GuardStats &stats() const { return stats_; }
    /** Mutable: the SetFreq retry wiring records its counters here. */
    GuardStats &mutableStats() { return stats_; }

  private:
    GuardOptions options_;
    double baseline_seconds_;
    GuardState state_ = GuardState::Monitoring;
    int consecutive_violations_ = 0;
    int clean_in_fallback_ = 0;
    /** Remaining forced-Fallback observations from holdSafe(). */
    int safe_hold_remaining_ = 0;
    bool wants_throttle_reset_ = false;
    double last_loss_ = 0.0;
    /** Last trusted temperature, held through telemetry blackouts. */
    double last_temperature_c_ = 0.0;
    bool have_temperature_ = false;
    GuardStats stats_;
};

/**
 * Issue a SetFreq on @p chip and verify it landed: once the SetFreq
 * stream executes the command, the granted frequency must equal the
 * snapped target (or the device must be firmware-throttled, which a
 * retry cannot fix).  On mismatch the command is re-issued after an
 * exponentially growing backoff, at most @p retries times; retries
 * and abandonments are recorded in @p stats.
 */
void enqueueGuardedSetFreq(npu::NpuChip &chip, double mhz, int retries,
                           Tick backoff, GuardStats &stats);

/** Options for a guarded multi-iteration measurement. */
struct GuardedRunOptions
{
    GuardOptions guard;
    /** Measured iterations (after warm-up). */
    int iterations = 16;
    /** Chip-construction / noise / seed options for the run. */
    trace::RunOptions run;
};

/** One measured iteration under the guard. */
struct GuardedIteration
{
    double seconds = 0.0;
    /** Relative loss vs the profiled baseline. */
    double loss = 0.0;
    double temperature_c = 0.0;
    bool telemetry_ok = true;
    bool throttled = false;
    /** Whether the strategy's triggers were applied this iteration. */
    bool strategy_active = true;
    GuardState state_after = GuardState::Monitoring;
    std::uint64_t set_freq_count = 0;
};

/** Everything a guarded run measured. */
struct GuardedRunResult
{
    std::vector<GuardedIteration> iterations;
    double baseline_seconds = 0.0;
    GuardStats guard;
    /** Injection bookkeeping (zeros when no fault was configured). */
    npu::FaultCounters faults;

    /** Mean relative loss across the measured iterations. */
    double meanLoss() const;
    /** Worst single-iteration loss. */
    double worstLoss() const;
};

/**
 * Run @p workload for `options.iterations` measured iterations on one
 * chip built from @p chip_config (faults included), applying
 * @p triggers each iteration while the guard allows and falling back
 * to the maximum frequency when it does not.  @p baseline_seconds is
 * the fault-free baseline iteration time the watchdog compares
 * against.
 */
GuardedRunResult runGuarded(const npu::NpuConfig &chip_config,
                            const models::Workload &workload,
                            const std::vector<trace::SetFreqTrigger>
                                &triggers,
                            double baseline_seconds,
                            const GuardedRunOptions &options);

} // namespace opdvfs::dvfs

#endif // OPDVFS_DVFS_GUARD_H
