#include "dvfs/pipeline.h"

#include <algorithm>
#include <stdexcept>

#include "power/online_calibration.h"
#include "power/power_model.h"
#include "trace/workload_runner.h"

namespace opdvfs::dvfs {

double
PipelineResult::perfLoss() const
{
    return dvfs.iteration_seconds / baseline.iteration_seconds - 1.0;
}

double
PipelineResult::aicoreReduction() const
{
    return 1.0 - dvfs.aicore_avg_w / baseline.aicore_avg_w;
}

double
PipelineResult::socReduction() const
{
    return 1.0 - dvfs.soc_avg_w / baseline.soc_avg_w;
}

Strategy
PipelineResult::strategy() const
{
    Strategy out;
    out.stages = prep.stages;
    out.mhz_per_stage = ga.best_mhz;
    out.plan = plan;
    return out;
}

PreparedWorkload
EnergyPipeline::prepare(const models::Workload &workload) const
{
    PreparedWorkload prepared;
    npu::FreqTable table(options_.chip.freq);
    trace::WorkloadRunner runner(options_.chip);

    // --- power-model construction: offline half (Fig. 11) ----------------
    prepared.constants = options_.constants
        ? *options_.constants
        : power::calibrateOffline(options_.chip);
    power::PowerModel power_model(prepared.constants, table);

    // --- profiling runs at the model-building frequencies ----------------
    if (options_.profile_freqs_mhz.size() < 2)
        throw std::invalid_argument("EnergyPipeline: need >= 2 profile "
                                    "frequencies");

    perf::PerfModelRepository perf_repo;
    power::OnlinePowerCalibrator online(power_model);

    double max_profile_freq = *std::max_element(
        options_.profile_freqs_mhz.begin(), options_.profile_freqs_mhz.end());

    for (double f : options_.profile_freqs_mhz) {
        trace::RunOptions run_options;
        run_options.initial_mhz = f;
        run_options.warmup_seconds = options_.warmup_seconds;
        run_options.sample_period = options_.profile_sample_period;
        run_options.seed =
            options_.seed * 31 + static_cast<std::uint64_t>(f);
        trace::RunResult run = runner.run(workload, run_options);

        perf_repo.addProfile(f, run.records);
        online.addRun(run);
        if (f == max_profile_freq)
            prepared.baseline = run;
    }

    perf::PerfBuildOptions perf_options;
    perf_options.kind = options_.fit_kind;
    perf_repo.fitAll(perf_options);
    prepared.perf_models = std::move(perf_repo);

    prepared.op_power = online.perOpModels();

    // --- classification + preprocessing (Sect. 6.1/6.2) -------------------
    prepared.prep = preprocess(prepared.baseline.records,
                               options_.preprocess);
    return prepared;
}

PipelineResult
EnergyPipeline::optimize(const models::Workload &workload) const
{
    PipelineResult result;
    npu::FreqTable table(options_.chip.freq);
    trace::WorkloadRunner runner(options_.chip);

    PreparedWorkload prepared = prepare(workload);
    result.constants = prepared.constants;
    result.baseline = std::move(prepared.baseline);
    result.perf_models = std::move(prepared.perf_models);
    result.op_power = std::move(prepared.op_power);
    result.prep = std::move(prepared.prep);

    power::PowerModel power_model(result.constants, table);

    // --- genetic strategy search (Sect. 6.3) ------------------------------
    StageEvaluator evaluator(result.prep.stages, result.perf_models,
                             power_model, result.op_power, table);
    GaOptions ga_options = options_.ga;
    ga_options.perf_loss_target = options_.perf_loss_target;
    ga_options.seed =
        options_.ga_seed ? *options_.ga_seed : options_.seed * 7 + 13;
    result.ga = searchStrategy(evaluator, result.prep.stages, ga_options);

    // --- execute the strategy (Sect. 7.1) ---------------------------------
    result.plan = planExecution(result.prep.stages, result.ga.best_mhz,
                                result.baseline.records, options_.executor);

    trace::RunOptions dvfs_options;
    dvfs_options.initial_mhz = result.plan.initial_mhz;
    dvfs_options.warmup_seconds = options_.warmup_seconds;
    dvfs_options.seed = options_.seed * 131 + 7;
    result.dvfs = runner.run(workload, dvfs_options, result.plan.triggers);

    // --- optional guarded assessment (faults honoured) --------------------
    if (options_.assess_guarded) {
        GuardedRunOptions guarded_options;
        guarded_options.guard = options_.guard;
        guarded_options.guard.perf_loss_target = options_.perf_loss_target;
        guarded_options.iterations = options_.guarded_iterations;
        guarded_options.run = dvfs_options;
        guarded_options.run.initial_mhz = result.plan.initial_mhz;
        result.guarded = runGuarded(options_.chip, workload,
                                    result.plan.triggers,
                                    result.baseline.iteration_seconds,
                                    guarded_options);
    }

    return result;
}

} // namespace opdvfs::dvfs
