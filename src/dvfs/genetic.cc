#include "dvfs/genetic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace opdvfs::dvfs {

namespace {

/** Index of the supported frequency closest to @p mhz. */
std::uint8_t
closestIndex(const std::vector<double> &freqs, double mhz)
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < freqs.size(); ++i) {
        if (std::abs(freqs[i] - mhz) < std::abs(freqs[best] - mhz))
            best = i;
    }
    return static_cast<std::uint8_t>(best);
}

/**
 * Convert a prior strategy (MHz per stage, possibly for a different
 * stage count) to a genome of length @p n: nearest-position resampling
 * over stage index, then snap each frequency to the table.
 */
std::vector<std::uint8_t>
genomeFromPrior(const std::vector<double> &prior_mhz, std::size_t n,
                const std::vector<double> &freqs)
{
    if (prior_mhz.empty())
        throw std::invalid_argument("searchStrategy: empty prior "
                                    "individual");
    std::vector<std::uint8_t> genome(n);
    for (std::size_t s = 0; s < n; ++s) {
        std::size_t src = n == 1 ? 0 : s * prior_mhz.size() / n;
        if (src >= prior_mhz.size())
            src = prior_mhz.size() - 1;
        genome[s] = closestIndex(freqs, prior_mhz[src]);
    }
    return genome;
}

} // namespace

double
strategyScore(const StrategyEvaluation &eval, double perf_lower_bound)
{
    if (eval.seconds <= 0.0 || eval.soc_watts <= 0.0)
        return 0.0;
    // Performance as iterations per microsecond, matching the e-16
    // score scale of Fig. 17.
    double per = 1e-6 / eval.seconds;
    double score = per * per / eval.soc_watts;
    // Eq. 17: meeting the bound doubles the score; missing it is the
    // penalty branch.
    return per >= perf_lower_bound ? 2.0 * score : score;
}

GaResult
searchStrategy(const StageEvaluator &evaluator,
               const std::vector<Stage> &stages, const GaOptions &options)
{
    if (stages.size() != evaluator.stageCount())
        throw std::invalid_argument("searchStrategy: stage mismatch");
    if (options.population < 2 || options.generations < 1)
        throw std::invalid_argument("searchStrategy: bad GA options");

    const std::size_t n = evaluator.stageCount();
    const auto &freqs = evaluator.frequenciesMhz();
    const auto max_index = static_cast<std::uint8_t>(freqs.size() - 1);
    Rng rng(options.seed);

    GaResult result;
    result.baseline_eval = evaluator.evaluateBaseline();
    double per_baseline = 1e-6 / result.baseline_eval.seconds;
    double per_lb = per_baseline * (1.0 - options.perf_loss_target);

    using Genome = std::vector<std::uint8_t>;

    // --- first generation -------------------------------------------------
    std::vector<Genome> population;
    population.reserve(static_cast<std::size_t>(options.population));
    population.emplace_back(n, max_index); // baseline individual

    auto makePrior = [&](std::uint8_t lfc, std::uint8_t hfc) {
        Genome prior(n, max_index);
        for (std::size_t s = 0; s < n; ++s)
            prior[s] = stages[s].high_frequency ? hfc : lfc;
        return prior;
    };
    population.push_back(
        makePrior(closestIndex(freqs, options.prior_lfc_mhz),
                  closestIndex(freqs, options.prior_hfc_mhz)));
    if (options.multi_level_priors) {
        for (std::uint8_t lfc = 0; lfc <= max_index; ++lfc) {
            if (population.size()
                < static_cast<std::size_t>(options.population)) {
                population.push_back(makePrior(lfc, max_index));
            }
        }
    }
    // Warm-start priors (e.g. cached strategies of similar workloads)
    // join generation 0 like any other individual; a bad prior simply
    // dies off, a good one pulls convergence forward.
    for (const auto &prior_mhz : options.prior_individuals) {
        if (population.size() >= static_cast<std::size_t>(options.population))
            break;
        population.push_back(genomeFromPrior(prior_mhz, n, freqs));
    }

    while (population.size() < static_cast<std::size_t>(options.population)) {
        Genome g(n);
        for (auto &gene : g)
            gene = static_cast<std::uint8_t>(rng.index(freqs.size()));
        population.push_back(std::move(g));
    }

    // --- evolution ---------------------------------------------------------
    std::vector<double> scores(population.size());
    std::vector<StrategyEvaluation> evals(population.size());
    result.best_score = -1.0;

    // Score every individual, in parallel when a loop is injected.
    // Each index writes only its own slot; the best-individual
    // reduction below runs serially in ascending index order, so
    // selection is independent of evaluation order and thread count.
    auto scoreAll = [&](const std::vector<Genome> &individuals,
                        const std::vector<GenomeLineage> &lineage) {
        if (options.fitness_backend) {
            options.fitness_backend->scoreGeneration(
                individuals, lineage, per_lb, options.parallel_for,
                scores, evals);
            return;
        }
        auto scoreOne = [&](std::size_t i) {
            evals[i] = evaluator.evaluate(individuals[i]);
            scores[i] = strategyScore(evals[i], per_lb);
        };
        if (options.parallel_for) {
            options.parallel_for(individuals.size(), scoreOne);
        } else {
            for (std::size_t i = 0; i < individuals.size(); ++i)
                scoreOne(i);
        }
    };

    // Generation 0 has no parents: every individual is a full build.
    std::vector<GenomeLineage> lineage(population.size());

    for (int gen = 0; gen < options.generations; ++gen) {
        scoreAll(population, lineage);
        for (std::size_t i = 0; i < population.size(); ++i) {
            if (scores[i] > result.best_score) {
                result.best_score = scores[i];
                result.best_genome = population[i];
                result.best_eval = evals[i];
                result.converged_at = gen;
            }
        }
        result.score_history.push_back(result.best_score);

        // Rank for elitism.
        std::vector<std::size_t> order(population.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&scores](std::size_t a, std::size_t b) {
                      return scores[a] > scores[b];
                  });

        std::vector<Genome> next;
        std::vector<GenomeLineage> next_lineage;
        next.reserve(population.size());
        next_lineage.reserve(population.size());
        for (int e = 0; e < options.elite
             && e < static_cast<int>(order.size()); ++e) {
            std::size_t slot = order[static_cast<std::size_t>(e)];
            next.push_back(population[slot]);
            // An elite is its parent verbatim: no dirty spans.
            next_lineage.push_back(GenomeLineage{slot, {}});
        }

        while (next.size() < population.size()) {
            std::size_t ia = rng.weightedIndex(scores);
            std::size_t ib = rng.weightedIndex(scores);
            Genome a = population[ia];
            Genome b = population[ib];
            GenomeLineage la{ia, {}};
            GenomeLineage lb{ib, {}};

            // Tail-swap crossover (Sect. 6.3.3): exchange the last k
            // frequency settings.
            if (n > 1 && rng.chance(options.crossover_rate)) {
                std::size_t k = rng.index(n - 1) + 1;
                for (std::size_t s = n - k; s < n; ++s)
                    std::swap(a[s], b[s]);
                la.dirty.push_back(GeneSpan{n - k, n});
                lb.dirty.push_back(GeneSpan{n - k, n});
            }

            for (auto [child, lin] : {std::pair{&a, &la},
                                      std::pair{&b, &lb}}) {
                if (rng.chance(options.mutation_rate)) {
                    std::size_t at = rng.index(n);
                    (*child)[at] =
                        static_cast<std::uint8_t>(rng.index(freqs.size()));
                    lin->dirty.push_back(GeneSpan{at, at + 1});
                }
                // Block mutation: neighbouring stages carry similar
                // bottlenecks, so moving a contiguous run together
                // explores the space far faster than point moves.
                if (rng.chance(options.block_mutation_rate)) {
                    std::size_t start = rng.index(n);
                    std::size_t len = rng.index(std::min<std::size_t>(
                                          n - start, 64)) + 1;
                    auto value = static_cast<std::uint8_t>(
                        rng.index(freqs.size()));
                    for (std::size_t s = start; s < start + len; ++s)
                        (*child)[s] = value;
                    lin->dirty.push_back(GeneSpan{start, start + len});
                }
                if (next.size() < population.size()) {
                    next.push_back(std::move(*child));
                    next_lineage.push_back(std::move(*lin));
                }
            }
        }
        population = std::move(next);
        lineage = std::move(next_lineage);
    }

    // Memetic refinement: single-gene hill climbing from the GA's best
    // individual (library extension; disable with refine_sweeps = 0).
    result.pre_refine_score = result.best_score;
    for (int sweep = 0; sweep < options.refine_sweeps; ++sweep) {
        bool improved = false;
        for (std::size_t s = 0; s < n; ++s) {
            for (int step : {-1, +1}) {
                int gene = static_cast<int>(result.best_genome[s]) + step;
                if (gene < 0 || gene > static_cast<int>(max_index))
                    continue;
                Genome candidate = result.best_genome;
                candidate[s] = static_cast<std::uint8_t>(gene);
                StrategyEvaluation eval;
                double score;
                if (options.fitness_backend) {
                    // Probe through the backend so refinement scores
                    // are bit-consistent with the generation scores
                    // they compete against.
                    options.fitness_backend->scoreOne(candidate, per_lb,
                                                      score, eval);
                } else {
                    eval = evaluator.evaluate(candidate);
                    score = strategyScore(eval, per_lb);
                }
                if (score > result.best_score) {
                    result.best_score = score;
                    result.best_genome = std::move(candidate);
                    result.best_eval = eval;
                    improved = true;
                }
            }
        }
        if (!improved)
            break;
    }

    result.best_mhz.reserve(n);
    for (std::uint8_t gene : result.best_genome)
        result.best_mhz.push_back(freqs[gene]);
    return result;
}

} // namespace opdvfs::dvfs
