/**
 * @file
 * Fast per-stage strategy evaluation for the genetic search
 * (Sect. 6.3.2 and the Sect. 8.1 argument for model-based scoring).
 *
 * Construction precomputes, for every (stage, frequency) pair, the
 * predicted stage duration and the temperature-independent AICore and
 * SoC energies from the performance and power models.  Evaluating one
 * strategy is then a single pass over stages plus the global
 * temperature fix point (Sect. 5.4.2), giving the microsecond-scale
 * policy evaluation the paper relies on to score hundreds of thousands
 * of candidates.
 */

#ifndef OPDVFS_DVFS_EVALUATOR_H
#define OPDVFS_DVFS_EVALUATOR_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dvfs/preprocess.h"
#include "npu/freq_table.h"
#include "perf/perf_model.h"
#include "power/online_calibration.h"
#include "power/power_model.h"

namespace opdvfs::dvfs {

/** Predicted behaviour of one strategy. */
struct StrategyEvaluation
{
    double seconds = 0.0;
    double aicore_joules = 0.0;
    double soc_joules = 0.0;
    double aicore_watts = 0.0;
    double soc_watts = 0.0;
    double delta_t = 0.0;
};

/** Precomputed per-stage/per-frequency model tables. */
class StageEvaluator
{
  public:
    /**
     * @param stages       preprocessing output
     * @param perf         fitted per-operator performance models
     * @param power        calibrated power model (constants)
     * @param op_power     per-operator activity factors
     * @param table        supported frequency points
     */
    StageEvaluator(
        const std::vector<Stage> &stages,
        const perf::PerfModelRepository &perf,
        const power::PowerModel &power,
        const std::unordered_map<std::uint64_t, power::OpPowerModel>
            &op_power,
        const npu::FreqTable &table);

    /** Number of stages (genome length). */
    std::size_t stageCount() const { return stage_count_; }

    /** Number of supported frequency points (gene alphabet size). */
    std::size_t freqCount() const { return freqs_mhz_.size(); }

    /** Supported frequencies in MHz, ascending. */
    const std::vector<double> &frequenciesMhz() const { return freqs_mhz_; }

    /** Evaluate one strategy: a frequency index per stage. */
    StrategyEvaluation
    evaluate(const std::vector<std::uint8_t> &freq_index_per_stage) const;

    /** Evaluate the all-max-frequency baseline. */
    StrategyEvaluation evaluateBaseline() const;

    /** Precomputed per-(stage, frequency) contributions.  Public so
     *  external fitness backends (tune::IncrementalFitness) and the
     *  surrogate's feasibility repair can reuse the tables instead of
     *  rebuilding the models. */
    struct Cell
    {
        double seconds = 0.0;
        /** Energy without the gamma dT V term, J. */
        double aicore_joules_no_t = 0.0;
        double soc_joules_no_t = 0.0;
        /** Voltage-seconds, for the time-weighted mean voltage. */
        double volt_seconds = 0.0;
    };

    /** The (stage, frequency) table cell. */
    const Cell &
    cellAt(std::size_t stage, std::size_t freq) const
    {
        return cells_[stage * freqs_mhz_.size() + freq];
    }

    /** Thermal/power constants of the temperature fix point. */
    double gammaAicore() const { return gamma_aicore_; }
    double gammaSoc() const { return gamma_soc_; }
    double kPerWatt() const { return k_per_watt_; }

  private:
    const Cell &
    cell(std::size_t stage, std::size_t freq) const
    {
        return cells_[stage * freqs_mhz_.size() + freq];
    }

    std::size_t stage_count_ = 0;
    std::vector<double> freqs_mhz_;
    std::vector<Cell> cells_;
    double gamma_aicore_ = 0.0;
    double gamma_soc_ = 0.0;
    double k_per_watt_ = 0.0;
};

} // namespace opdvfs::dvfs

#endif // OPDVFS_DVFS_EVALUATOR_H
