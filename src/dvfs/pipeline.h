/**
 * @file
 * The end-to-end energy-optimisation pipeline of paper Fig. 1:
 *
 *   profile the workload -> build performance and power models ->
 *   classify + preprocess -> genetic strategy search -> execute the
 *   strategy with fine-grained SetFreq -> measure.
 *
 * This is the library's top-level entry point; the Table 3 / Fig. 18
 * benches and the examples all drive it.
 */

#ifndef OPDVFS_DVFS_PIPELINE_H
#define OPDVFS_DVFS_PIPELINE_H

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dvfs/executor.h"
#include "dvfs/genetic.h"
#include "dvfs/guard.h"
#include "dvfs/preprocess.h"
#include "dvfs/strategy_io.h"
#include "models/workload.h"
#include "npu/npu_chip.h"
#include "perf/perf_model.h"
#include "power/offline_calibration.h"
#include "power/online_calibration.h"

namespace opdvfs::dvfs {

/** Pipeline configuration. */
struct PipelineOptions
{
    /** The device under optimisation. */
    npu::NpuConfig chip;
    /** Allowed relative performance loss. */
    double perf_loss_target = 0.02;
    PreprocessOptions preprocess;
    /**
     * GA hyper-parameters.  `ga.seed` is *not* used by the pipeline:
     * the search seed is derived from `seed` below unless `ga_seed`
     * pins it explicitly (seed-forwarding audit: a request-supplied
     * seed reproduces the same GaResult through every path).
     */
    GaOptions ga;
    /** When set, the GA uses exactly this seed instead of the
     *  `seed`-derived one. */
    std::optional<std::uint64_t> ga_seed;
    ExecutorOptions executor;
    perf::FitFunction fit_kind = perf::FitFunction::QuadOverF;
    /** Frequencies profiled to build the models (Sect. 7.4). */
    std::vector<double> profile_freqs_mhz = {1000.0, 1800.0};
    /** Warm-up before each profiled/measured iteration, seconds. */
    double warmup_seconds = 20.0;
    /** Fine-grained telemetry period for alpha calibration. */
    Tick profile_sample_period = 2 * kTicksPerMs;
    /** Reuse previously calibrated constants (skip offline pass). */
    std::optional<power::CalibratedConstants> constants;
    /**
     * Also assess the generated strategy under the runtime guard
     * (multi-iteration run honouring `chip.faults`).  Off by default:
     * the classic pipeline path stays bit-for-bit unchanged.
     */
    bool assess_guarded = false;
    /** Guard tuning for the assessment run. */
    GuardOptions guard;
    /** Measured iterations of the guarded assessment. */
    int guarded_iterations = 12;
    std::uint64_t seed = 1;
};

/**
 * The profile-and-model half of the pipeline: everything a strategy
 * search — or a surrogate prediction — needs, with no search run yet.
 * Produced by EnergyPipeline::prepare(); reused by the serving layer
 * so a predicted first answer and its asynchronous GA refinement
 * share one profiling pass instead of re-profiling the workload.
 */
struct PreparedWorkload
{
    power::CalibratedConstants constants;
    /** Baseline measurement at the maximum profile frequency. */
    trace::RunResult baseline;
    perf::PerfModelRepository perf_models;
    std::unordered_map<std::uint64_t, power::OpPowerModel> op_power;
    PreprocessResult prep;
};

/** Everything the pipeline produced. */
struct PipelineResult
{
    power::CalibratedConstants constants;
    /** Baseline measurement at the maximum frequency. */
    trace::RunResult baseline;
    /** Measurement under the generated DVFS strategy. */
    trace::RunResult dvfs;
    PreprocessResult prep;
    GaResult ga;
    ExecutionPlan plan;
    /** Guarded multi-iteration assessment (when `assess_guarded`). */
    std::optional<GuardedRunResult> guarded;
    /**
     * The fitted per-operator performance models and per-operator
     * power corrections the search ran on.  Exposed so downstream
     * consumers (the drift watchdog, strategy regeneration) can score
     * residuals against — and recalibrate — exactly the models that
     * produced the strategy.
     */
    perf::PerfModelRepository perf_models;
    std::unordered_map<std::uint64_t, power::OpPowerModel> op_power;

    /** Relative iteration-time increase under DVFS. */
    double perfLoss() const;
    /** Relative AICore average-power reduction. */
    double aicoreReduction() const;
    /** Relative SoC average-power reduction. */
    double socReduction() const;

    /** The generated strategy, ready for saveStrategy()/re-execution. */
    Strategy strategy() const;
};

/** Runs the Fig. 1 pipeline against a simulated chip. */
class EnergyPipeline
{
  public:
    explicit EnergyPipeline(PipelineOptions options)
        : options_(std::move(options))
    {}

    /** Optimise one workload end to end. */
    PipelineResult optimize(const models::Workload &workload) const;

    /**
     * Run only the profile-and-model half: calibrate, profile at the
     * configured frequencies, fit performance/power models and
     * preprocess into candidate stages.  optimize() is exactly
     * prepare() followed by the search and execution half, so results
     * derived from a PreparedWorkload are bit-consistent with the
     * full pipeline under the same options and seed.
     */
    PreparedWorkload prepare(const models::Workload &workload) const;

    const PipelineOptions &options() const { return options_; }

  private:
    PipelineOptions options_;
};

} // namespace opdvfs::dvfs

#endif // OPDVFS_DVFS_PIPELINE_H
