/**
 * @file
 * DVFS preprocessing (paper Sect. 6.2, Fig. 13): turns a profiled
 * iteration into frequency-candidate stages.
 *
 *  1. Gather the execution sequence and profiling data (idle gaps are
 *     explicit records).
 *  2. Classify each operator's bottleneck (Sect. 6.1).
 *  3. Split the timeline into Low/High Frequency Candidate stages by
 *     frequency sensitivity; each stage start is a candidate point.
 *  4. Merge candidates closer than the frequency adjustment interval
 *     (FAI, e.g. 5 ms) into their neighbours.
 */

#ifndef OPDVFS_DVFS_PREPROCESS_H
#define OPDVFS_DVFS_PREPROCESS_H

#include <cstdint>
#include <vector>

#include "dvfs/classification.h"
#include "trace/profiler.h"

namespace opdvfs::dvfs {

/** One frequency-candidate stage [start, start + duration). */
struct Stage
{
    Tick start = 0;
    Tick duration = 0;
    /** True for High Frequency Candidate (sensitive-dominated). */
    bool high_frequency = true;
    /** Index of the first operator of the stage in iteration order. */
    std::size_t first_op = 0;
    /** Operator ids inside the stage, iteration order. */
    std::vector<std::uint64_t> op_ids;
    /** Time spent in frequency-sensitive operators, seconds. */
    double sensitive_seconds = 0.0;
    /** Time spent in insensitive operators, seconds. */
    double insensitive_seconds = 0.0;
};

/** Preprocessing output. */
struct PreprocessResult
{
    std::vector<Stage> stages;
    /** Per-record bottleneck classes, aligned with the input records. */
    std::vector<Bottleneck> bottlenecks;

    std::size_t lfcCount() const;
    std::size_t hfcCount() const;
};

/** Preprocessing knobs. */
struct PreprocessOptions
{
    /** Frequency adjustment interval; stages never get shorter. */
    Tick fai = 5 * kTicksPerMs;
    ClassifyOptions classify;
};

/**
 * Build candidate stages from the records of one profiled iteration
 * (must be time-ordered, which profiler output is).
 */
PreprocessResult preprocess(const std::vector<trace::OpRecord> &records,
                            const PreprocessOptions &options = {});

} // namespace opdvfs::dvfs

#endif // OPDVFS_DVFS_PREPROCESS_H
