#include "dvfs/evaluator.h"

#include <cmath>
#include <stdexcept>

#include "common/units.h"

namespace opdvfs::dvfs {

StageEvaluator::StageEvaluator(
    const std::vector<Stage> &stages, const perf::PerfModelRepository &perf,
    const power::PowerModel &power,
    const std::unordered_map<std::uint64_t, power::OpPowerModel> &op_power,
    const npu::FreqTable &table)
    : stage_count_(stages.size()),
      freqs_mhz_(table.frequenciesMhz()),
      gamma_aicore_(power.constants().gamma_aicore),
      gamma_soc_(power.constants().gamma_soc),
      k_per_watt_(power.constants().k_per_watt)
{
    if (stages.empty())
        throw std::invalid_argument("StageEvaluator: no stages");

    cells_.resize(stage_count_ * freqs_mhz_.size());
    for (std::size_t s = 0; s < stage_count_; ++s) {
        for (std::size_t fi = 0; fi < freqs_mhz_.size(); ++fi) {
            double f = freqs_mhz_[fi];
            double volts = table.voltageFor(f);
            double fv2 = mhzToHz(f) * volts * volts;

            Cell &c = cells_[s * freqs_mhz_.size() + fi];
            for (std::uint64_t op_id : stages[s].op_ids) {
                const perf::OpPerfModel *model = perf.find(op_id);
                if (!model) {
                    throw std::invalid_argument(
                        "StageEvaluator: operator without perf model");
                }
                double t = std::max(model->predictSeconds(f), 0.0);
                c.seconds += t;

                auto pw = op_power.find(op_id);
                double alpha_core =
                    pw != op_power.end() ? pw->second.alpha_aicore : 0.0;
                double alpha_soc =
                    pw != op_power.end() ? pw->second.alpha_soc : 0.0;
                c.aicore_joules_no_t +=
                    (alpha_core * fv2 + power.aicoreIdle(f)) * t;
                c.soc_joules_no_t +=
                    (alpha_soc * fv2 + power.socIdle(f)) * t;
            }
            c.volt_seconds = volts * c.seconds;
        }
    }
}

StrategyEvaluation
StageEvaluator::evaluate(
    const std::vector<std::uint8_t> &freq_index_per_stage) const
{
    if (freq_index_per_stage.size() != stage_count_)
        throw std::invalid_argument("evaluate: genome length mismatch");

    double seconds = 0.0;
    double aicore_no_t = 0.0;
    double soc_no_t = 0.0;
    double volt_seconds = 0.0;
    for (std::size_t s = 0; s < stage_count_; ++s) {
        const Cell &c = cell(s, freq_index_per_stage[s]);
        seconds += c.seconds;
        aicore_no_t += c.aicore_joules_no_t;
        soc_no_t += c.soc_joules_no_t;
        volt_seconds += c.volt_seconds;
    }

    StrategyEvaluation eval;
    eval.seconds = seconds;
    if (seconds <= 0.0)
        return eval;

    double mean_volts = volt_seconds / seconds;
    double p_soc_no_t = soc_no_t / seconds;

    // Global temperature fix point (Sect. 5.4.2): P depends on dT and
    // dT on P; iterate from dT = 0.
    double delta_t = 0.0;
    for (int iter = 0; iter < 16; ++iter) {
        double p_soc = p_soc_no_t + gamma_soc_ * delta_t * mean_volts;
        double next = k_per_watt_ * p_soc;
        if (std::abs(next - delta_t) < 0.01) {
            delta_t = next;
            break;
        }
        delta_t = next;
    }

    eval.delta_t = delta_t;
    eval.soc_watts = p_soc_no_t + gamma_soc_ * delta_t * mean_volts;
    eval.aicore_watts =
        aicore_no_t / seconds + gamma_aicore_ * delta_t * mean_volts;
    eval.soc_joules = eval.soc_watts * seconds;
    eval.aicore_joules = eval.aicore_watts * seconds;
    return eval;
}

StrategyEvaluation
StageEvaluator::evaluateBaseline() const
{
    std::vector<std::uint8_t> genome(
        stage_count_, static_cast<std::uint8_t>(freqs_mhz_.size() - 1));
    return evaluate(genome);
}

} // namespace opdvfs::dvfs
