#include "dvfs/report.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "common/table.h"
#include "dvfs/classification.h"
#include "ops/op_stats.h"

namespace opdvfs::dvfs {

namespace {

std::string
pct(double fraction)
{
    return Table::pct(fraction, 2);
}

} // namespace

void
writeReport(const PipelineResult &result, const models::Workload &workload,
            const npu::MemorySystem &memory, std::ostream &os)
{
    os << "# opdvfs energy-optimisation report: " << workload.name
       << "\n\n";

    // --- headline ---------------------------------------------------------
    os << "## Result\n\n"
       << "| metric | baseline (max freq) | under DVFS | change |\n"
       << "|---|---|---|---|\n"
       << "| iteration time | "
       << Table::num(result.baseline.iteration_seconds, 4) << " s | "
       << Table::num(result.dvfs.iteration_seconds, 4) << " s | +"
       << pct(result.perfLoss()) << " |\n"
       << "| AICore power | "
       << Table::num(result.baseline.aicore_avg_w, 2) << " W | "
       << Table::num(result.dvfs.aicore_avg_w, 2) << " W | -"
       << pct(result.aicoreReduction()) << " |\n"
       << "| SoC power | " << Table::num(result.baseline.soc_avg_w, 1)
       << " W | " << Table::num(result.dvfs.soc_avg_w, 1) << " W | -"
       << pct(result.socReduction()) << " |\n"
       << "| die temperature | "
       << Table::num(result.baseline.avg_temperature_c, 1) << " C | "
       << Table::num(result.dvfs.avg_temperature_c, 1) << " C | |\n\n";

    // --- workload composition ----------------------------------------------
    ops::WorkloadStats stats =
        ops::summarize(workload.iteration, workload.name, memory);
    os << "## Workload\n\n"
       << stats.op_count << " operators per iteration; time shares: "
       << pct(stats.compute_share) << " compute, "
       << pct(stats.communication_share) << " communication, "
       << pct(stats.aicpu_share) << " AICPU, " << pct(stats.idle_share)
       << " idle.\n\n";
    os << "| type | count | time share | mean (us) |\n|---|---|---|---|\n";
    std::size_t rows = 0;
    for (const auto &type : stats.types) {
        if (++rows > 10)
            break;
        os << "| " << type.type << " | " << type.count << " | "
           << pct(type.time_share) << " | "
           << Table::num(type.mean_seconds * 1e6, 1) << " |\n";
    }
    os << "\n";

    // --- bottleneck classification -----------------------------------------
    std::map<Bottleneck, double> class_time;
    double total_time = 0.0;
    for (std::size_t i = 0; i < result.baseline.records.size(); ++i) {
        double seconds = ticksToSeconds(result.baseline.records[i].end
                                        - result.baseline.records[i].start);
        class_time[result.prep.bottlenecks[i]] += seconds;
        total_time += seconds;
    }
    os << "## Bottleneck classification (Sect. 6.1)\n\n"
       << "| class | time share |\n|---|---|\n";
    for (const auto &[bottleneck, seconds] : class_time) {
        os << "| " << bottleneckName(bottleneck) << " | "
           << pct(seconds / std::max(total_time, 1e-12)) << " |\n";
    }
    os << "\n";

    // --- strategy -----------------------------------------------------------
    os << "## Strategy\n\n"
       << result.prep.stages.size() << " candidate stages ("
       << result.prep.lfcCount() << " LFC / " << result.prep.hfcCount()
       << " HFC), " << result.plan.triggers.size()
       << " SetFreq triggers per iteration, GA best score reached at "
          "generation "
       << result.ga.converged_at << ".\n\n";

    std::map<double, int> histogram;
    for (double mhz : result.ga.best_mhz)
        histogram[mhz]++;
    os << "| frequency (MHz) | stages |\n|---|---|\n";
    for (const auto &[mhz, count] : histogram)
        os << "| " << Table::num(mhz, 0) << " | " << count << " |\n";
    os << "\n";

    os << "## Power model constants (calibrated)\n\n"
       << "gamma_aicore = " << result.constants.gamma_aicore
       << " W/(K V), gamma_soc = " << result.constants.gamma_soc
       << " W/(K V), k = " << result.constants.k_per_watt
       << " K/W, ambient = " << Table::num(result.constants.ambient_c, 1)
       << " C\n";
}

} // namespace opdvfs::dvfs
