#include "dvfs/strategy_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace opdvfs::dvfs {

void
saveStrategy(const Strategy &strategy, std::ostream &os)
{
    if (strategy.stages.size() != strategy.mhz_per_stage.size())
        throw std::invalid_argument("saveStrategy: stage/frequency size "
                                    "mismatch");

    os << "strategy v1\n";
    os << "# stages: " << strategy.stages.size()
       << ", triggers: " << strategy.plan.triggers.size() << "\n";
    os << "initial " << strategy.plan.initial_mhz << "\n";
    for (std::size_t s = 0; s < strategy.stages.size(); ++s) {
        const Stage &stage = strategy.stages[s];
        os << "stage " << stage.start << " " << stage.duration << " "
           << strategy.mhz_per_stage[s] << " "
           << (stage.high_frequency ? "hfc" : "lfc") << "\n";
    }
    for (const auto &trigger : strategy.plan.triggers) {
        os << "trigger " << trigger.after_op_index << " " << trigger.mhz
           << "\n";
    }
}

Strategy
loadStrategy(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line) || line != "strategy v1")
        throw std::invalid_argument("loadStrategy: missing 'strategy v1' "
                                    "header");

    Strategy strategy;
    std::size_t line_number = 1;
    while (std::getline(is, line)) {
        ++line_number;
        if (line.empty() || line[0] == '#')
            continue;

        std::istringstream fields(line);
        std::string kind;
        fields >> kind;
        auto fail = [&](const std::string &why) {
            throw std::invalid_argument(
                "loadStrategy: line " + std::to_string(line_number) + ": "
                + why);
        };

        if (kind == "initial") {
            if (!(fields >> strategy.plan.initial_mhz))
                fail("bad initial frequency");
        } else if (kind == "stage") {
            Stage stage;
            double mhz = 0.0;
            std::string flavor;
            if (!(fields >> stage.start >> stage.duration >> mhz
                  >> flavor)) {
                fail("bad stage record");
            }
            if (flavor != "hfc" && flavor != "lfc")
                fail("stage kind must be hfc or lfc");
            stage.high_frequency = flavor == "hfc";
            strategy.stages.push_back(std::move(stage));
            strategy.mhz_per_stage.push_back(mhz);
        } else if (kind == "trigger") {
            trace::SetFreqTrigger trigger;
            if (!(fields >> trigger.after_op_index >> trigger.mhz))
                fail("bad trigger record");
            strategy.plan.triggers.push_back(trigger);
        } else {
            fail("unknown record kind '" + kind + "'");
        }
    }
    return strategy;
}

void
saveStrategyFile(const Strategy &strategy, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        throw std::runtime_error("saveStrategyFile: cannot open " + path);
    saveStrategy(strategy, os);
}

Strategy
loadStrategyFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("loadStrategyFile: cannot open " + path);
    return loadStrategy(is);
}

} // namespace opdvfs::dvfs
