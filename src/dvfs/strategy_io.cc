#include "dvfs/strategy_io.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/crc32.h"

namespace opdvfs::dvfs {

void
saveStrategy(const Strategy &strategy, std::ostream &os)
{
    if (strategy.stages.size() != strategy.mhz_per_stage.size())
        throw std::invalid_argument("saveStrategy: stage/frequency size "
                                    "mismatch");

    // Build the payload in memory first so the CRC-32 footer can cover
    // every preceding byte.
    std::ostringstream payload;
    payload << "strategy v1\n";
    payload << "counts " << strategy.stages.size() << " "
            << strategy.plan.triggers.size() << "\n";
    if (strategy.meta) {
        const StrategyMeta &meta = *strategy.meta;
        if (meta.provenance.empty()
            || meta.provenance.find_first_of(" \t\n") != std::string::npos) {
            throw std::invalid_argument("saveStrategy: provenance must be "
                                        "one whitespace-free token");
        }
        // Full precision so scores round-trip bit-exactly.
        std::ostringstream scores;
        scores.precision(17);
        scores << meta.score << " " << meta.pre_refine_score;
        payload << "meta score " << scores.str() << " " << meta.converged_at
                << " " << meta.generations << "\n";
        std::ostringstream hex;
        hex << std::hex << meta.fingerprint;
        payload << "meta provenance " << meta.provenance << " " << hex.str()
                << "\n";
    }
    payload << "initial " << strategy.plan.initial_mhz << "\n";
    for (std::size_t s = 0; s < strategy.stages.size(); ++s) {
        const Stage &stage = strategy.stages[s];
        payload << "stage " << stage.start << " " << stage.duration << " "
                << strategy.mhz_per_stage[s] << " "
                << (stage.high_frequency ? "hfc" : "lfc") << "\n";
    }
    for (const auto &trigger : strategy.plan.triggers) {
        payload << "trigger " << trigger.after_op_index << " "
                << trigger.mhz << "\n";
    }

    std::string text = payload.str();
    std::ostringstream footer;
    footer << std::hex << crc32(text);
    os << text << "crc32 " << footer.str() << "\n";
}

Strategy
loadStrategy(std::istream &is, const npu::FreqTable *table)
{
    std::string line;
    if (!std::getline(is, line) || line != "strategy v1")
        throw std::invalid_argument("loadStrategy: missing 'strategy v1' "
                                    "header");

    Strategy strategy;
    // The optional `crc32` footer covers every byte before it; the
    // running checksum is advanced line by line as the file is read.
    Crc32 running;
    running.update(line);
    running.update("\n");
    bool have_crc = false;
    bool have_counts = false;
    std::size_t declared_stages = 0;
    std::size_t declared_triggers = 0;
    std::size_t line_number = 1;
    while (std::getline(is, line)) {
        ++line_number;

        std::istringstream fields(line);
        std::string kind;
        fields >> kind;
        auto fail = [&](const std::string &why) {
            throw std::invalid_argument(
                "loadStrategy: line " + std::to_string(line_number) + ": "
                + why);
        };

        if (kind == "crc32") {
            std::string hex;
            if (!(fields >> hex))
                fail("bad crc32 record");
            std::uint32_t expected = 0;
            std::istringstream hex_fields(hex);
            if (!(hex_fields >> std::hex >> expected))
                fail("bad crc32 value");
            if (expected != running.value()) {
                fail("checksum mismatch (corrupted or truncated file): "
                     "stored "
                     + hex);
            }
            have_crc = true;
            continue;
        }
        if (have_crc && !line.empty() && line[0] != '#')
            fail("record after the crc32 footer");
        running.update(line);
        running.update("\n");
        if (line.empty() || line[0] == '#')
            continue;
        auto check_mhz = [&](double mhz, const char *what) {
            if (!std::isfinite(mhz))
                fail(std::string(what) + " frequency is not finite");
            if (mhz <= 0.0)
                fail(std::string(what)
                     + " frequency must be positive, got "
                     + std::to_string(mhz));
        };

        if (kind == "initial") {
            if (!(fields >> strategy.plan.initial_mhz))
                fail("bad initial frequency");
            check_mhz(strategy.plan.initial_mhz, "initial");
        } else if (kind == "meta") {
            std::string which;
            fields >> which;
            StrategyMeta meta =
                strategy.meta ? *strategy.meta : StrategyMeta{};
            if (which == "score") {
                if (!(fields >> meta.score >> meta.pre_refine_score
                      >> meta.converged_at >> meta.generations))
                    fail("bad meta score record");
                if (!std::isfinite(meta.score)
                    || !std::isfinite(meta.pre_refine_score))
                    fail("meta score is not finite");
                if (meta.converged_at < 0 || meta.generations < 0)
                    fail("negative meta generation counters");
            } else if (which == "provenance") {
                std::string hex;
                if (!(fields >> meta.provenance >> hex))
                    fail("bad meta provenance record");
                std::istringstream hex_fields(hex);
                if (!(hex_fields >> std::hex >> meta.fingerprint))
                    fail("bad meta fingerprint digest");
            } else {
                fail("unknown meta record '" + which + "'");
            }
            strategy.meta = std::move(meta);
        } else if (kind == "counts") {
            if (!(fields >> declared_stages >> declared_triggers))
                fail("bad counts record");
            have_counts = true;
        } else if (kind == "stage") {
            Stage stage;
            double mhz = 0.0;
            std::string flavor;
            if (!(fields >> stage.start >> stage.duration >> mhz
                  >> flavor)) {
                fail("bad stage record");
            }
            if (flavor != "hfc" && flavor != "lfc")
                fail("stage kind must be hfc or lfc");
            if (stage.start < 0)
                fail("negative stage start");
            if (stage.duration <= 0)
                fail("non-positive stage duration");
            check_mhz(mhz, "stage");
            stage.high_frequency = flavor == "hfc";
            strategy.stages.push_back(std::move(stage));
            strategy.mhz_per_stage.push_back(mhz);
        } else if (kind == "trigger") {
            trace::SetFreqTrigger trigger;
            if (!(fields >> trigger.after_op_index >> trigger.mhz))
                fail("bad trigger record");
            check_mhz(trigger.mhz, "trigger");
            strategy.plan.triggers.push_back(trigger);
        } else {
            fail("unknown record kind '" + kind + "'");
        }
    }

    // Stages describe disjoint timeline intervals; a file with
    // duplicate or overlapping stages would make the executor's
    // per-stage frequency assignment ambiguous, so reject it here
    // rather than hand it downstream.
    for (std::size_t s = 1; s < strategy.stages.size(); ++s) {
        const Stage &prev = strategy.stages[s - 1];
        const Stage &cur = strategy.stages[s];
        if (cur.start == prev.start) {
            throw std::invalid_argument(
                "loadStrategy: duplicate stage start at tick "
                + std::to_string(cur.start) + " (stages "
                + std::to_string(s - 1) + " and " + std::to_string(s)
                + ")");
        }
        if (cur.start < prev.start) {
            throw std::invalid_argument(
                "loadStrategy: stage " + std::to_string(s)
                + " starts at tick " + std::to_string(cur.start)
                + ", before stage " + std::to_string(s - 1) + " at tick "
                + std::to_string(prev.start)
                + " (stages must be time-ordered)");
        }
        if (cur.start < prev.start + prev.duration) {
            throw std::invalid_argument(
                "loadStrategy: stage " + std::to_string(s)
                + " starting at tick " + std::to_string(cur.start)
                + " overlaps stage " + std::to_string(s - 1) + " ["
                + std::to_string(prev.start) + ", "
                + std::to_string(prev.start + prev.duration) + ")");
        }
    }

    if (have_counts
        && (strategy.stages.size() != declared_stages
            || strategy.plan.triggers.size() != declared_triggers)) {
        throw std::invalid_argument(
            "loadStrategy: counts declare " + std::to_string(declared_stages)
            + " stages / " + std::to_string(declared_triggers)
            + " triggers but found " + std::to_string(strategy.stages.size())
            + " / " + std::to_string(strategy.plan.triggers.size())
            + " (truncated or corrupted file?)");
    }
    if (table)
        validateStrategy(strategy, *table);
    return strategy;
}

void
validateStrategy(const Strategy &strategy, const npu::FreqTable &table)
{
    auto check = [&](double mhz, const std::string &where) {
        if (!table.supports(mhz)) {
            throw std::invalid_argument(
                "validateStrategy: " + where + " frequency "
                + std::to_string(mhz) + " MHz is not in the device table ["
                + std::to_string(table.minMhz()) + ", "
                + std::to_string(table.maxMhz()) + "]");
        }
    };
    if (strategy.stages.size() != strategy.mhz_per_stage.size())
        throw std::invalid_argument(
            "validateStrategy: stage/frequency size mismatch");
    check(strategy.plan.initial_mhz, "initial");
    for (std::size_t s = 0; s < strategy.mhz_per_stage.size(); ++s)
        check(strategy.mhz_per_stage[s], "stage " + std::to_string(s));
    for (std::size_t t = 0; t < strategy.plan.triggers.size(); ++t)
        check(strategy.plan.triggers[t].mhz,
              "trigger " + std::to_string(t));
}

void
saveStrategyFile(const Strategy &strategy, const std::string &path)
{
    // Crash-safe: write a sibling temp file, flush it, then atomically
    // rename over the destination, so a reader never observes a
    // partially written strategy and a crash leaves the previous file
    // intact.
    std::string temp = path + ".tmp";
    {
        std::ofstream os(temp, std::ios::trunc);
        if (!os) {
            throw std::runtime_error("saveStrategyFile: cannot open "
                                     + temp);
        }
        try {
            saveStrategy(strategy, os);
        } catch (...) {
            os.close();
            std::remove(temp.c_str());
            throw;
        }
        os.flush();
        if (!os) {
            std::remove(temp.c_str());
            throw std::runtime_error("saveStrategyFile: write failed for "
                                     + temp);
        }
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0) {
        std::remove(temp.c_str());
        throw std::runtime_error("saveStrategyFile: cannot rename " + temp
                                 + " to " + path);
    }
}

Strategy
loadStrategyFile(const std::string &path, const npu::FreqTable *table)
{
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("loadStrategyFile: cannot open " + path);
    return loadStrategy(is, table);
}

} // namespace opdvfs::dvfs
