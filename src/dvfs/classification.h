/**
 * @file
 * Operator bottleneck classification (paper Sect. 6.1, Fig. 12,
 * Table 1).
 *
 * Pipeline-utilisation ratios from the profiler drive the decision
 * tree: operators whose ratios sum below 1 have free execution time
 * (no-pipeline bound); a maximum ratio under 0.8 indicates suboptimal
 * pipeline arrangement (latency bound); otherwise the domain of the
 * busiest pipe decides uncore (Ld/St) versus core bound.  AICPU,
 * communication and idle operators are AICore-frequency insensitive by
 * construction.
 */

#ifndef OPDVFS_DVFS_CLASSIFICATION_H
#define OPDVFS_DVFS_CLASSIFICATION_H

#include <string>

#include "trace/profiler.h"

namespace opdvfs::dvfs {

/** Bottleneck classes of Fig. 12 plus the non-compute categories. */
enum class Bottleneck
{
    NoPipeline,
    Latency,
    Uncore,
    Core,
    Aicpu,
    Communication,
    Idle,
};

/** Human-readable class name. */
std::string bottleneckName(Bottleneck bottleneck);

/** Classification thresholds. */
struct ClassifyOptions
{
    /** Ratio sum below this => no-pipeline bound. */
    double no_pipeline_sum = 1.0;
    /** Max ratio below this => latency bound. */
    double latency_max_ratio = 0.8;
};

/** Classify one profiled operator record. */
Bottleneck classify(const trace::OpRecord &record,
                    const ClassifyOptions &options = {});

/**
 * Table 1: is the class AICore-frequency sensitive?  Core-bound and
 * latency-bound operators are; Ld/St-bound, AICPU, communication and
 * idle are not.  No-pipeline-bound operators are treated as
 * insensitive: their duration is dominated by fixed pre/post
 * processing time.
 */
bool isFrequencySensitive(Bottleneck bottleneck);

} // namespace opdvfs::dvfs

#endif // OPDVFS_DVFS_CLASSIFICATION_H
