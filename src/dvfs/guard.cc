#include "dvfs/guard.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>

#include "sim/simulator.h"
#include "trace/power_sampler.h"
#include "trace/profiler.h"

namespace opdvfs::dvfs {

DvfsGuard::DvfsGuard(const GuardOptions &options,
                     double baseline_iteration_seconds)
    : options_(options), baseline_seconds_(baseline_iteration_seconds)
{
    if (!std::isfinite(baseline_seconds_) || baseline_seconds_ <= 0.0)
        throw std::invalid_argument(
            "DvfsGuard: baseline iteration time must be positive");
    if (options_.perf_loss_target < 0.0)
        throw std::invalid_argument(
            "DvfsGuard: negative perf_loss_target");
    if (options_.violation_factor < 1.0)
        throw std::invalid_argument(
            "DvfsGuard: violation_factor must be >= 1");
    if (options_.violation_limit < 1)
        throw std::invalid_argument(
            "DvfsGuard: violation_limit must be >= 1");
    if (options_.reenable_after < 1)
        throw std::invalid_argument(
            "DvfsGuard: reenable_after must be >= 1");
    if (options_.set_freq_retries < 0)
        throw std::invalid_argument(
            "DvfsGuard: negative set_freq_retries");
    if (options_.retry_backoff <= 0)
        throw std::invalid_argument(
            "DvfsGuard: non-positive retry_backoff");
}

GuardState
DvfsGuard::observe(const GuardObservation &observation)
{
    last_loss_ = (observation.iteration_seconds - baseline_seconds_)
                 / baseline_seconds_;

    double temperature = last_temperature_c_;
    if (observation.telemetry_ok) {
        last_temperature_c_ = observation.temperature_c;
        have_temperature_ = true;
        temperature = observation.temperature_c;
    } else {
        ++stats_.telemetry_gaps;
    }

    bool perf_bad =
        last_loss_ > options_.violation_factor * options_.perf_loss_target;
    bool thermal_bad =
        have_temperature_ && temperature > options_.max_temperature_c;
    if (perf_bad)
        ++stats_.perf_violations;
    if (thermal_bad)
        ++stats_.thermal_violations;
    bool violating = perf_bad || thermal_bad;

    wants_throttle_reset_ =
        options_.enabled && observation.throttled && violating;

    if (!options_.enabled)
        return state_;

    if (safe_hold_remaining_ > 0) {
        // A recalibration hold pins Fallback for a fixed number of
        // iterations; measurements taken against the stale baseline
        // during the swap are recorded but never drive transitions.
        if (--safe_hold_remaining_ == 0) {
            state_ = GuardState::Monitoring;
            consecutive_violations_ = 0;
            clean_in_fallback_ = 0;
        }
        return state_;
    }

    if (state_ == GuardState::Monitoring) {
        if (violating) {
            if (++consecutive_violations_ >= options_.violation_limit) {
                state_ = GuardState::Fallback;
                ++stats_.fallbacks;
                consecutive_violations_ = 0;
                clean_in_fallback_ = 0;
            }
        } else {
            consecutive_violations_ = 0;
        }
    } else {
        if (violating) {
            clean_in_fallback_ = 0;
        } else if (++clean_in_fallback_ >= options_.reenable_after) {
            state_ = GuardState::Monitoring;
            ++stats_.reenables;
            clean_in_fallback_ = 0;
        }
    }
    return state_;
}

void
DvfsGuard::holdSafe(int iterations)
{
    if (iterations < 1)
        throw std::invalid_argument("DvfsGuard: holdSafe needs >= 1 "
                                    "iteration");
    state_ = GuardState::Fallback;
    safe_hold_remaining_ = iterations;
    consecutive_violations_ = 0;
    clean_in_fallback_ = 0;
    ++stats_.safe_holds;
}

void
DvfsGuard::rebase(double baseline_iteration_seconds)
{
    if (!std::isfinite(baseline_iteration_seconds)
        || baseline_iteration_seconds <= 0.0) {
        throw std::invalid_argument(
            "DvfsGuard: rebase baseline must be positive");
    }
    baseline_seconds_ = baseline_iteration_seconds;
    consecutive_violations_ = 0;
    clean_in_fallback_ = 0;
    ++stats_.rebases;
}

namespace {

/** True when the governor ended up where the guard commanded. */
bool
setFreqLanded(const npu::NpuChip &chip, double target_mhz)
{
    // A firmware clamp is not repairable by retrying; the guard
    // handles that case via a governor reset instead.
    return chip.dvfs().currentMhz() == target_mhz
        || chip.dvfs().throttled();
}

/**
 * Re-issue a SetFreq while HOLDING the SetFreq stream, then verify and
 * recurse.  Holding the stream is essential: a retry enqueued at the
 * stream tail would sit behind the strategy's later triggers (each
 * gated on a compute-stream sync event), so a dropped upshift could
 * not be repaired until the iteration had already run to completion
 * at the wrong frequency.
 */
void
retryHoldingStream(npu::NpuChip &chip, double target_mhz,
                   int retries_left, Tick backoff, GuardStats &stats,
                   std::function<void()> done)
{
    Tick latency = chip.config().set_freq_latency;
    bool dropped = false;
    if (npu::FaultInjector *injector = chip.faultInjector()) {
        latency += injector->setFreqExtraLatency();
        dropped = injector->dropSetFreq();
    }
    chip.simulator().scheduleIn(
        latency, [&chip, target_mhz, dropped, retries_left, backoff,
                  &stats, done = std::move(done)]() mutable {
            if (!dropped)
                chip.dvfs().apply(target_mhz);
            if (setFreqLanded(chip, target_mhz)) {
                done();
                return;
            }
            if (retries_left <= 0) {
                ++stats.set_freq_abandoned;
                done();
                return;
            }
            ++stats.set_freq_retries;
            chip.simulator().scheduleIn(
                backoff, [&chip, target_mhz, retries_left, backoff,
                          &stats, done = std::move(done)]() mutable {
                    retryHoldingStream(chip, target_mhz,
                                       retries_left - 1, backoff * 2,
                                       stats, std::move(done));
                });
        });
}

/**
 * Enqueue the verification task paired with a SetFreq already sitting
 * on the stream.  FIFO ordering guarantees it runs after that SetFreq
 * finished (applied or dropped); on mismatch it keeps the stream
 * occupied through the bounded backoff-and-retry chain.
 */
void
enqueueVerify(npu::NpuChip &chip, double target_mhz, int retries_left,
              Tick backoff, GuardStats &stats)
{
    chip.setFreqStream().enqueue([&chip, target_mhz, retries_left, backoff,
                                  &stats](std::function<void()> done) {
        if (setFreqLanded(chip, target_mhz)) {
            done();
            return;
        }
        if (retries_left <= 0) {
            ++stats.set_freq_abandoned;
            done();
            return;
        }
        ++stats.set_freq_retries;
        chip.simulator().scheduleIn(
            backoff, [&chip, target_mhz, retries_left, backoff, &stats,
                      done = std::move(done)]() mutable {
                retryHoldingStream(chip, target_mhz, retries_left - 1,
                                   backoff * 2, stats, std::move(done));
            });
    });
}

} // namespace

void
enqueueGuardedSetFreq(npu::NpuChip &chip, double mhz, int retries,
                      Tick backoff, GuardStats &stats)
{
    if (!std::isfinite(mhz))
        throw std::invalid_argument(
            "enqueueGuardedSetFreq: non-finite target");
    double target = chip.freqTable().snap(mhz);
    chip.enqueueSetFreq(target);
    enqueueVerify(chip, target, retries, backoff, stats);
}

double
GuardedRunResult::meanLoss() const
{
    if (iterations.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &it : iterations)
        sum += it.loss;
    return sum / static_cast<double>(iterations.size());
}

double
GuardedRunResult::worstLoss() const
{
    double worst = 0.0;
    for (const auto &it : iterations)
        worst = std::max(worst, it.loss);
    return worst;
}

namespace {

/**
 * Queue one iteration; SetFreq triggers go through the guarded
 * (verify-and-retry) path when @p guard_set_freqs is set.
 */
void
enqueueIteration(npu::NpuChip &chip, const models::Workload &workload,
                 const std::multimap<std::size_t, double> &triggers,
                 bool guard_set_freqs, const GuardOptions &guard,
                 GuardStats &stats)
{
    for (std::size_t i = 0; i < workload.iteration.size(); ++i) {
        const ops::Op &op = workload.iteration[i];
        chip.enqueueOp(op.hw, op.id);

        auto range = triggers.equal_range(i);
        for (auto it = range.first; it != range.second; ++it) {
            auto event = std::make_shared<sim::SyncEvent>();
            chip.computeStream().enqueueRecord(event);
            chip.setFreqStream().enqueueWait(event);
            if (guard_set_freqs) {
                enqueueGuardedSetFreq(chip, it->second,
                                      guard.set_freq_retries,
                                      guard.retry_backoff, stats);
            } else {
                chip.enqueueSetFreq(it->second);
            }
        }
    }
}

double
medianOf(std::vector<double> values)
{
    std::size_t mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + mid, values.end());
    return values[mid];
}

} // namespace

GuardedRunResult
runGuarded(const npu::NpuConfig &chip_config,
           const models::Workload &workload,
           const std::vector<trace::SetFreqTrigger> &triggers,
           double baseline_seconds, const GuardedRunOptions &options)
{
    if (workload.iteration.empty())
        throw std::invalid_argument("runGuarded: empty workload");
    if (options.iterations <= 0)
        throw std::invalid_argument("runGuarded: no iterations");

    std::multimap<std::size_t, double> trigger_map;
    for (const auto &t : triggers) {
        if (t.after_op_index >= workload.iteration.size())
            throw std::invalid_argument(
                "runGuarded: trigger index out of range");
        trigger_map.emplace(t.after_op_index, t.mhz);
    }

    sim::Simulator simulator;
    npu::NpuConfig config = chip_config;
    config.initial_mhz = options.run.initial_mhz;
    npu::NpuChip chip(simulator, config);

    trace::Profiler profiler(chip, options.run.profiler_noise,
                             options.run.seed * 7919 + 1);
    profiler.registerSequence(workload.iteration);
    trace::PowerSampler sampler(chip, options.run.sample_period,
                                options.run.sampler_noise,
                                options.run.seed * 104729 + 2);

    DvfsGuard guard(options.guard, baseline_seconds);
    GuardStats &stats = guard.mutableStats();

    // Warm-up repetitions (unmeasured, plain SetFreqs).
    while (ticksToSeconds(simulator.now()) < options.run.warmup_seconds) {
        enqueueIteration(chip, workload, trigger_map,
                         /*guard_set_freqs=*/false, options.guard, stats);
        simulator.run();
    }

    GuardedRunResult result;
    result.baseline_seconds = baseline_seconds;
    double max_mhz = chip.freqTable().maxMhz();

    for (int iter = 0; iter < options.iterations; ++iter) {
        bool strategy_active = guard.strategyEnabled();
        if (guard.wantsThrottleReset()) {
            chip.resetThrottleGovernor();
            ++stats.throttle_resets;
        }

        profiler.clear();
        std::size_t samples_before = sampler.samples().size();
        std::uint64_t set_freqs_before = chip.dvfs().setFreqCount();
        std::uint64_t throttles_before = chip.dvfs().throttleEvents();
        sampler.start(/*stop_when_idle=*/true);

        if (strategy_active) {
            enqueueIteration(chip, workload, trigger_map,
                             options.guard.enabled, options.guard, stats);
        } else {
            // Fallback: pin the maximum frequency (re-asserted every
            // fallback iteration so a dropped pin cannot persist),
            // then run the iteration with the strategy disabled.
            enqueueGuardedSetFreq(chip, max_mhz,
                                  options.guard.set_freq_retries,
                                  options.guard.retry_backoff, stats);
            enqueueIteration(chip, workload, {},
                             /*guard_set_freqs=*/false, options.guard,
                             stats);
        }
        simulator.run();
        chip.syncAccounting();

        GuardedIteration record;
        record.strategy_active = strategy_active;
        record.set_freq_count =
            chip.dvfs().setFreqCount() - set_freqs_before;
        record.throttled =
            chip.dvfs().throttled()
            || chip.dvfs().throttleEvents() > throttles_before;

        const std::vector<trace::OpRecord> &ops = profiler.records();
        Tick first = ops.empty() ? 0 : ops.front().start;
        Tick last = 0;
        for (const auto &r : ops)
            last = std::max(last, r.end);
        record.seconds = ticksToSeconds(last - first);

        // Median-filter the iteration's telemetry so an injected spike
        // cannot masquerade as a thermal violation.
        std::vector<double> temps;
        const auto &samples = sampler.samples();
        for (std::size_t s = samples_before; s < samples.size(); ++s)
            temps.push_back(samples[s].temperature_c);
        record.telemetry_ok = !temps.empty();
        record.temperature_c =
            temps.empty() ? 0.0 : medianOf(std::move(temps));

        GuardObservation observation;
        observation.iteration_seconds = record.seconds;
        observation.temperature_c = record.temperature_c;
        observation.telemetry_ok = record.telemetry_ok;
        observation.throttled = record.throttled;
        record.state_after = guard.observe(observation);
        record.loss = guard.lastLoss();
        result.iterations.push_back(record);
    }

    result.guard = guard.stats();
    if (const npu::FaultInjector *injector = chip.faultInjector())
        result.faults = injector->counters();
    return result;
}

} // namespace opdvfs::dvfs
