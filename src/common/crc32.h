/**
 * @file
 * CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.
 *
 * Used as an integrity footer on persisted artefacts (strategy files):
 * a partially written or bit-flipped file fails its checksum at load
 * time instead of handing a silently truncated struct to the executor.
 */

#ifndef OPDVFS_COMMON_CRC32_H
#define OPDVFS_COMMON_CRC32_H

#include <cstdint>
#include <string_view>

namespace opdvfs {

/** Streaming CRC-32 accumulator. */
class Crc32
{
  public:
    /** Fold @p bytes into the checksum. */
    void update(std::string_view bytes);

    /** Finalised checksum of everything folded so far. */
    std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

  private:
    std::uint32_t state_ = 0xFFFFFFFFu;
};

/** One-shot CRC-32 of @p bytes. */
std::uint32_t crc32(std::string_view bytes);

} // namespace opdvfs

#endif // OPDVFS_COMMON_CRC32_H
