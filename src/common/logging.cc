#include "common/logging.h"

#include <atomic>
#include <iostream>

namespace opdvfs::log {

namespace {

std::atomic<Level> g_level{Level::Warn};

const char *
levelName(Level level)
{
    switch (level) {
      case Level::Debug: return "DEBUG";
      case Level::Info:  return "INFO";
      case Level::Warn:  return "WARN";
      case Level::Error: return "ERROR";
      case Level::Off:   return "OFF";
    }
    return "?";
}

} // namespace

void
setLevel(Level new_level)
{
    g_level.store(new_level, std::memory_order_relaxed);
}

Level
level()
{
    return g_level.load(std::memory_order_relaxed);
}

void
write(Level message_level, const std::string &message)
{
    if (message_level < level())
        return;
    std::cerr << "[opdvfs " << levelName(message_level) << "] " << message
              << "\n";
}

} // namespace opdvfs::log
