/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic behaviour in the library (measurement noise, genetic
 * algorithm, workload synthesis) flows through Rng instances seeded
 * explicitly, so every experiment is reproducible bit-for-bit.
 */

#ifndef OPDVFS_COMMON_RANDOM_H
#define OPDVFS_COMMON_RANDOM_H

#include <cstdint>
#include <random>
#include <vector>

namespace opdvfs {

/**
 * A seeded pseudo-random source with the distribution helpers the
 * library needs.  Thin wrapper over std::mt19937_64.
 */
class Rng
{
  public:
    /** Construct from an explicit seed. */
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /** Uniform index in [0, n). @p n must be > 0. */
    std::size_t
    index(std::size_t n)
    {
        return static_cast<std::size_t>(
            uniformInt(0, static_cast<std::int64_t>(n) - 1));
    }

    /** Normal deviate with the given mean and standard deviation. */
    double
    gaussian(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /**
     * Multiplicative noise factor: 1 + N(0, relative_sigma), clamped so
     * the factor stays positive.  Used to model measurement noise.
     */
    double
    noiseFactor(double relative_sigma)
    {
        double f = gaussian(1.0, relative_sigma);
        return f > 0.01 ? f : 0.01;
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool
    chance(double p)
    {
        return std::bernoulli_distribution(p)(engine_);
    }

    /**
     * Sample an index in [0, weights.size()) with probability
     * proportional to the (non-negative) weights.  If all weights are
     * zero, samples uniformly.
     */
    std::size_t weightedIndex(const std::vector<double> &weights);

    /** Derive an independent child RNG; advances this generator. */
    Rng
    fork()
    {
        return Rng(engine_());
    }

    /** Access the underlying engine (for std::shuffle etc.). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace opdvfs

#endif // OPDVFS_COMMON_RANDOM_H
