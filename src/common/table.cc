#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace opdvfs {

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&widths](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    if (!title_.empty())
        os << "== " << title_ << " ==\n";

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            std::string cell = i < row.size() ? row[i] : "";
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << cell;
        }
        os << "\n";
    };

    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_)
        emit(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&os](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ",";
            os << row[i];
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
Table::num(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
Table::pct(double fraction, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
    return buf;
}

} // namespace opdvfs
