#include "common/crc32.h"

#include <array>

namespace opdvfs {

namespace {

std::array<std::uint32_t, 256>
buildTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

const std::array<std::uint32_t, 256> &
table()
{
    static const std::array<std::uint32_t, 256> value = buildTable();
    return value;
}

} // namespace

void
Crc32::update(std::string_view bytes)
{
    const auto &t = table();
    for (unsigned char byte : bytes)
        state_ = t[(state_ ^ byte) & 0xFFu] ^ (state_ >> 8);
}

std::uint32_t
crc32(std::string_view bytes)
{
    Crc32 crc;
    crc.update(bytes);
    return crc.value();
}

} // namespace opdvfs
