/**
 * @file
 * Basic unit conventions used across the library.
 *
 * Following gem5 practice, simulated time is an integer tick count; one
 * tick is one picosecond.  Physical quantities carried through analytic
 * code are doubles with the unit encoded in the name (mhz, volts, watts,
 * joules, celsius, seconds).
 */

#ifndef OPDVFS_COMMON_UNITS_H
#define OPDVFS_COMMON_UNITS_H

#include <cstdint>

namespace opdvfs {

/** Simulated time in picoseconds. */
using Tick = std::int64_t;

/** Ticks per second (1 tick == 1 ps). */
constexpr Tick kTicksPerSecond = 1'000'000'000'000LL;

/** Ticks per millisecond. */
constexpr Tick kTicksPerMs = kTicksPerSecond / 1'000;

/** Ticks per microsecond. */
constexpr Tick kTicksPerUs = kTicksPerSecond / 1'000'000;

/** The maximum representable tick; used as "never". */
constexpr Tick kMaxTick = INT64_MAX;

/** Convert a duration in seconds to ticks (rounded to nearest). */
constexpr Tick
secondsToTicks(double seconds)
{
    return static_cast<Tick>(seconds * static_cast<double>(kTicksPerSecond)
                             + 0.5);
}

/** Convert ticks to seconds. */
constexpr double
ticksToSeconds(Tick ticks)
{
    return static_cast<double>(ticks) / static_cast<double>(kTicksPerSecond);
}

/** Convert a core frequency in MHz to Hz. */
constexpr double
mhzToHz(double mhz)
{
    return mhz * 1e6;
}

/**
 * Number of core-domain cycles elapsed in @p seconds at @p mhz.
 * Cycle counts are modelled as continuous quantities (doubles); the
 * analytic equations in the paper treat them the same way.
 */
constexpr double
secondsToCycles(double seconds, double mhz)
{
    return seconds * mhzToHz(mhz);
}

/** Wall time consumed by @p cycles core cycles at @p mhz. */
constexpr double
cyclesToSeconds(double cycles, double mhz)
{
    return cycles / mhzToHz(mhz);
}

} // namespace opdvfs

#endif // OPDVFS_COMMON_UNITS_H
