#include "common/random.h"

#include <numeric>

namespace opdvfs {

std::size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    if (total <= 0.0)
        return index(weights.size());

    double r = uniform(0.0, total);
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return i;
    }
    return weights.size() - 1;
}

} // namespace opdvfs
