/**
 * @file
 * Minimal leveled logging.  Benches and examples use it to narrate the
 * end-to-end pipeline; the library itself logs sparingly.
 */

#ifndef OPDVFS_COMMON_LOGGING_H
#define OPDVFS_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace opdvfs::log {

enum class Level { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Set the global log threshold; messages below it are dropped. */
void setLevel(Level level);

/** Current global threshold. */
Level level();

/** Emit a message at @p level to stderr if it passes the threshold. */
void write(Level level, const std::string &message);

namespace detail {

inline void
format(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
format(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    format(os, rest...);
}

} // namespace detail

/** Log with stream-style concatenation of the arguments. */
template <typename... Args>
void
info(const Args &...args)
{
    if (level() <= Level::Info) {
        std::ostringstream os;
        detail::format(os, args...);
        write(Level::Info, os.str());
    }
}

/** @copydoc info */
template <typename... Args>
void
debug(const Args &...args)
{
    if (level() <= Level::Debug) {
        std::ostringstream os;
        detail::format(os, args...);
        write(Level::Debug, os.str());
    }
}

/** @copydoc info */
template <typename... Args>
void
warn(const Args &...args)
{
    if (level() <= Level::Warn) {
        std::ostringstream os;
        detail::format(os, args...);
        write(Level::Warn, os.str());
    }
}

} // namespace opdvfs::log

#endif // OPDVFS_COMMON_LOGGING_H
