/**
 * @file
 * Aligned ASCII table and CSV output for the benchmark harnesses.
 *
 * Every bench binary regenerates one paper table or figure; Table gives
 * them a uniform, diff-friendly text rendering.
 */

#ifndef OPDVFS_COMMON_TABLE_H
#define OPDVFS_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace opdvfs {

/** A simple column-aligned text table with an optional title. */
class Table
{
  public:
    explicit Table(std::string title = "") : title_(std::move(title)) {}

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a row of preformatted cells. */
    void addRow(std::vector<std::string> row);

    /** Render with aligned columns to the stream. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment padding). */
    void printCsv(std::ostream &os) const;

    std::size_t rowCount() const { return rows_.size(); }

    /** Format a double with @p digits fractional digits. */
    static std::string num(double v, int digits = 2);

    /** Format a fraction as a percentage string, e.g. 0.1344 -> "13.44%". */
    static std::string pct(double fraction, int digits = 2);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace opdvfs

#endif // OPDVFS_COMMON_TABLE_H
