#include "common/statistics.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace opdvfs::stats {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return std::accumulate(xs.begin(), xs.end(), 0.0)
        / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double ss = 0.0;
    for (double x : xs)
        ss += (x - m) * (x - m);
    return std::sqrt(ss / static_cast<double>(xs.size()));
}

double
quantile(std::vector<double> xs, double q)
{
    if (xs.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    std::sort(xs.begin(), xs.end());
    double pos = q * static_cast<double>(xs.size() - 1);
    auto lo = static_cast<std::size_t>(pos);
    auto hi = std::min(lo + 1, xs.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double
relativeError(double predicted, double actual)
{
    if (actual == 0.0)
        throw std::invalid_argument("relativeError: actual value is zero");
    return std::abs(predicted - actual) / std::abs(actual);
}

double
mape(const std::vector<double> &predicted, const std::vector<double> &actual)
{
    if (predicted.size() != actual.size())
        throw std::invalid_argument("mape: size mismatch");
    if (predicted.empty())
        return 0.0;
    double total = 0.0;
    for (std::size_t i = 0; i < predicted.size(); ++i)
        total += relativeError(predicted[i], actual[i]);
    return total / static_cast<double>(predicted.size());
}

std::vector<double>
cdfAt(const std::vector<double> &samples, const std::vector<double> &thresholds)
{
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    std::vector<double> out;
    out.reserve(thresholds.size());
    for (double t : thresholds) {
        auto it = std::upper_bound(sorted.begin(), sorted.end(), t);
        double frac = sorted.empty()
            ? 0.0
            : static_cast<double>(it - sorted.begin())
                / static_cast<double>(sorted.size());
        out.push_back(frac);
    }
    return out;
}

std::vector<double>
bucketFractions(const std::vector<double> &samples,
                const std::vector<double> &edges)
{
    std::vector<double> counts(edges.size() + 1, 0.0);
    for (double s : samples) {
        std::size_t bucket = edges.size();
        for (std::size_t i = 0; i < edges.size(); ++i) {
            if (s <= edges[i]) {
                bucket = i;
                break;
            }
        }
        counts[bucket] += 1.0;
    }
    if (!samples.empty()) {
        for (double &c : counts)
            c /= static_cast<double>(samples.size());
    }
    return counts;
}

LinearFit
fitLine(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.size() != y.size() || x.size() < 2)
        throw std::invalid_argument("fitLine: need >= 2 paired samples");

    double n = static_cast<double>(x.size());
    double sx = std::accumulate(x.begin(), x.end(), 0.0);
    double sy = std::accumulate(y.begin(), y.end(), 0.0);
    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sxx += x[i] * x[i];
        sxy += x[i] * y[i];
        syy += y[i] * y[i];
    }

    double denom = n * sxx - sx * sx;
    if (denom == 0.0)
        throw std::invalid_argument("fitLine: degenerate x values");

    LinearFit fit;
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;

    double ss_tot = syy - sy * sy / n;
    double ss_res = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        double r = y[i] - (fit.slope * x[i] + fit.intercept);
        ss_res += r * r;
    }
    fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
    return fit;
}

void
Accumulator::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    sum_ += x;
    ++count_;
}

double
Accumulator::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

} // namespace opdvfs::stats
