/**
 * @file
 * Descriptive statistics and error metrics used by the model-validation
 * benches (Fig. 15 CDFs, Table 2 error buckets) and by tests.
 */

#ifndef OPDVFS_COMMON_STATISTICS_H
#define OPDVFS_COMMON_STATISTICS_H

#include <cstddef>
#include <string>
#include <vector>

namespace opdvfs::stats {

/** Arithmetic mean; returns 0 for an empty input. */
double mean(const std::vector<double> &xs);

/** Population standard deviation; returns 0 for fewer than 2 samples. */
double stddev(const std::vector<double> &xs);

/**
 * Linear-interpolated quantile, q in [0, 1].  The input does not need
 * to be sorted.  Returns 0 for an empty input.
 */
double quantile(std::vector<double> xs, double q);

/** |predicted - actual| / |actual|; actual must be non-zero. */
double relativeError(double predicted, double actual);

/** Mean absolute percentage error over paired samples (as a fraction). */
double mape(const std::vector<double> &predicted,
            const std::vector<double> &actual);

/**
 * Empirical CDF evaluated at the given thresholds: fraction of samples
 * <= threshold, one output per threshold.
 */
std::vector<double> cdfAt(const std::vector<double> &samples,
                          const std::vector<double> &thresholds);

/**
 * Bucket fractions for Table-2 style reporting.  Edges define half-open
 * buckets (edge[i-1], edge[i]]; the first bucket is (0, edge[0]] and a
 * final bucket captures everything above the last edge.  Returns
 * edges.size() + 1 fractions that sum to 1 (for non-empty input).
 */
std::vector<double> bucketFractions(const std::vector<double> &samples,
                                    const std::vector<double> &edges);

/** Simple linear regression y = a*x + b; returns {a, b}. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination. */
    double r2 = 0.0;
};

/** Least-squares line through the points; needs >= 2 samples. */
LinearFit fitLine(const std::vector<double> &x, const std::vector<double> &y);

/** Running mean/min/max accumulator. */
class Accumulator
{
  public:
    void add(double x);

    double mean() const;
    double min() const { return min_; }
    double max() const { return max_; }
    double sum() const { return sum_; }
    std::size_t count() const { return count_; }

  private:
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::size_t count_ = 0;
};

} // namespace opdvfs::stats

#endif // OPDVFS_COMMON_STATISTICS_H
