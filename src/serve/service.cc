#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "common/statistics.h"
#include "dvfs/evaluator.h"
#include "npu/freq_table.h"
#include "power/offline_calibration.h"
#include "power/power_model.h"
#include "tune/features.h"
#include "tune/incremental.h"

namespace opdvfs::serve {

namespace {

double
elapsedSeconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now()
                                         - since)
        .count();
}

} // namespace

const char *
provenanceToken(Provenance provenance)
{
    switch (provenance) {
    case Provenance::Cold: return "cold";
    case Provenance::ExactHit: return "exact-hit";
    case Provenance::Coalesced: return "coalesced";
    case Provenance::WarmStart: return "warm-start";
    case Provenance::Predicted: return "predicted";
    }
    return "unknown";
}

const char *
rejectReasonToken(RejectReason reason)
{
    switch (reason) {
    case RejectReason::None: return "none";
    case RejectReason::QueueFull: return "queue-full";
    case RejectReason::ShuttingDown: return "shutting-down";
    case RejectReason::Expired: return "expired";
    case RejectReason::Overloaded: return "overloaded";
    }
    return "unknown";
}

StrategyService::StrategyService(ServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.cache),
      pool_(options_.workers == 0 ? 1 : options_.workers)
{
    if (options_.admission_capacity == 0)
        throw std::invalid_argument("StrategyService: zero admission "
                                    "capacity");
    if (options_.warm_generation_fraction <= 0.0
        || options_.warm_generation_fraction > 1.0) {
        throw std::invalid_argument("StrategyService: warm generation "
                                    "fraction must be in (0, 1]");
    }
    if (options_.refine_generation_fraction <= 0.0
        || options_.refine_generation_fraction > 1.0) {
        throw std::invalid_argument("StrategyService: refine generation "
                                    "fraction must be in (0, 1]");
    }
    if (options_.predict_first && !options_.surrogate)
        throw std::invalid_argument("StrategyService: predict_first "
                                    "needs a surrogate");
    // One offline calibration for every request (the paper's offline
    // half of Fig. 11 depends only on the chip).
    if (!options_.pipeline.constants) {
        options_.pipeline.constants =
            power::calibrateOffline(options_.pipeline.chip);
    }
    if (options_.insert_listener) {
        insert_listener_ = std::make_shared<
            const std::function<void(const CacheEntry &)>>(
            options_.insert_listener);
    }
}

StrategyService::~StrategyService()
{
    // drain() waits out every admitted request; the pool destructor
    // (pool_ is the last member) then joins idle workers while the
    // remaining members are still alive, which member declaration
    // order guarantees.
    drain();
}

void
StrategyService::drain()
{
    {
        std::unique_lock<std::mutex> lock(admission_mutex_);
        draining_ = true;
        // Wake submit() blockers so they observe the shutdown and throw.
        admission_open_.notify_all();
        admission_open_.wait(lock, [this] { return admitted_ == 0; });
    }
    // Every admitted request has completed, so every refinement it
    // scheduled is registered; queued ones observe draining_ and bail.
    waitForRefines();
}

void
StrategyService::waitForRefines()
{
    std::unique_lock<std::mutex> lock(refine_mutex_);
    refines_done_.wait(lock, [this] { return refines_in_flight_ == 0; });
}

bool
StrategyService::draining() const
{
    std::lock_guard<std::mutex> lock(admission_mutex_);
    return draining_;
}

std::future<StrategyResponse>
StrategyService::submit(StrategyRequest request)
{
    {
        std::unique_lock<std::mutex> lock(admission_mutex_);
        admission_open_.wait(lock, [this] {
            return draining_ || admitted_ < options_.admission_capacity;
        });
        if (draining_) {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            throw std::runtime_error("StrategyService: shutting down");
        }
        ++admitted_;
    }
    return dispatch(std::move(request));
}

Admission
StrategyService::trySubmit(StrategyRequest request)
{
    RejectReason reject = admitOne(request);
    if (reject != RejectReason::None)
        return {std::nullopt, reject};
    return {dispatch(std::move(request)), RejectReason::None};
}

RejectReason
StrategyService::trySubmit(StrategyRequest request, CompletionFn done)
{
    RejectReason reject = admitOne(request);
    if (reject != RejectReason::None)
        return reject;
    dispatchWith(std::move(request), std::move(done));
    return RejectReason::None;
}

RejectReason
StrategyService::admitOne(const StrategyRequest &request)
{
    // The shed decision hinges on a fingerprint probe that must not
    // run under the admission lock (it hashes the whole op stream), so
    // evaluate it first.  The EWMA signals it reads are monotonic-ish
    // over the microseconds until the lock is taken; a slightly stale
    // read sheds one request early or late, never incorrectly forever.
    bool shed_candidate = shouldShedCold();
    bool likely_hit = false;
    if (shed_candidate && request.use_cache) {
        Fingerprint probe =
            fingerprintRequest(request.workload, options_.pipeline.chip,
                               request.perf_loss_target, request.seed);
        likely_hit = cache_.containsFresh(
            probe.digest, model_epoch_.load(std::memory_order_acquire));
    }
    std::lock_guard<std::mutex> lock(admission_mutex_);
    if (draining_) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return RejectReason::ShuttingDown;
    }
    if (admitted_ >= options_.admission_capacity) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return RejectReason::QueueFull;
    }
    if (shed_candidate && !likely_hit) {
        shed_early_.fetch_add(1, std::memory_order_relaxed);
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return RejectReason::Overloaded;
    }
    ++admitted_;
    return RejectReason::None;
}

bool
StrategyService::shouldShedCold() const
{
    if (options_.shed_sojourn_factor <= 0.0)
        return false;
    // No backlog means new work starts immediately; sojourn history is
    // then a memory of a burst that already cleared.
    if (pool_.queueDepth() == 0)
        return false;
    double sojourn;
    double cold;
    {
        std::lock_guard<std::mutex> lock(overload_mutex_);
        sojourn = sojourn_ewma_;
        cold = cold_ewma_;
    }
    if (cold <= 0.0)
        cold = options_.assumed_cold_seconds;
    double target = std::max(options_.min_shed_sojourn_seconds,
                             options_.shed_sojourn_factor * cold);
    return sojourn > target;
}

std::future<StrategyResponse>
StrategyService::dispatch(StrategyRequest request)
{
    auto promise = std::make_shared<std::promise<StrategyResponse>>();
    std::future<StrategyResponse> future = promise->get_future();
    dispatchWith(std::move(request),
                 [promise](StrategyResponse response,
                           std::exception_ptr error) {
                     if (error)
                         promise->set_exception(error);
                     else
                         promise->set_value(std::move(response));
                 });
    return future;
}

void
StrategyService::dispatchWith(StrategyRequest request, CompletionFn done)
{
    auto admitted_at = std::chrono::steady_clock::now();
    auto expires_at = std::chrono::steady_clock::time_point::max();
    if (std::isfinite(request.deadline_seconds)
        && request.deadline_seconds > 0.0) {
        expires_at =
            admitted_at
            + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(request.deadline_seconds));
    }
    auto shared_request =
        std::make_shared<StrategyRequest>(std::move(request));
    auto shared_done = std::make_shared<CompletionFn>(std::move(done));
    pool_.submit([this, shared_request, shared_done, admitted_at,
                  expires_at] {
        recordSojourn(elapsedSeconds(admitted_at));
        StrategyResponse response;
        std::exception_ptr error;
        if (options_.enforce_deadlines
            && std::chrono::steady_clock::now() >= expires_at) {
            // The caller's budget is gone before any work started:
            // refuse outright rather than burn a GA run nobody reads.
            expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
            error = std::make_exception_ptr(
                RequestExpired("StrategyService: deadline expired while "
                               "queued"));
        } else try {
            response = process(*shared_request, expires_at);
        } catch (...) {
            error = std::current_exception();
        }
        // Release the admission slot before publishing: a delivered
        // completion always implies capacity for the next submit.
        {
            std::lock_guard<std::mutex> lock(admission_mutex_);
            --admitted_;
        }
        admission_open_.notify_all();
        (*shared_done)(std::move(response), error);
    });
}

StrategyResponse
StrategyService::process(const StrategyRequest &request,
                         std::chrono::steady_clock::time_point expires_at)
{
    auto started = std::chrono::steady_clock::now();
    requests_.add();

    Fingerprint fingerprint =
        fingerprintRequest(request.workload, options_.pipeline.chip,
                           request.perf_loss_target, request.seed);
    fingerprint.model_epoch = model_epoch_.load(std::memory_order_acquire);
    int full_generations = options_.pipeline.ga.generations;

    if (request.use_cache) {
        // A same-digest entry from an earlier model epoch: its
        // strategy was searched on superseded models, so it must not
        // be served — but it is still the perfect warm-start donor
        // for the recomputation.
        std::optional<CacheEntry> stale_donor;

        // --- exact hit -----------------------------------------------------
        if (auto hit = cache_.findExact(fingerprint.digest)) {
            if (hit->fingerprint.model_epoch == fingerprint.model_epoch) {
                StrategyResponse response;
                response.strategy = hit->strategy;
                response.ga = hit->ga;
                response.fingerprint = hit->fingerprint;
                response.provenance = Provenance::ExactHit;
                response.generations_saved = full_generations;
                if (response.strategy.meta) {
                    response.strategy.meta->provenance =
                        provenanceToken(response.provenance);
                }
                exact_hits_.add();
                generations_saved_.add(
                    static_cast<std::uint64_t>(full_generations));
                response.service_seconds = elapsedSeconds(started);
                recordLatency(response.service_seconds);
                return response;
            }
            stale_demotions_.fetch_add(1, std::memory_order_relaxed);
            stale_donor = std::move(*hit);
        }

        // --- failover replica read -----------------------------------------
        // A successor answering for a dead owner: serve the replica
        // copy (including warm_start_only imports) as a degraded
        // WarmStart — identical problem, similarity 1.0 — instead of
        // recomputing.  Stale-epoch replicas are not served; the
        // request falls through and computes locally, so failover
        // never degrades to an error either way.
        if (request.serve_replica && !stale_donor) {
            if (auto replica = cache_.findReplica(fingerprint.digest);
                replica
                && replica->fingerprint.model_epoch
                       == fingerprint.model_epoch) {
                StrategyResponse response;
                response.strategy = replica->strategy;
                response.ga = replica->ga;
                response.fingerprint = replica->fingerprint;
                response.provenance = Provenance::WarmStart;
                response.similarity = 1.0;
                response.generations_saved = full_generations;
                if (response.strategy.meta) {
                    response.strategy.meta->provenance =
                        provenanceToken(response.provenance);
                }
                replica_hits_.fetch_add(1, std::memory_order_relaxed);
                warm_hits_.add();
                generations_saved_.add(
                    static_cast<std::uint64_t>(full_generations));
                response.service_seconds = elapsedSeconds(started);
                recordLatency(response.service_seconds);
                return response;
            }
        }

        // The free path (exact hit) is behind us: anything further
        // costs real search time or occupies this worker waiting on a
        // leader, so an expired request stops here — before it can
        // register as a coalesce follower or leader.
        if (options_.enforce_deadlines
            && std::chrono::steady_clock::now() >= expires_at) {
            expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
            throw RequestExpired("StrategyService: deadline expired "
                                 "before the search started");
        }

        // --- coalesce onto an identical in-flight computation --------------
        std::shared_future<StrategyResponse> leader;
        bool is_leader = false;
        std::promise<StrategyResponse> own_promise;
        {
            std::lock_guard<std::mutex> lock(inflight_mutex_);
            auto found = inflight_.find(fingerprint.digest);
            if (found != inflight_.end()) {
                leader = found->second;
            } else {
                is_leader = true;
                leader = own_promise.get_future().share();
                inflight_.emplace(fingerprint.digest, leader);
            }
        }
        if (!is_leader) {
            // Waiting occupies this worker, never the leader's: the
            // leader always progresses on its own thread, so the wait
            // terminates.
            StrategyResponse response = leader.get();
            response.provenance = Provenance::Coalesced;
            if (response.strategy.meta) {
                response.strategy.meta->provenance =
                    provenanceToken(response.provenance);
            }
            response.generations_saved = response.generations_run;
            response.generations_run = 0;
            coalesced_.add();
            generations_saved_.add(
                static_cast<std::uint64_t>(response.generations_saved));
            response.service_seconds = elapsedSeconds(started);
            recordLatency(response.service_seconds);
            return response;
        }

        // --- leader: compute, publish, then cache --------------------------
        StrategyResponse response;
        std::shared_ptr<const dvfs::PreparedWorkload> prepared;
        tune::PredictedStrategy predicted;
        bool served_prediction = false;
        try {
            if (predictEligible(request,
                                stale_donor ? &*stale_donor : nullptr)) {
                try {
                    response = computePredicted(request, fingerprint,
                                                prepared, predicted);
                    served_prediction = true;
                } catch (const std::exception &) {
                    // Surrogate could not produce a usable strategy
                    // (not ready, stage mismatch, ...): the full
                    // search below is always available.
                }
            }
            if (!served_prediction) {
                response =
                    computeFresh(request, fingerprint, expires_at,
                                 stale_donor ? &*stale_donor : nullptr);
            }
        } catch (...) {
            own_promise.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(inflight_mutex_);
            inflight_.erase(fingerprint.digest);
            throw;
        }
        own_promise.set_value(response);
        {
            std::lock_guard<std::mutex> lock(inflight_mutex_);
            inflight_.erase(fingerprint.digest);
        }
        CacheEntry entry;
        entry.fingerprint = fingerprint;
        entry.strategy = response.strategy;
        entry.ga = response.ga;
        entry.perf_loss_target = request.perf_loss_target;
        // A failover-computed answer is for a key this shard does not
        // own: cache it donor-only so it can never shadow the owner's
        // result as an exact hit once the owner returns.
        entry.warm_start_only = request.serve_replica;
        entry.predicted = served_prediction;
        if (!request.serve_replica && !served_prediction) {
            // Owned leader insert: the replication/WAL hook point.
            // Predicted entries are deliberately excluded — they are
            // provisional and must not be persisted or replicated;
            // the listener fires once the refinement upgrades them.
            std::shared_ptr<
                const std::function<void(const CacheEntry &)>>
                listener;
            {
                std::lock_guard<std::mutex> lock(listener_mutex_);
                listener = insert_listener_;
            }
            if (listener && *listener)
                (*listener)(entry);
        }
        cache_.insert(std::move(entry));
        if (served_prediction)
            scheduleRefine(request, fingerprint, std::move(prepared),
                           std::move(predicted));
        response.service_seconds = elapsedSeconds(started);
        recordLatency(response.service_seconds);
        return response;
    }

    StrategyResponse response = computeFresh(request, fingerprint,
                                             expires_at);
    response.service_seconds = elapsedSeconds(started);
    recordLatency(response.service_seconds);
    return response;
}

StrategyResponse
StrategyService::computeFresh(const StrategyRequest &request,
                              const Fingerprint &fingerprint,
                              std::chrono::steady_clock::time_point
                                  expires_at,
                              const CacheEntry *stale_donor)
{
    StrategyResponse response;
    response.fingerprint = fingerprint;
    response.provenance = Provenance::Cold;

    dvfs::PipelineOptions pipeline_options = options_.pipeline;
    pipeline_options.seed = request.seed;
    pipeline_options.perf_loss_target = request.perf_loss_target;
    if (options_.parallel_fitness) {
        pipeline_options.ga.parallel_for =
            [this](std::size_t count,
                   const std::function<void(std::size_t)> &fn) {
                pool_.parallelFor(count, fn);
            };
    }

    int full_generations = pipeline_options.ga.generations;
    if (request.use_cache && request.allow_warm_start) {
        if (stale_donor) {
            // Same problem, previous model epoch: identical features,
            // so the donor similarity is 1.0 by construction.
            response.provenance = Provenance::WarmStart;
            response.similarity = 1.0;
            pipeline_options.ga.prior_individuals.push_back(
                stale_donor->ga.best_mhz);
            pipeline_options.ga.generations = std::max(
                1, static_cast<int>(std::lround(
                       full_generations
                       * options_.warm_generation_fraction)));
        } else if (auto donor =
                       cache_.findSimilar(fingerprint,
                                          options_.warm_similarity,
                                          request.perf_loss_target)) {
            response.provenance = Provenance::WarmStart;
            response.similarity = donor->similarity;
            pipeline_options.ga.prior_individuals.push_back(
                donor->entry.ga.best_mhz);
            pipeline_options.ga.generations = std::max(
                1, static_cast<int>(std::lround(
                       full_generations
                       * options_.warm_generation_fraction)));
        } else if (options_.peer_donor_lookup) {
            // Local cache has nothing useful: ask the cluster.  The
            // lookup blocks this worker only as long as the peer
            // deadlines allow, far below one cold search.
            peer_donor_queries_.fetch_add(1, std::memory_order_relaxed);
            if (auto peer = options_.peer_donor_lookup(
                    fingerprint, request.perf_loss_target)) {
                peer_donor_hits_.fetch_add(1, std::memory_order_relaxed);
                response.provenance = Provenance::WarmStart;
                response.similarity = peer->similarity;
                pipeline_options.ga.prior_individuals.push_back(
                    peer->best_mhz);
                pipeline_options.ga.generations = std::max(
                    1, static_cast<int>(std::lround(
                           full_generations
                           * options_.warm_generation_fraction)));
                // Keep a donor-only copy so the next similar request
                // warm-starts without another peer round-trip.
                importDonor(*peer);
            }
        }
    }

    // Last line of defence directly before the GA: with deadlines
    // enforced no search ever starts for an expired caller; with
    // enforcement off the tripwire counter records the waste instead.
    auto search_started = std::chrono::steady_clock::now();
    if (search_started >= expires_at) {
        if (options_.enforce_deadlines) {
            expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
            throw RequestExpired("StrategyService: deadline expired "
                                 "before the GA started");
        }
        ga_runs_past_deadline_.fetch_add(1, std::memory_order_relaxed);
    }

    dvfs::EnergyPipeline pipeline(pipeline_options);
    dvfs::PipelineResult result = pipeline.optimize(request.workload);
    double search_seconds = elapsedSeconds(search_started);

    response.strategy = result.strategy();
    response.ga = std::move(result.ga);
    response.generations_run = pipeline_options.ga.generations;
    response.generations_saved =
        full_generations - pipeline_options.ga.generations;

    dvfs::StrategyMeta meta;
    meta.score = response.ga.best_score;
    meta.pre_refine_score = response.ga.pre_refine_score;
    meta.converged_at = response.ga.converged_at;
    meta.generations = response.generations_run;
    meta.provenance = provenanceToken(response.provenance);
    meta.fingerprint = fingerprint.digest;
    response.strategy.meta = meta;

    if (response.provenance == Provenance::WarmStart) {
        warm_hits_.add();
        generations_saved_.add(
            static_cast<std::uint64_t>(response.generations_saved));
    } else {
        cold_misses_.add();
        recordColdLatency(search_seconds);
    }
    // Every finished full search is a free training example.
    observeSearch(request, result.prep, response.ga.best_mhz);
    return response;
}

bool
StrategyService::predictEligible(const StrategyRequest &request,
                                 const CacheEntry *stale_donor) const
{
    if (!options_.predict_first || !options_.surrogate)
        return false;
    // The prediction is served as a cache entry and refined through
    // the warm-start machinery, so both must be permitted; replica
    // fills answer for keys this shard does not own and must stay a
    // real (if degraded) search.
    if (!request.use_cache || !request.allow_warm_start
        || request.serve_replica)
        return false;
    // A stale same-digest donor warm-starts the exact genome that won
    // last epoch — strictly better seeded than any prediction.
    if (stale_donor)
        return false;
    return options_.surrogate->ready();
}

StrategyResponse
StrategyService::computePredicted(
    const StrategyRequest &request, const Fingerprint &fingerprint,
    std::shared_ptr<const dvfs::PreparedWorkload> &prepared,
    tune::PredictedStrategy &predicted)
{
    dvfs::PipelineOptions pipeline_options = options_.pipeline;
    pipeline_options.seed = request.seed;
    pipeline_options.perf_loss_target = request.perf_loss_target;

    dvfs::EnergyPipeline pipeline(pipeline_options);
    auto owned = std::make_shared<dvfs::PreparedWorkload>(
        pipeline.prepare(request.workload));

    npu::FreqTable table(options_.pipeline.chip.freq);
    power::PowerModel power_model(owned->constants, table);
    dvfs::StageEvaluator evaluator(owned->prep.stages,
                                   owned->perf_models, power_model,
                                   owned->op_power, table);

    std::vector<tune::StageSample> rows = tune::extractStageRows(
        request.workload, options_.pipeline.chip,
        request.perf_loss_target, owned->prep);
    predicted = tune::predictStrategy(*options_.surrogate, rows,
                                      evaluator,
                                      request.perf_loss_target);

    StrategyResponse response;
    response.fingerprint = fingerprint;
    response.provenance = Provenance::Predicted;
    response.strategy.stages = owned->prep.stages;
    response.strategy.mhz_per_stage = predicted.mhz;
    response.strategy.plan = dvfs::planExecution(
        owned->prep.stages, predicted.mhz, owned->baseline.records,
        options_.pipeline.executor);
    response.ga.best_genome = predicted.genome;
    response.ga.best_mhz = predicted.mhz;
    response.ga.best_score = predicted.score;
    response.ga.best_eval = predicted.eval;
    response.ga.baseline_eval = predicted.baseline_eval;
    response.ga.pre_refine_score = predicted.score;
    response.generations_run = 0;
    response.generations_saved = options_.pipeline.ga.generations;

    dvfs::StrategyMeta meta;
    meta.score = predicted.score;
    meta.pre_refine_score = predicted.score;
    meta.converged_at = 0;
    meta.generations = 0;
    meta.provenance = provenanceToken(response.provenance);
    meta.fingerprint = fingerprint.digest;
    response.strategy.meta = meta;

    predicted_served_.fetch_add(1, std::memory_order_relaxed);
    generations_saved_.add(
        static_cast<std::uint64_t>(response.generations_saved));
    prepared = std::move(owned);
    return response;
}

void
StrategyService::scheduleRefine(
    StrategyRequest request, Fingerprint fingerprint,
    std::shared_ptr<const dvfs::PreparedWorkload> prepared,
    tune::PredictedStrategy predicted)
{
    {
        std::lock_guard<std::mutex> lock(refine_mutex_);
        ++refines_in_flight_;
    }
    auto shared_request =
        std::make_shared<StrategyRequest>(std::move(request));
    auto shared_predicted =
        std::make_shared<tune::PredictedStrategy>(std::move(predicted));
    pool_.submit([this, shared_request, fingerprint, prepared,
                  shared_predicted] {
        if (!draining()) {
            try {
                runRefine(*shared_request, fingerprint, *prepared,
                          *shared_predicted);
            } catch (const std::exception &) {
                // A failed refinement leaves the (validated) predicted
                // entry in place; count it as discarded.
                refine_discards_.fetch_add(1, std::memory_order_relaxed);
            }
        }
        {
            std::lock_guard<std::mutex> lock(refine_mutex_);
            --refines_in_flight_;
        }
        refines_done_.notify_all();
    });
}

void
StrategyService::runRefine(const StrategyRequest &request,
                           const Fingerprint &fingerprint,
                           const dvfs::PreparedWorkload &prepared,
                           const tune::PredictedStrategy &predicted)
{
    npu::FreqTable table(options_.pipeline.chip.freq);
    power::PowerModel power_model(prepared.constants, table);
    dvfs::StageEvaluator evaluator(prepared.prep.stages,
                                   prepared.perf_models, power_model,
                                   prepared.op_power, table);
    tune::IncrementalFitness fitness(evaluator);

    dvfs::GaOptions ga_options = options_.pipeline.ga;
    ga_options.perf_loss_target = request.perf_loss_target;
    // Same seed derivation as the pipeline, so a refined result is
    // comparable to what a cold search would have produced.
    ga_options.seed = options_.pipeline.ga_seed
                          ? *options_.pipeline.ga_seed
                          : request.seed * 7 + 13;
    ga_options.prior_individuals.push_back(predicted.mhz);
    ga_options.generations = std::max(
        1, static_cast<int>(
               std::lround(options_.pipeline.ga.generations
                           * options_.refine_generation_fraction)));
    ga_options.fitness_backend = &fitness;
    if (options_.parallel_fitness) {
        ga_options.parallel_for =
            [this](std::size_t count,
                   const std::function<void(std::size_t)> &fn) {
                pool_.parallelFor(count, fn);
            };
    }
    dvfs::GaResult ga =
        dvfs::searchStrategy(evaluator, prepared.prep.stages, ga_options);

    observeSearch(request, prepared.prep, ga.best_mhz);

    if (!(ga.best_score > predicted.score)) {
        // The prediction already matches (or beats) the search: keep
        // serving it.  Its score was validated by a real evaluation,
        // so this is a genuine tie, not an unverified claim.
        refine_discards_.fetch_add(1, std::memory_order_relaxed);
        return;
    }

    CacheEntry entry;
    entry.fingerprint = fingerprint;
    entry.strategy.stages = prepared.prep.stages;
    entry.strategy.mhz_per_stage = ga.best_mhz;
    entry.strategy.plan = dvfs::planExecution(
        prepared.prep.stages, ga.best_mhz, prepared.baseline.records,
        options_.pipeline.executor);
    dvfs::StrategyMeta meta;
    meta.score = ga.best_score;
    meta.pre_refine_score = ga.pre_refine_score;
    meta.converged_at = ga.converged_at;
    meta.generations = ga_options.generations;
    meta.provenance = "refined";
    meta.fingerprint = fingerprint.digest;
    entry.strategy.meta = meta;
    entry.ga = std::move(ga);
    entry.perf_loss_target = request.perf_loss_target;
    entry.predicted = false;

    // The upgrade is a real owned search result: replicate/persist it
    // like any leader insert, then replace the provisional entry.
    std::shared_ptr<const std::function<void(const CacheEntry &)>>
        listener;
    std::shared_ptr<const std::function<void(std::uint64_t)>> upgraded;
    {
        std::lock_guard<std::mutex> lock(listener_mutex_);
        listener = insert_listener_;
        upgraded = upgrade_listener_;
    }
    if (listener && *listener)
        (*listener)(entry);
    cache_.insert(std::move(entry));
    refine_upgrades_.fetch_add(1, std::memory_order_relaxed);
    // Fires after the cache swap: a fast-path frame dropped now can
    // only be repopulated from the refined entry.
    if (upgraded && *upgraded)
        (*upgraded)(fingerprint.digest);
}

void
StrategyService::observeSearch(const StrategyRequest &request,
                               const dvfs::PreprocessResult &prep,
                               const std::vector<double> &best_mhz)
{
    if (!options_.surrogate || !options_.learn_from_searches)
        return;
    if (best_mhz.size() != prep.stages.size())
        return;
    try {
        std::vector<tune::StageSample> rows = tune::extractStageRows(
            request.workload, options_.pipeline.chip,
            request.perf_loss_target, prep);
        if (rows.size() != best_mhz.size())
            return;
        for (std::size_t s = 0; s < rows.size(); ++s)
            rows[s].target_mhz = best_mhz[s];
        options_.surrogate->observe(rows);
    } catch (const std::exception &) {
        // Training must never fail serving.
    }
}

void
StrategyService::recordSojourn(double seconds)
{
    std::lock_guard<std::mutex> lock(overload_mutex_);
    sojourn_ewma_ = 0.8 * sojourn_ewma_ + 0.2 * seconds;
}

void
StrategyService::recordColdLatency(double seconds)
{
    std::lock_guard<std::mutex> lock(overload_mutex_);
    cold_ewma_ =
        cold_ewma_ <= 0.0 ? seconds : 0.8 * cold_ewma_ + 0.2 * seconds;
}

double
StrategyService::coldEwmaOrPrior() const
{
    std::lock_guard<std::mutex> lock(overload_mutex_);
    return cold_ewma_ > 0.0 ? cold_ewma_ : options_.assumed_cold_seconds;
}

std::uint32_t
StrategyService::retryAfterMs() const
{
    double cold = coldEwmaOrPrior();
    std::size_t admitted;
    {
        std::lock_guard<std::mutex> lock(admission_mutex_);
        admitted = admitted_;
    }
    std::size_t workers = options_.workers == 0 ? 1 : options_.workers;
    // Occupancy expressed in cold-search times per worker: roughly how
    // long until the current backlog has drained enough to admit one
    // more request.
    double wait = cold
                  * (static_cast<double>(admitted + 1)
                     / static_cast<double>(workers));
    wait = std::min(std::max(wait, 0.001), 30.0);
    return static_cast<std::uint32_t>(std::lround(wait * 1000.0));
}

std::uint64_t
StrategyService::advanceModelEpoch()
{
    return model_epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

std::uint64_t
StrategyService::raiseModelEpoch(std::uint64_t epoch)
{
    std::uint64_t current = model_epoch_.load(std::memory_order_acquire);
    while (current < epoch
           && !model_epoch_.compare_exchange_weak(
               current, epoch, std::memory_order_acq_rel,
               std::memory_order_acquire)) {
        // `current` reloaded by the failed CAS; retry until the stored
        // epoch is at least the requested one.
    }
    return std::max(current, epoch);
}

std::optional<SimilarHit>
StrategyService::exportDonor(const Fingerprint &probe,
                             double perf_loss_target)
{
    return cache_.findSimilar(probe, options_.warm_similarity,
                              perf_loss_target, /*owned_only=*/true);
}

void
StrategyService::importDonor(const PeerDonor &donor)
{
    CacheEntry entry;
    entry.fingerprint = donor.fingerprint;
    entry.strategy = donor.strategy;
    entry.ga.best_mhz = donor.best_mhz;
    entry.ga.best_score = donor.best_score;
    entry.perf_loss_target = donor.perf_loss_target;
    entry.warm_start_only = true;
    cache_.insert(std::move(entry));
    donors_imported_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
StrategyService::modelEpoch() const
{
    return model_epoch_.load(std::memory_order_acquire);
}

void
StrategyService::setInsertListener(
    std::function<void(const CacheEntry &)> listener)
{
    auto fresh = listener
                     ? std::make_shared<
                           const std::function<void(const CacheEntry &)>>(
                           std::move(listener))
                     : nullptr;
    std::lock_guard<std::mutex> lock(listener_mutex_);
    insert_listener_ = std::move(fresh);
}

void
StrategyService::setUpgradeListener(
    std::function<void(std::uint64_t)> listener)
{
    auto fresh =
        listener ? std::make_shared<
                       const std::function<void(std::uint64_t)>>(
                       std::move(listener))
                 : nullptr;
    std::lock_guard<std::mutex> lock(listener_mutex_);
    upgrade_listener_ = std::move(fresh);
}

std::vector<CacheEntry>
StrategyService::snapshotCache() const
{
    std::vector<CacheEntry> entries = cache_.snapshotEntries();
    // Predicted entries are provisional: a restart must re-predict (or
    // re-search) rather than resurrect an unrefined guess as truth.
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [](const CacheEntry &entry) {
                                     return entry.predicted;
                                 }),
                  entries.end());
    return entries;
}

std::size_t
StrategyService::restoreEntries(std::vector<CacheEntry> entries)
{
    std::uint64_t max_epoch = 0;
    std::size_t restored = 0;
    for (CacheEntry &entry : entries) {
        max_epoch = std::max(max_epoch, entry.fingerprint.model_epoch);
        cache_.insert(std::move(entry));
        ++restored;
    }
    // Never resurrect below the fleet's epoch: entries persisted at
    // epoch E imply the shard had seen E, so the restarted service
    // must not serve pre-E strategies as fresh.
    raiseModelEpoch(max_epoch);
    restored_entries_.fetch_add(restored, std::memory_order_relaxed);
    return restored;
}

void
StrategyService::recordLatency(double seconds)
{
    std::lock_guard<std::mutex> lock(latency_mutex_);
    // Keep a bounded window: halve once past 8k samples so a
    // long-lived service reports recent percentiles at O(1) memory.
    if (latencies_.size() >= 8192)
        latencies_.erase(latencies_.begin(),
                         latencies_.begin()
                             + static_cast<std::ptrdiff_t>(
                                 latencies_.size() / 2));
    latencies_.push_back(seconds);
}

ServiceStats
StrategyService::stats() const
{
    ServiceStats out;
    out.requests = requests_.total();
    out.exact_hits = exact_hits_.total();
    out.coalesced = coalesced_.total();
    out.warm_hits = warm_hits_.total();
    out.cold_misses = cold_misses_.total();
    out.rejected = rejected_.load(std::memory_order_relaxed);
    out.expired_in_queue =
        expired_in_queue_.load(std::memory_order_relaxed);
    out.shed_early = shed_early_.load(std::memory_order_relaxed);
    out.ga_runs_past_deadline =
        ga_runs_past_deadline_.load(std::memory_order_relaxed);
    out.generations_saved =
        generations_saved_.total();
    out.stale_demotions =
        stale_demotions_.load(std::memory_order_relaxed);
    out.peer_donor_queries =
        peer_donor_queries_.load(std::memory_order_relaxed);
    out.peer_donor_hits =
        peer_donor_hits_.load(std::memory_order_relaxed);
    out.donors_imported =
        donors_imported_.load(std::memory_order_relaxed);
    out.replica_hits = replica_hits_.load(std::memory_order_relaxed);
    out.restored_entries =
        restored_entries_.load(std::memory_order_relaxed);
    out.predicted_served =
        predicted_served_.load(std::memory_order_relaxed);
    out.refine_upgrades =
        refine_upgrades_.load(std::memory_order_relaxed);
    out.refine_discards =
        refine_discards_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(refine_mutex_);
        out.refines_in_flight = refines_in_flight_;
    }
    ScanCounters scans = cache_.scanCounters();
    out.similar_scanned = scans.similar_scanned;
    out.similar_pruned = scans.similar_pruned;
    out.model_epoch = model_epoch_.load(std::memory_order_relaxed);
    out.queue_depth = pool_.queueDepth();
    {
        std::lock_guard<std::mutex> lock(admission_mutex_);
        out.in_flight = admitted_;
        out.draining = draining_;
    }
    out.cache_size = cache_.size();
    {
        std::lock_guard<std::mutex> lock(overload_mutex_);
        out.sojourn_ewma_seconds = sojourn_ewma_;
        out.cold_ewma_seconds = cold_ewma_;
    }
    {
        std::lock_guard<std::mutex> lock(latency_mutex_);
        if (!latencies_.empty()) {
            out.p50_service_seconds = stats::quantile(latencies_, 0.50);
            out.p95_service_seconds = stats::quantile(latencies_, 0.95);
        }
    }
    return out;
}

} // namespace opdvfs::serve
