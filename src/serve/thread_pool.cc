#include "serve/thread_pool.h"

#include <atomic>

namespace opdvfs::serve {

/**
 * Shared state of one parallelFor call.  Participants claim indices
 * from `next` until exhausted; `done` counts completed indices so the
 * caller can wait for stragglers claimed by pool workers.
 */
struct ThreadPool::ForLoop
{
    const std::function<void(std::size_t)> &fn;
    std::size_t count;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::mutex mutex;
    std::condition_variable finished;
    std::exception_ptr error;

    explicit ForLoop(const std::function<void(std::size_t)> &f,
                     std::size_t n)
        : fn(f), count(n)
    {}

    /** Claim and run indices until none remain. */
    void
    drain()
    {
        for (;;) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                if (!failed.load(std::memory_order_acquire))
                    fn(i); // best-effort skip after a failure
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex);
                if (!failed.exchange(true, std::memory_order_acq_rel))
                    error = std::current_exception();
            }
            if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
                std::lock_guard<std::mutex> lock(mutex);
                finished.notify_all();
            }
        }
    }
};

ThreadPool::ThreadPool(std::size_t threads)
{
    workers_.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t)
        workers_.emplace_back([this] { workerMain(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (workers_.empty()) {
        task();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(std::move(task));
    }
    wake_.notify_one();
}

std::size_t
ThreadPool::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tasks_.size();
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    auto loop = std::make_shared<ForLoop>(fn, count);

    // Helpers are pure accelerators: each drains whatever indices are
    // left when it gets scheduled and returns immediately otherwise,
    // so completion never depends on a pool thread being free.
    std::size_t helpers = std::min(workers_.size(), count - 1);
    for (std::size_t h = 0; h < helpers; ++h)
        submit([loop] { loop->drain(); });

    loop->drain();

    std::unique_lock<std::mutex> lock(loop->mutex);
    loop->finished.wait(lock, [&loop] {
        return loop->done.load(std::memory_order_acquire) >= loop->count;
    });
    if (loop->error)
        std::rethrow_exception(loop->error);
}

void
ThreadPool::workerMain()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] {
                return stopping_ || !tasks_.empty();
            });
            if (tasks_.empty())
                return; // stopping and drained
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
    }
}

} // namespace opdvfs::serve
