#include "serve/strategy_cache.h"

#include <cmath>
#include <stdexcept>

namespace opdvfs::serve {

StrategyCache::StrategyCache(const Options &options)
    : loss_target_tolerance_(options.loss_target_tolerance),
      shards_(options.shards == 0 ? 1 : options.shards)
{
    if (options.capacity == 0)
        throw std::invalid_argument("StrategyCache: zero capacity");
    if (!std::isfinite(options.loss_target_tolerance)
        || options.loss_target_tolerance < 0.0)
        throw std::invalid_argument(
            "StrategyCache: negative loss_target_tolerance");
    per_shard_capacity_ =
        (options.capacity + shards_.size() - 1) / shards_.size();
}

StrategyCache::Shard &
StrategyCache::shardFor(std::uint64_t digest)
{
    // The digest is FNV-mixed already; its low bits partition well.
    return shards_[digest % shards_.size()];
}

std::optional<CacheEntry>
StrategyCache::findExact(std::uint64_t digest)
{
    Shard &shard = shardFor(digest);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto found = shard.by_digest.find(digest);
    if (found == shard.by_digest.end() || found->second->warm_start_only)
        return std::nullopt;
    shard.entries.splice(shard.entries.begin(), shard.entries,
                         found->second);
    return *found->second;
}

std::optional<CacheEntry>
StrategyCache::findReplica(std::uint64_t digest)
{
    Shard &shard = shardFor(digest);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto found = shard.by_digest.find(digest);
    if (found == shard.by_digest.end())
        return std::nullopt;
    shard.entries.splice(shard.entries.begin(), shard.entries,
                         found->second);
    return *found->second;
}

bool
StrategyCache::containsFresh(std::uint64_t digest,
                             std::uint64_t model_epoch)
{
    Shard &shard = shardFor(digest);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto found = shard.by_digest.find(digest);
    if (found == shard.by_digest.end() || found->second->warm_start_only)
        return false;
    return found->second->fingerprint.model_epoch == model_epoch;
}

std::optional<SimilarHit>
StrategyCache::findSimilar(const Fingerprint &probe, double min_similarity,
                           std::optional<double> loss_target,
                           bool owned_only)
{
    std::optional<SimilarHit> best;
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (const CacheEntry &entry : shard.entries) {
            if (owned_only && entry.warm_start_only)
                continue;
            if (loss_target
                && std::abs(entry.perf_loss_target - *loss_target)
                    > loss_target_tolerance_)
                continue;
            double similarity =
                fingerprintSimilarity(probe, entry.fingerprint);
            if (similarity < min_similarity)
                continue;
            if (!best || similarity > best->similarity)
                best = SimilarHit{entry, similarity};
        }
    }
    return best;
}

void
StrategyCache::insert(CacheEntry entry)
{
    Shard &shard = shardFor(entry.fingerprint.digest);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto found = shard.by_digest.find(entry.fingerprint.digest);
    if (found != shard.by_digest.end()) {
        if (entry.warm_start_only && !found->second->warm_start_only)
            return; // never shadow an owned result with a donor copy
        shard.entries.erase(found->second);
        shard.by_digest.erase(found);
    }
    shard.entries.push_front(std::move(entry));
    shard.by_digest[shard.entries.front().fingerprint.digest] =
        shard.entries.begin();
    while (shard.entries.size() > per_shard_capacity_) {
        shard.by_digest.erase(shard.entries.back().fingerprint.digest);
        shard.entries.pop_back();
    }
}

std::size_t
StrategyCache::size() const
{
    std::size_t total = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        total += shard.entries.size();
    }
    return total;
}

std::vector<CacheEntry>
StrategyCache::snapshotEntries() const
{
    std::vector<CacheEntry> entries;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (const CacheEntry &entry : shard.entries)
            entries.push_back(entry);
    }
    return entries;
}

} // namespace opdvfs::serve
