#include "serve/strategy_cache.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace opdvfs::serve {

StrategyCache::StrategyCache(const Options &options)
    : loss_target_tolerance_(options.loss_target_tolerance),
      shards_(options.shards == 0 ? 1 : options.shards)
{
    if (options.capacity == 0)
        throw std::invalid_argument("StrategyCache: zero capacity");
    if (!std::isfinite(options.loss_target_tolerance)
        || options.loss_target_tolerance < 0.0)
        throw std::invalid_argument(
            "StrategyCache: negative loss_target_tolerance");
    per_shard_capacity_ =
        (options.capacity + shards_.size() - 1) / shards_.size();
}

StrategyCache::Shard &
StrategyCache::shardFor(std::uint64_t digest)
{
    // The digest is FNV-mixed already; its low bits partition well.
    return shards_[digest % shards_.size()];
}

std::optional<CacheEntry>
StrategyCache::findExact(std::uint64_t digest)
{
    Shard &shard = shardFor(digest);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto found = shard.by_digest.find(digest);
    if (found == shard.by_digest.end() || found->second->warm_start_only)
        return std::nullopt;
    shard.entries.splice(shard.entries.begin(), shard.entries,
                         found->second);
    return *found->second;
}

std::optional<CacheEntry>
StrategyCache::findReplica(std::uint64_t digest)
{
    Shard &shard = shardFor(digest);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto found = shard.by_digest.find(digest);
    if (found == shard.by_digest.end())
        return std::nullopt;
    shard.entries.splice(shard.entries.begin(), shard.entries,
                         found->second);
    return *found->second;
}

bool
StrategyCache::containsFresh(std::uint64_t digest,
                             std::uint64_t model_epoch)
{
    Shard &shard = shardFor(digest);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto found = shard.by_digest.find(digest);
    if (found == shard.by_digest.end() || found->second->warm_start_only)
        return false;
    return found->second->fingerprint.model_epoch == model_epoch;
}

std::optional<SimilarHit>
StrategyCache::findSimilar(const Fingerprint &probe, double min_similarity,
                           std::optional<double> loss_target,
                           bool owned_only)
{
    similar_lookups_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t scanned = 0;
    std::uint64_t pruned = 0;

    // Branch and bound over the full scan: similarity is a monotone
    // decreasing function of the squared feature distance, so once the
    // running partial distance of an entry exceeds the incumbent
    // best's full distance the entry cannot *strictly* beat the best
    // and the row is abandoned.  Iteration order and the
    // strictly-greater replacement rule match the exhaustive scan
    // exactly, so the returned hit is identical — only wasted feature
    // arithmetic is skipped.
    std::optional<SimilarHit> best;
    double best_squared = std::numeric_limits<double>::infinity();
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (const CacheEntry &entry : shard.entries) {
            ++scanned;
            if (owned_only && entry.warm_start_only)
                continue;
            if (loss_target
                && std::abs(entry.perf_loss_target - *loss_target)
                    > loss_target_tolerance_)
                continue;
            const std::vector<double> &a = probe.features;
            const std::vector<double> &b = entry.fingerprint.features;
            if (a.size() != b.size() || a.empty()) {
                // fingerprintSimilarity defines this as 0.
                if (0.0 >= min_similarity && !best)
                    best = SimilarHit{entry, 0.0};
                continue;
            }
            double squared = 0.0;
            bool abandoned = false;
            for (std::size_t i = 0; i < a.size(); ++i) {
                double d = a[i] - b[i];
                squared += d * d;
                if (squared > best_squared) {
                    abandoned = true;
                    ++pruned;
                    break;
                }
            }
            if (abandoned)
                continue;
            double similarity = std::exp(-5.0 * std::sqrt(squared));
            if (similarity < min_similarity)
                continue;
            if (!best || similarity > best->similarity) {
                best = SimilarHit{entry, similarity};
                best_squared = squared;
            }
        }
    }
    similar_scanned_.fetch_add(scanned, std::memory_order_relaxed);
    similar_pruned_.fetch_add(pruned, std::memory_order_relaxed);
    return best;
}

ScanCounters
StrategyCache::scanCounters() const
{
    ScanCounters out;
    out.similar_lookups = similar_lookups_.load(std::memory_order_relaxed);
    out.similar_scanned = similar_scanned_.load(std::memory_order_relaxed);
    out.similar_pruned = similar_pruned_.load(std::memory_order_relaxed);
    return out;
}

void
StrategyCache::insert(CacheEntry entry)
{
    Shard &shard = shardFor(entry.fingerprint.digest);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto found = shard.by_digest.find(entry.fingerprint.digest);
    if (found != shard.by_digest.end()) {
        if (entry.warm_start_only && !found->second->warm_start_only)
            return; // never shadow an owned result with a donor copy
        shard.entries.erase(found->second);
        shard.by_digest.erase(found);
    }
    shard.entries.push_front(std::move(entry));
    shard.by_digest[shard.entries.front().fingerprint.digest] =
        shard.entries.begin();
    while (shard.entries.size() > per_shard_capacity_) {
        shard.by_digest.erase(shard.entries.back().fingerprint.digest);
        shard.entries.pop_back();
    }
}

std::size_t
StrategyCache::size() const
{
    std::size_t total = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        total += shard.entries.size();
    }
    return total;
}

std::vector<CacheEntry>
StrategyCache::snapshotEntries() const
{
    std::vector<CacheEntry> entries;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (const CacheEntry &entry : shard.entries)
            entries.push_back(entry);
    }
    return entries;
}

} // namespace opdvfs::serve
