#include "serve/fingerprint.h"

#include <bit>
#include <cmath>

namespace opdvfs::serve {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/** log10 scale squashed into [0, ~1] for count/volume features. */
double
logScale(double value, double decades)
{
    return std::log10(std::max(value, 0.0) + 1.0) / decades;
}

} // namespace

void
FingerprintHasher::mix(std::uint64_t word)
{
    for (int byte = 0; byte < 8; ++byte) {
        state_ ^= (word >> (8 * byte)) & 0xffULL;
        state_ *= kFnvPrime;
    }
}

void
FingerprintHasher::mixNumber(double value)
{
    if (std::isnan(value)) {
        mix(0x7ff8000000000000ULL); // one canonical NaN
        return;
    }
    if (value == 0.0)
        value = 0.0; // fold -0.0 into +0.0
    mix(std::bit_cast<std::uint64_t>(value));
}

void
FingerprintHasher::mixString(std::string_view text)
{
    mix(text.size());
    for (char c : text) {
        state_ ^= static_cast<unsigned char>(c);
        state_ *= kFnvPrime;
    }
}

Fingerprint
fingerprintRequest(const models::Workload &workload,
                   const npu::NpuConfig &chip, double perf_loss_target,
                   std::uint64_t seed)
{
    FingerprintHasher hasher;
    hasher.mixString("opdvfs-fingerprint-v1");

    // --- workload content --------------------------------------------------
    models::WorkloadFieldVisitor visitor;
    visitor.string_field = [&hasher](std::string_view s) {
        hasher.mixString(s);
    };
    visitor.number_field = [&hasher](double v) { hasher.mixNumber(v); };
    models::visitWorkloadFields(workload, visitor);

    // --- chip configuration ------------------------------------------------
    // Every field the performance/power models or the executor depend
    // on.  FaultPlan is runtime misbehaviour, not a different
    // optimisation problem, so it stays out of the identity.
    const npu::FreqTableConfig &freq = chip.freq;
    for (double v : {freq.min_mhz, freq.max_mhz, freq.step_mhz,
                     freq.knee_mhz, freq.base_volts, freq.volts_per_mhz})
        hasher.mixNumber(v);
    const npu::MemorySystemConfig &mem = chip.memory;
    hasher.mix(mem.core_num);
    for (double v : {mem.bytes_per_cycle_per_core, mem.l2_bandwidth,
                     mem.hbm_bandwidth, mem.bandwidth_scale})
        hasher.mixNumber(v);
    for (double v : {chip.aicore_power.beta, chip.aicore_power.theta,
                     chip.aicore_power.gamma})
        hasher.mixNumber(v);
    for (double v : {chip.uncore_power.idle_watts,
                     chip.uncore_power.active_watts, chip.uncore_power.gamma,
                     chip.uncore_power.dynamic_fraction})
        hasher.mixNumber(v);
    for (double v : {chip.thermal.ambient_celsius, chip.thermal.k_per_watt,
                     chip.thermal.time_constant_s})
        hasher.mixNumber(v);
    hasher.mix(static_cast<std::uint64_t>(chip.set_freq_latency));
    hasher.mixNumber(chip.initial_mhz);
    hasher.mixNumber(chip.uncore_scale);

    // --- request parameters ------------------------------------------------
    hasher.mixNumber(perf_loss_target);
    hasher.mix(seed);

    // --- similarity features -----------------------------------------------
    std::size_t per_category[4] = {0, 0, 0, 0};
    double core_cycles = 0.0;
    double ld_bytes = 0.0;
    double st_bytes = 0.0;
    double cube_ops = 0.0;
    double hit_sum = 0.0;
    std::size_t compute_ops = 0;
    for (const auto &op : workload.iteration) {
        auto cat = static_cast<std::size_t>(op.hw.category);
        if (cat < 4)
            ++per_category[cat];
        if (op.hw.category == npu::OpCategory::Compute) {
            ++compute_ops;
            double reps = static_cast<double>(op.hw.n);
            core_cycles += op.hw.core_cycles * reps;
            ld_bytes += op.hw.ld_volume_bytes * reps;
            st_bytes += op.hw.st_volume_bytes * reps;
            hit_sum += op.hw.ld_l2_hit;
            if (op.hw.core_pipe == npu::CorePipe::Cube)
                cube_ops += 1.0;
        }
    }
    double ops = static_cast<double>(workload.opCount());

    Fingerprint fingerprint;
    fingerprint.digest = hasher.digest();
    fingerprint.features = {
        logScale(ops, 5.0),
        ops > 0.0 ? static_cast<double>(per_category[0]) / ops : 0.0,
        ops > 0.0 ? static_cast<double>(per_category[1]) / ops : 0.0,
        ops > 0.0 ? static_cast<double>(per_category[2]) / ops : 0.0,
        ops > 0.0 ? static_cast<double>(per_category[3]) / ops : 0.0,
        logScale(core_cycles, 16.0),
        logScale(ld_bytes, 16.0),
        logScale(st_bytes, 16.0),
        compute_ops > 0
            ? hit_sum / static_cast<double>(compute_ops)
            : 0.0,
        compute_ops > 0
            ? cube_ops / static_cast<double>(compute_ops)
            : 0.0,
        perf_loss_target * 10.0,
        chip.freq.max_mhz > 0.0 ? chip.freq.min_mhz / chip.freq.max_mhz
                                : 0.0,
        chip.freq.max_mhz > 0.0 ? chip.freq.step_mhz / chip.freq.max_mhz
                                : 0.0,
    };
    return fingerprint;
}

double
fingerprintSimilarity(const Fingerprint &a, const Fingerprint &b)
{
    if (a.features.size() != b.features.size() || a.features.empty())
        return 0.0;
    double squared = 0.0;
    for (std::size_t i = 0; i < a.features.size(); ++i) {
        double d = a.features[i] - b.features[i];
        squared += d * d;
    }
    // exp(-5 d): identical requests score 1, a ~2% feature drift stays
    // above 0.9, and structurally different workloads fall near 0.
    return std::exp(-5.0 * std::sqrt(squared));
}

} // namespace opdvfs::serve
