/**
 * @file
 * Sharded LRU cache of generated DVFS strategies.
 *
 * Exact lookups key on the fingerprint digest and touch only one
 * shard (digest-partitioned, one mutex per shard, so concurrent
 * workers rarely contend).  Similarity lookups scan all shards for the
 * entry whose feature vector is closest to the probe — the warm-start
 * donor search; with production-scale capacities (hundreds of
 * entries) the scan is a few microseconds, far below one GA
 * generation.
 */

#ifndef OPDVFS_SERVE_STRATEGY_CACHE_H
#define OPDVFS_SERVE_STRATEGY_CACHE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dvfs/genetic.h"
#include "dvfs/strategy_io.h"
#include "serve/fingerprint.h"

namespace opdvfs::serve {

/** One cached optimisation result. */
struct CacheEntry
{
    Fingerprint fingerprint;
    /** The generated strategy (stages, per-stage MHz, SetFreq plan). */
    dvfs::Strategy strategy;
    /** Full search output; `best_mhz` seeds warm starts. */
    dvfs::GaResult ga;
    /** The loss target the strategy was generated for. */
    double perf_loss_target = 0.0;
    /**
     * The entry may seed warm starts but must never be served as an
     * exact hit.  Set on strategies imported from peer shards: the
     * importer is not the entry's owner, so serving it verbatim would
     * let a stale copy outlive the owner's invalidation.
     */
    bool warm_start_only = false;
    /**
     * Provisional entry from the surrogate's predict-first path: a
     * full asynchronous search is (or was) still refining it.  Served
     * as an exact hit like any owned entry, but never replicated,
     * WAL-logged or snapshotted — on upgrade or restart the full
     * search result replaces it, so persisting the prediction would
     * only resurrect the lower-quality answer.
     */
    bool predicted = false;
};

/** A similarity lookup hit. */
struct SimilarHit
{
    CacheEntry entry;
    double similarity = 0.0;
};

/** Similarity-scan effort counters (monotonic). */
struct ScanCounters
{
    /** findSimilar() calls. */
    std::uint64_t similar_lookups = 0;
    /** Entries visited across all lookups. */
    std::uint64_t similar_scanned = 0;
    /** Entries whose partial distance exceeded the incumbent best and
     *  were abandoned mid-row (the branch-and-bound win). */
    std::uint64_t similar_pruned = 0;
};

/** Thread-safe sharded LRU over fingerprint digests. */
class StrategyCache
{
  public:
    struct Options
    {
        /** Total entries across all shards. */
        std::size_t capacity = 256;
        /** Digest-partitioned shards (>= 1; each holds cap/shards). */
        std::size_t shards = 8;
        /**
         * Max |donor loss target - probe loss target| a similarity
         * lookup tolerates.  A strategy tuned for a different
         * performance envelope optimises the wrong trade-off; seeding
         * the GA with it drags the search toward that envelope.
         */
        double loss_target_tolerance = 0.005;
    };

    explicit StrategyCache(const Options &options);

    /** Exact hit by digest; refreshes LRU recency.  Entries marked
     *  `warm_start_only` are invisible here (donor-only). */
    std::optional<CacheEntry> findExact(std::uint64_t digest);

    /**
     * Exact lookup by digest *including* `warm_start_only` entries —
     * the failover read: a successor answering for a dead owner may
     * serve its replica copy (degraded to warm-start provenance by
     * the service).  Refreshes LRU recency.  Never used on the
     * normal serving path, where warm_start_only stays invisible.
     */
    std::optional<CacheEntry> findReplica(std::uint64_t digest);

    /**
     * Cheap admission-control probe: is a digest cached at this model
     * epoch?  Copies nothing and does not refresh recency — a probe
     * is a prediction, not a use; the hit is only consumed if the
     * request is admitted and findExact runs on a worker.
     */
    bool containsFresh(std::uint64_t digest, std::uint64_t model_epoch);

    /**
     * Best entry by feature similarity to @p probe, if any reaches
     * @p min_similarity.  Does not refresh recency (a donor is not a
     * use of the entry's own workload).  When @p loss_target is set,
     * entries generated for a loss target differing by more than
     * `Options::loss_target_tolerance` are skipped.  With
     * @p owned_only, `warm_start_only` entries are skipped too — a
     * shard exporting donors to peers must not relay second-hand
     * copies it imported itself.
     */
    std::optional<SimilarHit>
    findSimilar(const Fingerprint &probe, double min_similarity,
                std::optional<double> loss_target = std::nullopt,
                bool owned_only = false);

    /** Similarity-scan effort so far (served into ServiceStats). */
    ScanCounters scanCounters() const;

    /** Insert or overwrite; evicts the shard's LRU entry when full.
     *  A `warm_start_only` entry never replaces a full entry with the
     *  same digest — a donor copy must not shadow an owned result. */
    void insert(CacheEntry entry);

    /** Current entry count across shards. */
    std::size_t size() const;

    /**
     * A copy of every entry, most-recently-used first within each
     * shard — the persistence snapshot.  Shards are locked one at a
     * time, so the copy is per-shard consistent, not a global point
     * in time; the WAL covers inserts racing the snapshot.
     */
    std::vector<CacheEntry> snapshotEntries() const;

  private:
    struct Shard
    {
        mutable std::mutex mutex;
        /** Most-recently-used first. */
        std::list<CacheEntry> entries;
        std::unordered_map<std::uint64_t, std::list<CacheEntry>::iterator>
            by_digest;
    };

    Shard &shardFor(std::uint64_t digest);

    double loss_target_tolerance_;
    std::size_t per_shard_capacity_;
    std::vector<Shard> shards_;

    std::atomic<std::uint64_t> similar_lookups_{0};
    std::atomic<std::uint64_t> similar_scanned_{0};
    std::atomic<std::uint64_t> similar_pruned_{0};
};

} // namespace opdvfs::serve

#endif // OPDVFS_SERVE_STRATEGY_CACHE_H
