/**
 * @file
 * Canonical workload fingerprints for the strategy service.
 *
 * A fingerprint identifies one optimisation problem: the operator
 * sequence (types, shapes, per-op parameters), the chip configuration
 * (frequency table, memory system, power/thermal parameters), and the
 * request's performance-loss target and seed.  Two parts:
 *
 *  - `digest`: a 64-bit FNV-1a hash over the canonical field stream —
 *    the exact-match cache key.  Only field *values* are hashed (never
 *    addresses or iteration order of unordered containers), so the
 *    digest is stable across processes and runs.
 *  - `features`: a small normalised feature vector (op-count scale,
 *    category mix, bottleneck-relevant volume totals, loss target)
 *    used to find *similar* cached problems whose strategies can
 *    warm-start the genetic search.
 */

#ifndef OPDVFS_SERVE_FINGERPRINT_H
#define OPDVFS_SERVE_FINGERPRINT_H

#include <cstdint>
#include <string_view>
#include <vector>

#include "models/workload.h"
#include "npu/npu_chip.h"

namespace opdvfs::serve {

/** Identity + similarity coordinates of one strategy request. */
struct Fingerprint
{
    /** Exact-match key (stable FNV-1a over the canonical stream). */
    std::uint64_t digest = 0;
    /** Normalised similarity features; same length for every request. */
    std::vector<double> features;
    /**
     * Model epoch the strategy was generated under (the service
     * stamps it).  Deliberately NOT part of the digest: a request is
     * the same problem across epochs, but a cached answer from an
     * older epoch is stale — still a warm-start donor, never an exact
     * hit.
     */
    std::uint64_t model_epoch = 0;
};

/** Streaming FNV-1a hasher over canonicalised values. */
class FingerprintHasher
{
  public:
    /** Mix a raw 64-bit word. */
    void mix(std::uint64_t word);
    /** Mix a double by bit pattern; -0.0 and all NaNs canonicalised. */
    void mixNumber(double value);
    /** Mix a string: length then bytes. */
    void mixString(std::string_view text);

    std::uint64_t digest() const { return state_; }

  private:
    /** FNV-1a 64-bit offset basis. */
    std::uint64_t state_ = 1469598103934665603ULL;
};

/**
 * Fingerprint one strategy request: workload content, chip
 * configuration (frequency table, memory, power, thermal, latencies),
 * and the performance-loss target.  The GA seed is mixed into the
 * digest (a different seed is a different request, keeping the service
 * path bit-reproducible) but not into the features (the same workload
 * under a different seed is still a perfect warm-start donor).
 */
Fingerprint fingerprintRequest(const models::Workload &workload,
                               const npu::NpuConfig &chip,
                               double perf_loss_target,
                               std::uint64_t seed);

/**
 * Similarity in [0, 1]: 1 for identical feature vectors, falling off
 * with their weighted Euclidean distance.  Vectors of different
 * lengths (different library versions) compare as 0.
 */
double fingerprintSimilarity(const Fingerprint &a, const Fingerprint &b);

} // namespace opdvfs::serve

#endif // OPDVFS_SERVE_FINGERPRINT_H
