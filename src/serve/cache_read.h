/**
 * @file
 * Epoch-based RCU read path for the serving cache.
 *
 * The strategy cache proper (strategy_cache.h) is sharded behind
 * mutexes — fine for GA workers that hold a result for milliseconds,
 * fatal for a reactor thread that wants to answer an exact hit in a
 * few microseconds without ever blocking.  ReadIndex gives reactors a
 * wait-free read path: the writer builds a fully immutable snapshot
 * (digest -> pre-encoded entry), publishes it with one atomic pointer
 * store, and readers dereference the current snapshot without taking
 * any lock.
 *
 * Reclamation is epoch-based.  Each registered reader owns a
 * cache-line-padded pin slot; a lookup stores the current global
 * epoch into its slot, loads the snapshot pointer, finishes, and
 * stores 0.  A publish retires the previous snapshot stamped with the
 * post-bump epoch R; a retired snapshot is freed only once every
 * *active* reader's pin is >= R — a reader pinned at >= R provably
 * loaded the pointer after the swap (all pin/epoch/pointer accesses
 * are seq_cst, so the reader's later pointer load is ordered after
 * the writer's store in the single total order), so it cannot hold
 * the retired snapshot.  Quiescent readers (pin 0) never block
 * reclamation.
 *
 * Writers (publish) serialize on an internal mutex; readers never
 * touch it.  Readers must each call registerReader() once and pass
 * their slot to every lookup — slots are owned, not shared.
 */

#ifndef OPDVFS_SERVE_CACHE_READ_H
#define OPDVFS_SERVE_CACHE_READ_H

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace opdvfs::serve {

/** One pre-encoded exact-hit entry visible to reactor readers. */
struct ReadEntry
{
    /** Model epoch the entry was computed under; an entry is served
     *  only when this equals the service's current epoch, so a
     *  recalibration instantly gates every stale entry without a
     *  republish. */
    std::uint64_t model_epoch = 0;
    /** Immutable pre-encoded response frame (opaque to this layer).
     *  Shared so a returned frame outlives the snapshot it came
     *  from. */
    std::shared_ptr<const std::string> frame;
};

/** An immutable published generation of the index. */
struct ReadSnapshot
{
    std::unordered_map<std::uint64_t, ReadEntry> by_digest;
    /** Monotonic publish generation (introspection/tests). */
    std::uint64_t version = 0;
};

/**
 * Atomically-published immutable digest index with epoch-based
 * reclamation.  One writer side (internally serialized), up to
 * kMaxReaders registered lock-free readers.
 */
class ReadIndex
{
  public:
    /** Reader slots are statically sized: reactors register at server
     *  start, tests register a handful of threads. */
    static constexpr std::size_t kMaxReaders = 64;

    ReadIndex();
    ~ReadIndex() = default;

    ReadIndex(const ReadIndex &) = delete;
    ReadIndex &operator=(const ReadIndex &) = delete;

    /**
     * Claim a reader slot for the calling thread's exclusive use.
     * @throws std::runtime_error when kMaxReaders slots are taken.
     */
    std::size_t registerReader();

    /**
     * Wait-free exact lookup: returns the entry's frame when @p digest
     * is present at exactly @p model_epoch, null otherwise.  Never
     * takes a lock; never returns an entry from a different epoch.
     * @p reader must be a slot returned by registerReader() and used
     * by one thread at a time.
     */
    std::shared_ptr<const std::string> lookup(std::size_t reader,
                                              std::uint64_t digest,
                                              std::uint64_t model_epoch);

    /**
     * Publish @p next as the current snapshot and retire the previous
     * one.  Serialized internally; safe against concurrent lookups.
     * @p next must not be mutated after the call.
     */
    void publish(std::shared_ptr<const ReadSnapshot> next);

    /**
     * The current snapshot for copy-on-write mutation by the writer.
     * Callers building the successor snapshot must serialize among
     * themselves (EncodedResponseCache holds its own writer mutex).
     */
    std::shared_ptr<const ReadSnapshot> writerSnapshot() const;

    /** Entries in the current snapshot (unpinned size probe). */
    std::size_t size() const;

    /** Opportunistically free retired snapshots no reader can still
     *  hold.  publish() does this automatically; call between
     *  publishes to release memory once readers quiesce. */
    void reclaim();

    /** Total publish() calls. */
    std::uint64_t publishes() const;
    /** Retired snapshots not yet reclaimed (bounded by slow readers;
     *  0 when all readers are quiescent after a publish). */
    std::size_t retiredSnapshots() const;
    /** Retired snapshots freed so far. */
    std::uint64_t reclaimedSnapshots() const;

  private:
    struct alignas(64) ReaderSlot
    {
        /** 0 = quiescent; otherwise the global epoch pinned by an
         *  in-progress lookup. */
        std::atomic<std::uint64_t> pin{0};
    };

    struct Retired
    {
        std::shared_ptr<const ReadSnapshot> snapshot;
        /** Global epoch value *after* the swap that retired it: safe
         *  to free once every active pin is >= this. */
        std::uint64_t epoch = 0;
    };

    /** Free every retired snapshot no active reader can still hold.
     *  Caller holds writer_mutex_. */
    void reclaimLocked();

    std::array<ReaderSlot, kMaxReaders> slots_;
    std::atomic<std::size_t> reader_count_{0};

    /** Raw pointer readers dereference; owned by current_owner_. */
    std::atomic<const ReadSnapshot *> current_;
    std::atomic<std::uint64_t> global_epoch_{1};

    mutable std::mutex writer_mutex_;
    std::shared_ptr<const ReadSnapshot> current_owner_;
    std::vector<Retired> retired_;
    std::uint64_t publishes_ = 0;
    std::uint64_t reclaimed_ = 0;
};

} // namespace opdvfs::serve

#endif // OPDVFS_SERVE_CACHE_READ_H
