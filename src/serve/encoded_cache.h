/**
 * @file
 * Pre-encoded response cache for the reactor exact-hit fast path.
 *
 * A cache over the cache: the strategy cache stores decoded entries
 * (strategy + GA result); this one stores the *wire frame* a server
 * would send for an exact hit on that entry, so a reactor can answer
 * fingerprint -> memcpy -> send without decoding, re-encoding, or a
 * worker hop.  The serve layer treats the frame as opaque bytes — the
 * net layer (which owns the wire format) encodes them on insert, and
 * reuses them verbatim, so the CRC is computed once and every served
 * copy is CRC-exact.
 *
 * Reads go through the RCU ReadIndex (cache_read.h): wait-free, no
 * shard mutexes, epoch-equality checked per lookup so a stale entry
 * is never served as exact.  Writes (worker-path completions, a few
 * per second at most — each corresponds to a real GA search or a
 * cache population event) copy the current snapshot, mutate, and
 * publish; their cost is bounded by `capacity`.
 *
 * Misses are always safe: the caller falls through to the worker
 * path, which serves from the strategy cache and repopulates this
 * one.  Eviction is FIFO by first insert — exact-hit traffic is
 * fingerprint-uniform enough that recency tracking is not worth
 * per-read writes (which the read path must not do).
 */

#ifndef OPDVFS_SERVE_ENCODED_CACHE_H
#define OPDVFS_SERVE_ENCODED_CACHE_H

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "serve/cache_read.h"

namespace opdvfs::serve {

struct EncodedCacheOptions
{
    /** Entries kept; oldest-inserted evicted beyond this. */
    std::size_t capacity = 1024;
};

/**
 * Digest -> pre-encoded response frame, RCU-read, copy-on-write
 * published.  Thread-safe: any thread may insert/invalidate; each
 * registered reader slot may be used by one thread at a time.
 */
class EncodedResponseCache
{
  public:
    explicit EncodedResponseCache(EncodedCacheOptions options = {});

    EncodedResponseCache(const EncodedResponseCache &) = delete;
    EncodedResponseCache &operator=(const EncodedResponseCache &) = delete;

    /** Claim a wait-free reader slot (one per reactor thread). */
    std::size_t registerReader() { return index_.registerReader(); }

    /**
     * Wait-free probe: the pre-encoded frame for @p digest, but only
     * when the entry was encoded under exactly @p model_epoch — a
     * recalibration gates every older entry without a republish.
     */
    std::shared_ptr<const std::string> find(std::size_t reader,
                                            std::uint64_t digest,
                                            std::uint64_t model_epoch)
    {
        return index_.lookup(reader, digest, model_epoch);
    }

    /**
     * Insert (or replace) the frame for @p digest.  A same-epoch
     * duplicate with identical bytes is skipped without a publish.
     */
    void insert(std::uint64_t digest, std::uint64_t model_epoch,
                std::string frame);

    /** Drop every entry whose epoch is below @p model_epoch.  Purely
     *  a memory release: find()'s epoch-equality check already stops
     *  stale entries from being served. */
    void invalidateBelow(std::uint64_t model_epoch);

    /**
     * Drop the frame for one digest (no-op when absent).  The async
     * refine path calls this when a full search upgrades a predicted
     * entry: the pre-encoded prediction must stop being served so the
     * next exact hit re-populates from the refined strategy.
     */
    void erase(std::uint64_t digest);

    /** Entries in the current snapshot. */
    std::size_t size() const { return index_.size(); }

    /** Snapshots published (insert/invalidate churn, for tests). */
    std::uint64_t publishes() const { return index_.publishes(); }
    /** Retired-but-unreclaimed snapshot count (tests/diagnostics). */
    std::size_t retiredSnapshots() const
    {
        return index_.retiredSnapshots();
    }
    /** Free retired snapshots whose readers have quiesced. */
    void reclaim() { index_.reclaim(); }

  private:
    EncodedCacheOptions options_;
    ReadIndex index_;
    /** Serializes copy-on-write writers (insert/invalidate). */
    std::mutex writer_mutex_;
    /** First-insert order for FIFO eviction (writer-owned). */
    std::deque<std::uint64_t> insert_order_;
};

} // namespace opdvfs::serve

#endif // OPDVFS_SERVE_ENCODED_CACHE_H
