#include "serve/encoded_cache.h"

#include <utility>

namespace opdvfs::serve {

EncodedResponseCache::EncodedResponseCache(EncodedCacheOptions options)
    : options_(options)
{
    if (options_.capacity == 0)
        options_.capacity = 1;
}

void
EncodedResponseCache::insert(std::uint64_t digest,
                             std::uint64_t model_epoch,
                             std::string frame)
{
    std::lock_guard<std::mutex> lock(writer_mutex_);
    std::shared_ptr<const ReadSnapshot> current = index_.writerSnapshot();

    auto existing = current->by_digest.find(digest);
    if (existing != current->by_digest.end()
        && existing->second.model_epoch == model_epoch
        && *existing->second.frame == frame)
        return; // identical duplicate: no churn

    auto next = std::make_shared<ReadSnapshot>();
    next->by_digest = current->by_digest;
    next->version = current->version + 1;
    if (existing == current->by_digest.end())
        insert_order_.push_back(digest);
    next->by_digest[digest] =
        ReadEntry{model_epoch,
                  std::make_shared<const std::string>(std::move(frame))};

    while (next->by_digest.size() > options_.capacity
           && !insert_order_.empty()) {
        std::uint64_t victim = insert_order_.front();
        insert_order_.pop_front();
        if (victim != digest) // never evict the entry being inserted
            next->by_digest.erase(victim);
        else
            insert_order_.push_back(victim);
    }
    index_.publish(std::move(next));
}

void
EncodedResponseCache::erase(std::uint64_t digest)
{
    std::lock_guard<std::mutex> lock(writer_mutex_);
    std::shared_ptr<const ReadSnapshot> current = index_.writerSnapshot();
    if (current->by_digest.find(digest) == current->by_digest.end())
        return; // absent: keep the current snapshot

    auto next = std::make_shared<ReadSnapshot>();
    next->by_digest = current->by_digest;
    next->version = current->version + 1;
    next->by_digest.erase(digest);
    for (auto it = insert_order_.begin(); it != insert_order_.end(); ++it) {
        if (*it == digest) {
            insert_order_.erase(it);
            break;
        }
    }
    index_.publish(std::move(next));
}

void
EncodedResponseCache::invalidateBelow(std::uint64_t model_epoch)
{
    std::lock_guard<std::mutex> lock(writer_mutex_);
    std::shared_ptr<const ReadSnapshot> current = index_.writerSnapshot();

    auto next = std::make_shared<ReadSnapshot>();
    next->version = current->version + 1;
    for (const auto &[digest, entry] : current->by_digest)
        if (entry.model_epoch >= model_epoch)
            next->by_digest.emplace(digest, entry);
    if (next->by_digest.size() == current->by_digest.size())
        return; // nothing stale: keep the current snapshot

    std::deque<std::uint64_t> kept;
    for (std::uint64_t digest : insert_order_)
        if (next->by_digest.count(digest) != 0)
            kept.push_back(digest);
    insert_order_ = std::move(kept);
    index_.publish(std::move(next));
}

} // namespace opdvfs::serve
