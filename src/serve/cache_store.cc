#include "serve/cache_store.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "common/crc32.h"
#include "dvfs/strategy_io.h"
#include "serve/service.h"

namespace opdvfs::serve {

namespace {

// Caps mirroring the wire limits: persisted artefacts face the same
// adversary (torn files, bit flips) as frames, so they get the same
// pre-allocation bounds.
constexpr std::size_t kMaxFeatures = 64;
constexpr std::size_t kMaxStages = 16384;
constexpr std::size_t kMaxStrategyBytes = 1u << 20;
constexpr std::size_t kMaxSnapshotEntries = 100000;

constexpr char kWalMagic[4] = {'O', 'W', 'L', '1'};
constexpr std::size_t kWalHeaderBytes = 12;
constexpr std::size_t kWalRecordCap = 4u << 20;

/** The next non-empty, non-comment line, CR-stripped. */
bool
nextLine(std::istream &is, std::string &line)
{
    while (std::getline(is, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (!line.empty() && line[0] != '#')
            return true;
    }
    return false;
}

std::string
needLine(std::istream &is, const char *what)
{
    std::string line;
    if (!nextLine(is, line))
        throw std::invalid_argument(
            std::string("cache_store: truncated entry: missing ") + what);
    return line;
}

double
finiteField(std::istringstream &fields, const char *what)
{
    double value = 0.0;
    if (!(fields >> value) || !std::isfinite(value))
        throw std::invalid_argument(
            std::string("cache_store: bad or non-finite ") + what);
    return value;
}

std::vector<double>
parseDoublesRecord(const std::string &line, const char *prefix,
                   std::size_t cap)
{
    std::istringstream fields(line);
    std::string token;
    std::uint64_t count = 0;
    if (!(fields >> token >> count) || token != prefix || count > cap)
        throw std::invalid_argument("cache_store: bad record: " + line);
    std::vector<double> values(static_cast<std::size_t>(count));
    for (double &value : values)
        value = finiteField(fields, prefix);
    if (!(fields >> std::ws).eof())
        throw std::invalid_argument(
            "cache_store: trailing fields in record: " + line);
    return values;
}

void
writeDoublesRecord(std::ostream &os, const char *prefix,
                   const std::vector<double> &values, std::size_t cap)
{
    if (values.size() > cap)
        throw std::invalid_argument(
            std::string("cache_store: too many ") + prefix + " values");
    os << prefix << ' ' << values.size();
    for (double value : values) {
        if (!std::isfinite(value))
            throw std::invalid_argument(
                std::string("cache_store: non-finite ") + prefix
                + " value");
        os << ' ' << value;
    }
    os << '\n';
}

void
putU32(std::string &out, std::uint32_t value)
{
    for (int byte = 0; byte < 4; ++byte)
        out.push_back(static_cast<char>(
            static_cast<std::uint8_t>(value >> (8 * byte))));
}

std::uint32_t
getU32(std::string_view bytes, std::size_t at)
{
    std::uint32_t value = 0;
    for (int byte = 0; byte < 4; ++byte)
        value |= static_cast<std::uint32_t>(
                     static_cast<std::uint8_t>(bytes[at + byte]))
                 << (8 * byte);
    return value;
}

std::optional<std::string>
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << is.rdbuf();
    return std::move(buffer).str();
}

} // namespace

void
encodeCacheEntry(const CacheEntry &entry, std::ostream &os)
{
    if (!std::isfinite(entry.perf_loss_target)
        || entry.perf_loss_target <= 0.0 || entry.perf_loss_target >= 1.0)
        throw std::invalid_argument(
            "cache_store: perf_loss_target outside (0, 1)");
    if (!std::isfinite(entry.ga.best_score))
        throw std::invalid_argument("cache_store: non-finite best_score");
    std::ostringstream strategy_text;
    dvfs::saveStrategy(entry.strategy, strategy_text);
    std::string strategy = std::move(strategy_text).str();
    if (strategy.size() > kMaxStrategyBytes)
        throw std::invalid_argument(
            "cache_store: strategy text exceeds its block cap");

    // max_digits10 everywhere: every finite double round-trips to the
    // identical bit pattern, so a snapshot/WAL cycle is lossless.
    os << std::setprecision(17);
    os << "entry v1\n";
    os << "digest " << std::hex << std::setw(16) << std::setfill('0')
       << entry.fingerprint.digest << std::dec << std::setfill(' ')
       << '\n';
    os << "epoch " << entry.fingerprint.model_epoch << '\n';
    os << "loss " << entry.perf_loss_target << '\n';
    os << "score " << entry.ga.best_score << '\n';
    os << "donor " << (entry.warm_start_only ? 1 : 0) << '\n';
    writeDoublesRecord(os, "features", entry.fingerprint.features,
                       kMaxFeatures);
    writeDoublesRecord(os, "mhz", entry.ga.best_mhz, kMaxStages);
    os << "strategy " << strategy.size() << '\n';
    os << strategy;
    os << "endentry\n";
}

CacheEntry
decodeCacheEntry(std::istream &is)
{
    std::string line = needLine(is, "header");
    if (line != "entry v1")
        throw std::invalid_argument("cache_store: bad entry header: "
                                    + line);
    CacheEntry entry;

    auto parseField = [](const std::string &record, const char *prefix) {
        std::istringstream fields(record);
        std::string token;
        if (!(fields >> token) || token != prefix)
            throw std::invalid_argument("cache_store: expected " +
                                        std::string(prefix) + " record: "
                                        + record);
        return fields;
    };

    {
        std::istringstream fields =
            parseField(needLine(is, "digest"), "digest");
        std::string hex;
        if (!(fields >> hex) || hex.size() != 16
            || hex.find_first_not_of("0123456789abcdefABCDEF")
                   != std::string::npos
            || !(fields >> std::ws).eof())
            throw std::invalid_argument("cache_store: bad digest record");
        entry.fingerprint.digest = std::stoull(hex, nullptr, 16);
    }
    {
        std::istringstream fields =
            parseField(needLine(is, "epoch"), "epoch");
        if (!(fields >> entry.fingerprint.model_epoch)
            || !(fields >> std::ws).eof())
            throw std::invalid_argument("cache_store: bad epoch record");
    }
    {
        std::istringstream fields = parseField(needLine(is, "loss"),
                                               "loss");
        entry.perf_loss_target = finiteField(fields, "loss");
        if (entry.perf_loss_target <= 0.0
            || entry.perf_loss_target >= 1.0
            || !(fields >> std::ws).eof())
            throw std::invalid_argument(
                "cache_store: perf_loss_target outside (0, 1)");
    }
    {
        std::istringstream fields = parseField(needLine(is, "score"),
                                               "score");
        entry.ga.best_score = finiteField(fields, "score");
        if (!(fields >> std::ws).eof())
            throw std::invalid_argument("cache_store: bad score record");
    }
    {
        std::istringstream fields = parseField(needLine(is, "donor"),
                                               "donor");
        int donor = -1;
        if (!(fields >> donor) || (donor != 0 && donor != 1)
            || !(fields >> std::ws).eof())
            throw std::invalid_argument("cache_store: bad donor record");
        entry.warm_start_only = donor == 1;
    }
    entry.fingerprint.features = parseDoublesRecord(
        needLine(is, "features"), "features", kMaxFeatures);
    entry.ga.best_mhz =
        parseDoublesRecord(needLine(is, "mhz"), "mhz", kMaxStages);

    std::size_t strategy_bytes = 0;
    {
        std::istringstream fields =
            parseField(needLine(is, "strategy"), "strategy");
        std::uint64_t bytes = 0;
        if (!(fields >> bytes) || bytes > kMaxStrategyBytes
            || !(fields >> std::ws).eof())
            throw std::invalid_argument(
                "cache_store: bad strategy record");
        strategy_bytes = static_cast<std::size_t>(bytes);
    }
    std::string strategy_text(strategy_bytes, '\0');
    if (!is.read(strategy_text.data(),
                 static_cast<std::streamsize>(strategy_bytes)))
        throw std::invalid_argument(
            "cache_store: truncated strategy block");
    // The embedded text must itself be a loadable strategy — a corrupt
    // entry is rejected here, never handed to the executor.
    try {
        std::istringstream strategy_is(strategy_text);
        entry.strategy = dvfs::loadStrategy(strategy_is);
    } catch (const std::invalid_argument &error) {
        throw std::invalid_argument(
            std::string("cache_store: embedded strategy rejected: ")
            + error.what());
    }
    if (needLine(is, "endentry") != "endentry")
        throw std::invalid_argument(
            "cache_store: missing endentry terminator");
    return entry;
}

std::string
encodeCacheSnapshot(const CacheSnapshot &snapshot)
{
    if (snapshot.entries.size() > kMaxSnapshotEntries)
        throw std::invalid_argument(
            "cache_store: snapshot exceeds the entry cap");
    std::ostringstream os;
    os << "cachesnap v1\n"
       << "epoch " << snapshot.model_epoch << '\n'
       << "count " << snapshot.entries.size() << '\n';
    for (const CacheEntry &entry : snapshot.entries)
        encodeCacheEntry(entry, os);
    std::string body = std::move(os).str();
    Crc32 crc;
    crc.update(body);
    std::ostringstream footer;
    footer << "crc32 " << std::hex << std::setw(8) << std::setfill('0')
           << crc.value() << '\n';
    return body + footer.str();
}

CacheSnapshot
decodeCacheSnapshot(std::string_view text)
{
    // The footer is the *last* line; entries may legitimately contain
    // "crc32" lines of their own (embedded strategy files), so search
    // from the end.
    std::size_t footer = text.rfind("\ncrc32 ");
    if (footer == std::string_view::npos)
        throw std::invalid_argument(
            "cache_store: snapshot missing its crc32 footer");
    std::size_t body_bytes = footer + 1; // the newline belongs to the body
    std::string footer_line(text.substr(body_bytes));
    {
        std::istringstream fields(footer_line);
        std::string token;
        std::string hex;
        if (!(fields >> token >> hex) || token != "crc32"
            || hex.size() != 8
            || hex.find_first_not_of("0123456789abcdefABCDEF")
                   != std::string::npos
            || !(fields >> std::ws).eof())
            throw std::invalid_argument(
                "cache_store: bad snapshot footer: " + footer_line);
        std::uint32_t declared = static_cast<std::uint32_t>(
            std::stoul(hex, nullptr, 16));
        if (crc32(text.substr(0, body_bytes)) != declared)
            throw std::invalid_argument(
                "cache_store: snapshot CRC mismatch");
    }

    std::istringstream is{std::string(text.substr(0, body_bytes))};
    std::string line = needLine(is, "header");
    if (line != "cachesnap v1")
        throw std::invalid_argument("cache_store: bad snapshot header: "
                                    + line);
    auto parseUint = [&is](const char *prefix, std::uint64_t max) {
        std::string record = needLine(is, prefix);
        std::istringstream fields(record);
        std::string token;
        std::uint64_t value = 0;
        if (!(fields >> token >> value) || token != prefix || value > max
            || !(fields >> std::ws).eof())
            throw std::invalid_argument("cache_store: bad snapshot "
                                        "record: "
                                        + record);
        return value;
    };
    CacheSnapshot snapshot;
    snapshot.model_epoch = parseUint("epoch", ~0ull);
    std::uint64_t count = parseUint("count", kMaxSnapshotEntries);
    snapshot.entries.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t at = 0; at < count; ++at)
        snapshot.entries.push_back(decodeCacheEntry(is));
    if (nextLine(is, line))
        throw std::invalid_argument(
            "cache_store: trailing garbage after snapshot entries: "
            + line);
    return snapshot;
}

void
saveCacheSnapshotFile(const CacheSnapshot &snapshot,
                      const std::string &path)
{
    std::string text = encodeCacheSnapshot(snapshot);
    // The strategy_io idiom: write the whole image to a temp file,
    // flush, then rename into place — a crash mid-write leaves the
    // previous snapshot intact.
    std::string temp = path + ".tmp";
    {
        std::ofstream os(temp, std::ios::binary | std::ios::trunc);
        if (!os)
            throw std::runtime_error(
                "cache_store: cannot open for write: " + temp);
        os.write(text.data(), static_cast<std::streamsize>(text.size()));
        os.flush();
        if (!os)
            throw std::runtime_error("cache_store: write failed: "
                                     + temp);
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0)
        throw std::runtime_error("cache_store: rename failed: " + path);
}

std::optional<CacheSnapshot>
loadCacheSnapshotFile(const std::string &path)
{
    std::optional<std::string> text = readFile(path);
    if (!text)
        return std::nullopt;
    try {
        return decodeCacheSnapshot(*text);
    } catch (const std::exception &) {
        // A corrupt snapshot is treated as absent: recovery proceeds
        // from the WAL alone instead of refusing to start.
        return std::nullopt;
    }
}

std::string
encodeWalRecord(const CacheEntry &entry)
{
    std::ostringstream payload_os;
    encodeCacheEntry(entry, payload_os);
    std::string payload = std::move(payload_os).str();
    if (payload.size() > kWalRecordCap)
        throw std::invalid_argument(
            "cache_store: WAL record exceeds its cap");
    std::string record;
    record.reserve(kWalHeaderBytes + payload.size());
    record.append(kWalMagic, sizeof(kWalMagic));
    putU32(record, static_cast<std::uint32_t>(payload.size()));
    putU32(record, crc32(payload));
    record.append(payload);
    return record;
}

WalReplay
replayWalBuffer(std::string_view buffer)
{
    WalReplay replay;
    std::size_t at = 0;
    while (buffer.size() - at >= kWalHeaderBytes) {
        if (std::memcmp(buffer.data() + at, kWalMagic,
                        sizeof(kWalMagic))
            != 0)
            break;
        std::size_t length = getU32(buffer, at + 4);
        std::uint32_t declared_crc = getU32(buffer, at + 8);
        if (length > kWalRecordCap
            || buffer.size() - at - kWalHeaderBytes < length)
            break; // torn tail: the record never finished writing
        std::string_view payload =
            buffer.substr(at + kWalHeaderBytes, length);
        if (crc32(payload) != declared_crc)
            break; // bit flip inside the record
        CacheEntry entry;
        try {
            std::istringstream is{std::string(payload)};
            entry = decodeCacheEntry(is);
        } catch (const std::exception &) {
            // CRC-valid but semantically corrupt (should not happen
            // for records we wrote; defends against foreign bytes).
            break;
        }
        replay.entries.push_back(std::move(entry));
        at += kWalHeaderBytes + length;
        replay.valid_bytes = at;
    }
    replay.truncated_tail = replay.valid_bytes < buffer.size();
    return replay;
}

WalReplay
replayWalFile(const std::string &path, bool truncate_torn_tail)
{
    std::optional<std::string> bytes = readFile(path);
    if (!bytes)
        return {};
    WalReplay replay = replayWalBuffer(*bytes);
    if (replay.truncated_tail && truncate_torn_tail) {
        // Cut the file back to the valid prefix so the next append
        // extends good bytes instead of burying them behind garbage.
        std::error_code ec;
        std::filesystem::resize_file(path, replay.valid_bytes, ec);
    }
    return replay;
}

RestoreReport
restoreServiceCache(StrategyService &service,
                    const std::string &snapshot_path,
                    const std::string &wal_path)
{
    RestoreReport report;
    std::vector<CacheEntry> entries;
    std::uint64_t snapshot_epoch = 0;
    if (auto snapshot = loadCacheSnapshotFile(snapshot_path)) {
        report.snapshot_loaded = true;
        report.snapshot_entries = snapshot->entries.size();
        snapshot_epoch = snapshot->model_epoch;
        entries = std::move(snapshot->entries);
    }
    WalReplay replay = replayWalFile(wal_path);
    report.wal_entries = replay.entries.size();
    report.wal_truncated = replay.truncated_tail;
    // WAL entries follow the snapshot, so a digest updated after the
    // snapshot was captured restores to its logged (newer) value.
    for (CacheEntry &entry : replay.entries)
        entries.push_back(std::move(entry));
    report.restored = service.restoreEntries(std::move(entries));
    // The snapshot's service epoch can exceed every entry's (e.g. a
    // recalibration emptied the fresh set); never restart below it.
    service.raiseModelEpoch(snapshot_epoch);
    return report;
}

CachePersister::CachePersister(Options options,
                               std::function<CacheSnapshot()> snapshot_fn)
    : options_(std::move(options)), snapshot_fn_(std::move(snapshot_fn))
{
    if (!snapshot_fn_)
        throw std::invalid_argument(
            "cache_store: CachePersister needs a snapshot function");
    if (options_.snapshot_path.empty() || options_.wal_path.empty())
        throw std::invalid_argument(
            "cache_store: CachePersister needs snapshot and WAL paths");
    if (options_.queue_capacity == 0)
        throw std::invalid_argument(
            "cache_store: zero persister queue capacity");
    writer_ = std::thread([this] { writerLoop(); });
}

CachePersister::~CachePersister()
{
    stop(false);
}

void
CachePersister::onInsert(const CacheEntry &entry)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            return;
        if (queue_.size() >= options_.queue_capacity) {
            // Bounded by design: a slow disk costs crash-durability of
            // one entry (a recompute), never unbounded memory.
            ++wal_dropped_;
            return;
        }
        queue_.push_back(entry);
    }
    wake_.notify_all();
}

void
CachePersister::flush()
{
    std::unique_lock<std::mutex> lock(mutex_);
    wake_.notify_all();
    drained_.wait(lock, [this] {
        return stopping_ || (queue_.empty() && !writing_);
    });
}

void
CachePersister::writeSnapshotNow()
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_)
        return;
    std::uint64_t target = snapshot_attempts_ + 1;
    snapshot_requested_ = true;
    wake_.notify_all();
    drained_.wait(lock, [this, target] {
        return stopping_ || snapshot_attempts_ >= target;
    });
}

void
CachePersister::stop(bool write_final_snapshot)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (write_final_snapshot && !stopping_)
            final_snapshot_ = true;
        stopping_ = true;
    }
    wake_.notify_all();
    std::lock_guard<std::mutex> join_lock(join_mutex_);
    if (writer_.joinable())
        writer_.join();
}

CachePersister::Stats
CachePersister::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats out;
    out.wal_appends = wal_appends_;
    out.wal_dropped = wal_dropped_;
    out.snapshots_written = snapshots_written_;
    out.queue_depth = queue_.size();
    return out;
}

std::size_t
CachePersister::drainQueueLocked(std::unique_lock<std::mutex> &lock)
{
    std::deque<CacheEntry> batch;
    batch.swap(queue_);
    if (batch.empty())
        return 0;
    writing_ = true;
    lock.unlock();
    std::string bytes;
    for (const CacheEntry &entry : batch)
        bytes += encodeWalRecord(entry);
    bool ok = false;
    {
        std::ofstream os(options_.wal_path,
                         std::ios::binary | std::ios::app);
        if (os) {
            os.write(bytes.data(),
                     static_cast<std::streamsize>(bytes.size()));
            os.flush();
            ok = static_cast<bool>(os);
        }
    }
    lock.lock();
    writing_ = false;
    if (ok)
        wal_appends_ += batch.size();
    else
        wal_dropped_ += batch.size();
    drained_.notify_all();
    return batch.size();
}

void
CachePersister::writeSnapshotLocked(std::unique_lock<std::mutex> &lock)
{
    writing_ = true;
    lock.unlock();
    bool ok = true;
    try {
        CacheSnapshot snapshot = snapshot_fn_();
        saveCacheSnapshotFile(snapshot, options_.snapshot_path);
        // Safe ordering: this thread is the only WAL writer, so no
        // insert can land between the capture above and this truncate
        // — every logged entry is covered by the snapshot.
        std::ofstream truncate(options_.wal_path,
                               std::ios::binary | std::ios::trunc);
        (void)truncate;
    } catch (const std::exception &) {
        ok = false;
    }
    lock.lock();
    writing_ = false;
    ++snapshot_attempts_;
    if (ok)
        ++snapshots_written_;
    drained_.notify_all();
}

void
CachePersister::writerLoop()
{
    auto interval_of = [this] {
        return std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(
                options_.snapshot_interval_seconds));
    };
    bool timed = options_.snapshot_interval_seconds > 0.0;
    auto last_snapshot = std::chrono::steady_clock::now();

    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        auto woken = [this] {
            return stopping_ || snapshot_requested_ || !queue_.empty();
        };
        if (timed)
            wake_.wait_until(lock, last_snapshot + interval_of(), woken);
        else
            wake_.wait(lock, woken);
        if (stopping_)
            break;
        drainQueueLocked(lock);
        bool due = snapshot_requested_
                   || (timed
                       && std::chrono::steady_clock::now() - last_snapshot
                              >= interval_of());
        if (due) {
            snapshot_requested_ = false;
            writeSnapshotLocked(lock);
            last_snapshot = std::chrono::steady_clock::now();
        }
    }
    if (final_snapshot_) {
        // Graceful shutdown: everything queued reaches the WAL, then
        // one last snapshot captures the final cache image.
        drainQueueLocked(lock);
        writeSnapshotLocked(lock);
    }
    drained_.notify_all();
}

} // namespace opdvfs::serve
