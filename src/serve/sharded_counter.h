/**
 * @file
 * Cache-line-sharded monotonic counter.
 *
 * A single std::atomic counter bumped from every worker and reactor
 * thread turns into one contended cache line ping-ponging between
 * cores.  ShardedCounter spreads the writes across per-thread slots
 * (each on its own cache line) and only pays the gather cost on
 * total(), which stats paths call rarely.  Writes are relaxed — the
 * counters are monotonic observability totals, not synchronization.
 *
 * Slots are assigned round-robin at first use per thread (thread_local),
 * so a thread always hits the same line; unrelated threads can share a
 * slot once more than kShards threads exist, which only costs some
 * contention, never correctness.
 */

#ifndef OPDVFS_SERVE_SHARDED_COUNTER_H
#define OPDVFS_SERVE_SHARDED_COUNTER_H

#include <array>
#include <atomic>
#include <cstdint>

namespace opdvfs::serve {

class ShardedCounter
{
  public:
    static constexpr std::size_t kShards = 16;

    void add(std::uint64_t n = 1)
    {
        slots_[threadSlot()].value.fetch_add(n,
                                             std::memory_order_relaxed);
    }

    std::uint64_t total() const
    {
        std::uint64_t sum = 0;
        for (const Slot &slot : slots_)
            sum += slot.value.load(std::memory_order_relaxed);
        return sum;
    }

  private:
    struct alignas(64) Slot
    {
        std::atomic<std::uint64_t> value{0};
    };

    static std::size_t threadSlot()
    {
        static std::atomic<std::size_t> next{0};
        thread_local std::size_t slot =
            next.fetch_add(1, std::memory_order_relaxed) % kShards;
        return slot;
    }

    std::array<Slot, kShards> slots_;
};

} // namespace opdvfs::serve

#endif // OPDVFS_SERVE_SHARDED_COUNTER_H
