/**
 * @file
 * A fixed-size worker pool for the strategy service.
 *
 * Two entry points:
 *
 *  - submit(): enqueue an independent task (one strategy request).
 *  - parallelFor(): data-parallel index loop.  The *calling* thread
 *    participates and the loop completes even if every pool thread is
 *    busy — pool workers only accelerate it.  That property lets GA
 *    fitness evaluation run on the same pool that runs the requests
 *    without any risk of starvation deadlock (a request executing on
 *    the pool can safely issue nested parallelFor calls).
 *
 * Determinism: parallelFor assigns work by index into caller-owned
 * storage; it guarantees every index runs exactly once but not in any
 * particular order or thread, so callers must keep per-index work
 * independent (the GA scores into a vector by index and reduces
 * serially afterwards).
 */

#ifndef OPDVFS_SERVE_THREAD_POOL_H
#define OPDVFS_SERVE_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace opdvfs::serve {

/** Fixed-size task pool; joins on destruction. */
class ThreadPool
{
  public:
    /** Start @p threads workers (0 is allowed: everything runs inline
     *  in the calling thread). */
    explicit ThreadPool(std::size_t threads);

    /** Drains nothing: pending tasks still run, then workers join. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t threadCount() const { return workers_.size(); }

    /**
     * Enqueue one task.  With zero workers the task runs inline
     * before submit returns.
     */
    void submit(std::function<void()> task);

    /** Tasks enqueued but not yet started. */
    std::size_t queueDepth() const;

    /**
     * Run fn(0) .. fn(count - 1), each exactly once, distributing
     * indices over the pool *and* the calling thread; returns when all
     * have completed.  The first exception thrown by any index is
     * rethrown in the caller (remaining indices are still claimed and
     * skipped).
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &fn);

  private:
    struct ForLoop;

    void workerMain();

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::deque<std::function<void()>> tasks_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace opdvfs::serve

#endif // OPDVFS_SERVE_THREAD_POOL_H
