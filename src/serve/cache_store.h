/**
 * @file
 * Crash-safe persistence for the strategy cache: periodic CRC'd
 * snapshots plus an append-only write-ahead log of inserts.
 *
 * The cache of tuned strategies is the expensive asset the service
 * exists to amortise (~130 ms of GA per entry); before this module a
 * shard restart lost all of it.  The recovery contract:
 *
 *   state after restart = last durable snapshot + WAL replay
 *
 * Snapshot format (text, extending the strategy_io atomic-rename +
 * CRC-32 idiom):
 *
 *   cachesnap v1
 *   epoch <model_epoch>
 *   count <entries>
 *   <count entry blocks>
 *   crc32 <hex>
 *
 * where each entry block is
 *
 *   entry v1
 *   digest <hex16>
 *   epoch <model_epoch>
 *   loss <perf_loss_target>
 *   score <best_score>
 *   donor <0|1>
 *   features <n> <v>...
 *   mhz <n> <v>...
 *   strategy <bytes>
 *   <bytes of strategy_io text>
 *   endentry
 *
 * The CRC-32 footer covers every byte before it; snapshots are
 * written to `<path>.tmp` and renamed into place, so a crash mid-write
 * leaves the previous snapshot intact.
 *
 * WAL format (binary, append-only): one record per owned insert,
 *
 *   "OWL1" | u32 payload length (LE) | u32 CRC-32 (LE) | payload
 *
 * where the payload is one entry block.  Replay stops at the first
 * torn or corrupt record and reports the valid prefix length —
 * *recover or truncate, never crash, never load a corrupt entry* —
 * the property the fuzz/property harness drives with bit flips and
 * truncations.  The WAL is truncated after every durable snapshot
 * (the single writer thread orders capture before truncation, so no
 * insert can fall between them).
 */

#ifndef OPDVFS_SERVE_CACHE_STORE_H
#define OPDVFS_SERVE_CACHE_STORE_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/strategy_cache.h"

namespace opdvfs::serve {

class StrategyService;

/** One durable cache image. */
struct CacheSnapshot
{
    /** The service's model epoch when the snapshot was captured. */
    std::uint64_t model_epoch = 0;
    std::vector<CacheEntry> entries;
};

// --- entry codec (exposed for the fuzz/property harness) ---------------

/** Serialise one cache entry block. @throws std::invalid_argument on
 *  non-finite fields or an out-of-range loss target. */
void encodeCacheEntry(const CacheEntry &entry, std::ostream &os);

/** Parse one entry block. @throws std::invalid_argument on malformed
 *  input, including a strategy text dvfs::loadStrategy rejects. */
CacheEntry decodeCacheEntry(std::istream &is);

// --- snapshot -----------------------------------------------------------

/** Serialise a snapshot, CRC footer included. */
std::string encodeCacheSnapshot(const CacheSnapshot &snapshot);

/** Parse a snapshot. @throws std::invalid_argument on any malformed
 *  record or a CRC mismatch. */
CacheSnapshot decodeCacheSnapshot(std::string_view text);

/** Write atomically: `<path>.tmp` + flush + rename. @throws
 *  std::runtime_error on I/O failure. */
void saveCacheSnapshotFile(const CacheSnapshot &snapshot,
                           const std::string &path);

/** Load a snapshot file; nullopt when the file is missing *or* fails
 *  validation (a corrupt snapshot is treated as absent — recovery
 *  proceeds from the WAL alone rather than crashing). */
std::optional<CacheSnapshot>
loadCacheSnapshotFile(const std::string &path);

// --- write-ahead log ----------------------------------------------------

/** Frame one entry as a WAL record (magic + length + CRC + payload). */
std::string encodeWalRecord(const CacheEntry &entry);

/** Outcome of a WAL replay. */
struct WalReplay
{
    /** Entries recovered from the valid prefix, in append order. */
    std::vector<CacheEntry> entries;
    /** Bytes of the valid prefix (the safe truncation point). */
    std::size_t valid_bytes = 0;
    /** True when bytes past the prefix were torn or corrupt. */
    bool truncated_tail = false;
};

/** Replay an in-memory WAL image.  Never throws: a torn or corrupt
 *  tail ends the replay with `truncated_tail` set. */
WalReplay replayWalBuffer(std::string_view buffer);

/** Replay a WAL file; with @p truncate_torn_tail the file is cut back
 *  to the valid prefix so the next append extends good bytes.  A
 *  missing file replays empty. */
WalReplay replayWalFile(const std::string &path,
                        bool truncate_torn_tail = true);

// --- startup restore ----------------------------------------------------

/** What a startup restore found and applied. */
struct RestoreReport
{
    bool snapshot_loaded = false;
    std::size_t snapshot_entries = 0;
    std::size_t wal_entries = 0;
    /** Entries actually inserted into the service cache. */
    std::size_t restored = 0;
    bool wal_truncated = false;
};

/** Rehydrate @p service from snapshot + WAL replay (either may be
 *  missing).  WAL entries are applied after the snapshot, so a
 *  re-inserted digest takes the logged (newer) value. */
RestoreReport restoreServiceCache(StrategyService &service,
                                  const std::string &snapshot_path,
                                  const std::string &wal_path);

// --- background persister -----------------------------------------------

/**
 * Single-writer persistence daemon: a bounded queue of inserted
 * entries drained by one thread that appends them to the WAL and
 * periodically captures a snapshot (then truncates the WAL).  The
 * insert hook is non-blocking — when the queue is full the entry is
 * *dropped from the log* (counted in `wal_dropped`), bounding the
 * memory a slow disk can claim; a dropped entry costs one recompute
 * after a crash, never correctness.
 */
class CachePersister
{
  public:
    struct Options
    {
        std::string snapshot_path;
        std::string wal_path;
        /** Seconds between periodic snapshots; 0 disables the timer
         *  (snapshots then happen only via writeSnapshotNow/stop). */
        double snapshot_interval_seconds = 5.0;
        /** Max inserts queued for the writer thread. */
        std::size_t queue_capacity = 256;
    };

    struct Stats
    {
        std::uint64_t wal_appends = 0;
        std::uint64_t wal_dropped = 0;
        std::uint64_t snapshots_written = 0;
        /** Entries waiting for the writer thread (the durability lag). */
        std::size_t queue_depth = 0;
    };

    /** @p snapshot_fn captures the current cache image (typically
     *  binds StrategyService::snapshotCache + modelEpoch).  Taking a
     *  function instead of a service reference breaks the
     *  construction cycle: the service exists first, the persister
     *  second, and the insert listener is bound last. */
    CachePersister(Options options,
                   std::function<CacheSnapshot()> snapshot_fn);
    ~CachePersister();

    CachePersister(const CachePersister &) = delete;
    CachePersister &operator=(const CachePersister &) = delete;

    /** Insert hook (bind as the service's insert listener).  Bounded,
     *  non-blocking; full queue drops the entry and counts it. */
    void onInsert(const CacheEntry &entry);

    /** Block until every queued entry reached the WAL. */
    void flush();

    /** Capture + write a snapshot now (and truncate the WAL). */
    void writeSnapshotNow();

    /**
     * Stop the writer thread.  With @p write_final_snapshot the queue
     * is drained and a final snapshot written first (the graceful
     * SIGTERM path); without, the thread stops where it is — the
     * test hook simulating a crash, leaving only snapshot + WAL.
     * Idempotent; the destructor calls stop(false).
     */
    void stop(bool write_final_snapshot);

    Stats stats() const;

  private:
    void writerLoop();
    /** Drain and append queued entries; returns entries written. */
    std::size_t drainQueueLocked(std::unique_lock<std::mutex> &lock);
    void writeSnapshotLocked(std::unique_lock<std::mutex> &lock);

    Options options_;
    std::function<CacheSnapshot()> snapshot_fn_;

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable drained_;
    std::deque<CacheEntry> queue_;
    bool stopping_ = false;
    bool snapshot_requested_ = false;
    /** Drain the queue and write one last snapshot before exiting. */
    bool final_snapshot_ = false;
    /** True while the writer is appending a batch (flush waits it out). */
    bool writing_ = false;

    std::uint64_t wal_appends_ = 0;
    std::uint64_t wal_dropped_ = 0;
    std::uint64_t snapshots_written_ = 0;
    /** Attempts (success or not) — writeSnapshotNow waits on this. */
    std::uint64_t snapshot_attempts_ = 0;

    /** Serialises concurrent stop() callers around the join. */
    std::mutex join_mutex_;
    std::thread writer_;
};

} // namespace opdvfs::serve

#endif // OPDVFS_SERVE_CACHE_STORE_H
