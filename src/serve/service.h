/**
 * @file
 * StrategyService: concurrent, fingerprint-cached DVFS strategy
 * generation.
 *
 * The paper's strategy generator runs once per workload, offline; a
 * production fleet instead sees a stream of optimisation requests,
 * most of them for workloads it has already solved (long-lived
 * training jobs resubmit, tenants run the same model zoo).  The
 * service amortises the search:
 *
 *   request -> bounded admission -> worker pool -> fingerprint
 *     -> exact cache hit?   return the cached plan (microseconds)
 *     -> identical request already in flight?  coalesce onto it
 *     -> similar cached problem?  warm-start the GA from its strategy
 *        (prior individual + reduced generation budget)
 *     -> otherwise run the full pipeline cold
 *
 * GA fitness evaluation runs data-parallel on the same pool; scoring
 * is reduced serially by index, so every path is bit-deterministic:
 * the same request + seed yields the same GaResult regardless of
 * worker count (cold and exact/coalesced paths; a warm-started result
 * additionally depends on which donor the cache held, which the
 * response records via provenance + similarity).
 */

#ifndef OPDVFS_SERVE_SERVICE_H
#define OPDVFS_SERVE_SERVICE_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <stdexcept>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dvfs/pipeline.h"
#include "serve/fingerprint.h"
#include "serve/sharded_counter.h"
#include "serve/strategy_cache.h"
#include "serve/thread_pool.h"
#include "tune/surrogate.h"

namespace opdvfs::serve {

/** How a response was produced. */
enum class Provenance
{
    /** Full pipeline run, no cache involvement. */
    Cold,
    /** Answered from the cache without any computation. */
    ExactHit,
    /** Attached to an identical request already in flight. */
    Coalesced,
    /** GA warm-started from a similar cached strategy. */
    WarmStart,
    /**
     * Served straight from the surrogate pre-ranker on first contact:
     * a table-snapped, loss-target-feasible prediction validated by
     * one model evaluation, while the full search refines it
     * asynchronously (ServiceOptions::predict_first).
     */
    Predicted,
};

/** Whitespace-free token for persistence ("cold", "exact-hit", ...). */
const char *provenanceToken(Provenance provenance);

/**
 * Why a non-blocking admission attempt was refused.  Shared with the
 * network wire protocol: an RPC `Busy` response carries this value so
 * callers can distinguish transient backpressure (retry with backoff)
 * from a service that is going away (fail over).
 */
enum class RejectReason : std::uint8_t
{
    /** Admitted; not a rejection. */
    None = 0,
    /** The admission queue is at capacity (transient; retryable). */
    QueueFull = 1,
    /** drain() ran: the service no longer admits work. */
    ShuttingDown = 2,
    /** The request's propagated deadline passed before a worker could
     *  start it; retrying with the same budget is futile. */
    Expired = 3,
    /** Shed pre-queue: queue sojourn exceeds the overload target and
     *  the request would miss the cache (transient; retry after the
     *  hinted delay). */
    Overloaded = 4,
};

/** Whitespace-free token ("none", "queue-full", "shutting-down",
 *  "expired", "overloaded"). */
const char *rejectReasonToken(RejectReason reason);

/**
 * Thrown through the completion path (future or CompletionFn error
 * slot) when an admitted request's deadline expired before any search
 * ran: the caller has already given up, so no GA budget is spent and
 * no answer exists.  The network front end maps this to a Busy
 * response with RejectReason::Expired.
 */
class RequestExpired : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * A warm-start donor obtained from a peer shard.  Carries everything
 * needed both to seed the GA (`best_mhz`) and to import the strategy
 * into the local cache as a `warm_start_only` entry so later similar
 * requests find it without another peer round-trip.
 */
struct PeerDonor
{
    Fingerprint fingerprint;
    dvfs::Strategy strategy;
    /** The donor's per-stage frequencies; seeds `prior_individuals`. */
    std::vector<double> best_mhz;
    double best_score = 0.0;
    /** Similarity of the donor to the probe, as the peer computed it. */
    double similarity = 0.0;
    /** The loss target the donor was generated for. */
    double perf_loss_target = 0.0;
};

/**
 * Cross-shard donor lookup, supplied by the network layer (the serve
 * layer never opens sockets).  Called on a worker thread when a cold
 * request found no local donor; may block briefly (bounded peer
 * deadlines) and returns the best peer donor, if any.
 */
using DonorLookupFn = std::function<std::optional<PeerDonor>(
    const Fingerprint &probe, double perf_loss_target)>;

/** Service configuration. */
struct ServiceOptions
{
    /**
     * Base pipeline configuration (chip, profile frequencies, GA
     * budget...).  Per-request fields (seed, loss target) are
     * overridden from each request.  When `pipeline.constants` is
     * unset the offline calibration runs once at service start.
     */
    dvfs::PipelineOptions pipeline;
    /** Worker threads serving requests (>= 1). */
    std::size_t workers = 4;
    /** Max requests admitted (queued + executing) before rejecting. */
    std::size_t admission_capacity = 64;
    StrategyCache::Options cache;
    /** Min fingerprint similarity for a warm-start donor. */
    double warm_similarity = 0.90;
    /** Fraction of the full generation budget a warm-started GA runs. */
    double warm_generation_fraction = 1.0 / 3.0;
    /** Score GA populations on the pool (off: serial fitness). */
    bool parallel_fitness = true;
    /**
     * Optional cross-shard donor lookup, consulted only when a cold
     * request has no local donor (exact hit, coalesce and local
     * similarity all missed).  Unset: single-shard behaviour.
     */
    DonorLookupFn peer_donor_lookup;

    // --- overload control (CoDel-style sojourn admission) ------------
    /**
     * Enforce propagated deadlines: expired requests are refused at
     * worker pickup and immediately before the GA would start.  Off,
     * deadlines are still measured (`ga_runs_past_deadline`) but never
     * enforced — the bench's control arm.
     */
    bool enforce_deadlines = true;
    /**
     * Shed a new cold request when the queue-sojourn EWMA exceeds
     * `shed_sojourn_factor` x the cold-latency EWMA (likely cache hits
     * are always admitted: the fingerprint probe is cheap and runs
     * pre-queue).  0 disables shedding.
     */
    double shed_sojourn_factor = 0.5;
    /** Sojourn floor below which shedding never triggers. */
    double min_shed_sojourn_seconds = 0.02;
    /** Cold-latency prior used until the first cold search completes. */
    double assumed_cold_seconds = 0.25;

    /**
     * Fires on every owned leader insert into the cache (never for
     * imported donors or restored entries) with a copy of the entry —
     * the hook the replication queue and the WAL writer hang off.
     * Runs on the worker thread that produced the entry; must be
     * cheap and must not call back into the service.  Also settable
     * after construction via setInsertListener (the embedder builds
     * the persister/replicator after the service).
     */
    std::function<void(const CacheEntry &)> insert_listener;

    // --- predict-then-refine (surrogate cold-path attack) ------------
    /**
     * First-contact misses return the surrogate's table-snapped
     * prediction immediately (provenance "predicted") while the full
     * GA refines asynchronously on the same pool, upgrading the cache
     * entry when it beats the prediction.  Requires `surrogate`; a
     * not-yet-ready surrogate (or one whose prediction fails) falls
     * back to the normal cold/warm path.  Predictions are only served
     * for cacheable requests that allow warm starts — a caller
     * demanding full cold quality gets it.
     */
    bool predict_first = false;
    /**
     * The shared surrogate model.  Finished full searches train it
     * (see `learn_from_searches`); the predict path reads it.  Shared
     * so an embedder can persist/inspect it or share one model across
     * services.
     */
    std::shared_ptr<tune::Surrogate> surrogate;
    /** Fraction of the full generation budget the async refinement
     *  search runs (it is seeded with the prediction, so a reduced
     *  budget usually suffices).  1.0 = full budget. */
    double refine_generation_fraction = 1.0;
    /** Append every finished cold/warm search to the surrogate corpus
     *  (features + winning per-stage frequencies). */
    bool learn_from_searches = true;
};

/** One optimisation request. */
struct StrategyRequest
{
    models::Workload workload;
    /** Allowed relative performance loss. */
    double perf_loss_target = 0.02;
    /** Reproducibility seed; part of the request identity. */
    std::uint64_t seed = 1;
    /** Exact-hit lookup, coalescing and insertion. */
    bool use_cache = true;
    /** Permit warm-starting from similar cached strategies. */
    bool allow_warm_start = true;
    /**
     * Remaining caller budget, measured from admission; 0 = no
     * deadline.  A request whose budget elapses before any search ran
     * completes with RequestExpired instead of burning GA time for an
     * abandoned caller.  Exact cache hits are still served past the
     * deadline — they are effectively free and the response may yet
     * arrive in time.
     */
    double deadline_seconds = 0.0;
    /**
     * Failover read: the caller knows this shard is not the owner and
     * accepts a degraded answer from the replica set.  An exact-digest
     * replica (including `warm_start_only` entries) at the current
     * model epoch is served as a WarmStart; otherwise the request
     * computes locally.  Never set on the normal owner path.
     */
    bool serve_replica = false;
};

/** One optimisation response. */
struct StrategyResponse
{
    /** The strategy, with meta (score/provenance/fingerprint) set. */
    dvfs::Strategy strategy;
    /** Search output (cached or fresh). */
    dvfs::GaResult ga;
    Fingerprint fingerprint;
    Provenance provenance = Provenance::Cold;
    /** Donor similarity for warm starts; 0 otherwise. */
    double similarity = 0.0;
    /** GA generations actually run for this response. */
    int generations_run = 0;
    /** Generations the cache/warm start avoided vs. a cold search. */
    int generations_saved = 0;
    /** Wall time inside the service for this request. */
    double service_seconds = 0.0;
};

/** Outcome of a non-blocking admission attempt. */
struct Admission
{
    /** Engaged exactly when the request was admitted. */
    std::optional<std::future<StrategyResponse>> future;
    /** Why admission was refused; None when `future` is engaged. */
    RejectReason reject = RejectReason::None;

    bool accepted() const { return future.has_value(); }
};

/** Monotonic counters + latency snapshot. */
struct ServiceStats
{
    std::uint64_t requests = 0;
    std::uint64_t exact_hits = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t warm_hits = 0;
    std::uint64_t cold_misses = 0;
    std::uint64_t rejected = 0;
    /** Admitted requests refused because their deadline passed before
     *  any search ran (subset of neither `rejected` nor `requests`). */
    std::uint64_t expired_in_queue = 0;
    /** Requests shed pre-queue by sojourn-based admission (subset of
     *  `rejected`). */
    std::uint64_t shed_early = 0;
    /** GA searches that started after their request's deadline had
     *  already passed.  With `enforce_deadlines` this stays 0 — the
     *  bench's tripwire for wasted search budget. */
    std::uint64_t ga_runs_past_deadline = 0;
    std::uint64_t generations_saved = 0;
    /** Exact hits demoted to warm-start donors by an epoch advance. */
    std::uint64_t stale_demotions = 0;
    /** Cold requests that consulted the peer-donor lookup. */
    std::uint64_t peer_donor_queries = 0;
    /** Peer-donor lookups that returned a usable donor (the request
     *  became a warm start instead of a cold search). */
    std::uint64_t peer_donor_hits = 0;
    /** Peer strategies imported into the cache as donor-only entries. */
    std::uint64_t donors_imported = 0;
    /** Failover requests answered from the replica set. */
    std::uint64_t replica_hits = 0;
    /** Entries rehydrated from a snapshot/WAL at startup. */
    std::uint64_t restored_entries = 0;
    /** Responses served straight from the surrogate (predict-first). */
    std::uint64_t predicted_served = 0;
    /** Async refinements whose search beat the prediction and
     *  upgraded the cache entry. */
    std::uint64_t refine_upgrades = 0;
    /** Async refinements that could not beat the prediction (the
     *  predicted entry stays). */
    std::uint64_t refine_discards = 0;
    /** Async refinement searches currently queued or running. */
    std::size_t refines_in_flight = 0;
    /** Entries visited by similarity scans (donor searches). */
    std::uint64_t similar_scanned = 0;
    /** Similarity-scan rows abandoned by the best-so-far bound. */
    std::uint64_t similar_pruned = 0;
    /** Current model epoch (recalibrations seen by the service). */
    std::uint64_t model_epoch = 0;
    /** Tasks admitted but not yet started. */
    std::size_t queue_depth = 0;
    /** Requests admitted and not yet answered. */
    std::size_t in_flight = 0;
    std::size_t cache_size = 0;
    double p50_service_seconds = 0.0;
    double p95_service_seconds = 0.0;
    /** EWMA of admission-to-worker-pickup wait (the CoDel signal). */
    double sojourn_ewma_seconds = 0.0;
    /** EWMA of cold-search latency (0 until a cold search completes). */
    double cold_ewma_seconds = 0.0;
    /** drain() ran: admission is closed for good. */
    bool draining = false;
};

/** In-process strategy-generation service. */
class StrategyService
{
  public:
    explicit StrategyService(ServiceOptions options);
    /** Completes all admitted requests, then joins the workers. */
    ~StrategyService();

    StrategyService(const StrategyService &) = delete;
    StrategyService &operator=(const StrategyService &) = delete;

    /**
     * Exactly-once completion delivery for callback admissions: runs
     * on the worker thread that finished the request, with either the
     * response or the pipeline's exception (never both).  The
     * admission slot is released *before* the callback fires, so a
     * delivered completion implies capacity for the next attempt.
     */
    using CompletionFn =
        std::function<void(StrategyResponse response,
                           std::exception_ptr error)>;

    /**
     * Admit a request, blocking while the service is at admission
     * capacity.  The future carries the response or the pipeline's
     * exception.
     * @throws std::runtime_error once drain() has run.
     */
    std::future<StrategyResponse> submit(StrategyRequest request);

    /** Non-blocking admission; carries the reject cause when refused
     *  (`rejected`++ on either cause). */
    Admission trySubmit(StrategyRequest request);

    /**
     * Non-blocking admission with callback delivery instead of a
     * future (the network front end's path: no thread blocks on a
     * future).  Returns RejectReason::None when admitted, in which
     * case @p done fires exactly once on a worker thread.
     */
    RejectReason trySubmit(StrategyRequest request, CompletionFn done);

    /**
     * Graceful shutdown: permanently stop admission (submit throws,
     * trySubmit rejects with ShuttingDown) and block until every
     * already-admitted request has completed.  Idempotent and safe to
     * call concurrently; the destructor calls it.
     */
    void drain();

    /** True once drain() has started. */
    bool draining() const;

    ServiceStats stats() const;

    /**
     * Backpressure hint for Busy responses: the estimated wait, in
     * milliseconds, before a retried request is likely to be admitted
     * and served — current occupancy expressed in units of cold-search
     * time per worker, clamped to [1 ms, 30 s].
     */
    std::uint32_t retryAfterMs() const;

    /**
     * Advance the model epoch (a drift recalibration changed the
     * models every cached strategy was searched on).  Cached entries
     * from earlier epochs stop being served as exact hits: the next
     * identical request recomputes on the new models, using the stale
     * strategy only to warm-start the search.  Entries are demoted
     * lazily — no cache sweep, no lock across shards.
     */
    std::uint64_t advanceModelEpoch();

    /**
     * Raise the model epoch to at least @p epoch (monotone: a lower or
     * equal value is a no-op).  This is the receive side of a
     * cluster-wide epoch invalidate: when a peer shard recalibrates to
     * epoch E, every other shard raises to E so none of them can keep
     * serving pre-E strategies as exact hits — they demote to
     * warm-start donors exactly as under advanceModelEpoch().  Returns
     * the resulting epoch.
     */
    std::uint64_t raiseModelEpoch(std::uint64_t epoch);

    /** Current model epoch (starts at 0). */
    std::uint64_t modelEpoch() const;

    /**
     * Probe the local cache for a donor on behalf of a peer shard.
     * Only entries this shard generated itself are exported
     * (`warm_start_only` imports are skipped: relaying second-hand
     * copies would let a donor hop shard to shard unboundedly).
     * Returns the best entry reaching the service's warm similarity
     * threshold within the loss-target tolerance.
     */
    std::optional<SimilarHit> exportDonor(const Fingerprint &probe,
                                          double perf_loss_target);

    /**
     * Insert a peer-supplied strategy as a `warm_start_only` cache
     * entry: visible to similarity lookups, invisible to exact-hit
     * lookups, and never replacing an owned entry.
     */
    void importDonor(const PeerDonor &donor);

    /**
     * Install (or replace) the insert listener after construction.
     * The persister and replicator are built around a live service,
     * so the wiring is circular if the listener must exist at
     * construction; late binding breaks the cycle.  Thread-safe.
     */
    void setInsertListener(std::function<void(const CacheEntry &)> listener);

    /**
     * Install (or clear) the refine-upgrade listener: fires with the
     * entry's digest after an async refinement replaced a predicted
     * cache entry with a better searched one.  The network front end
     * uses it to drop the pre-encoded predicted frame so the next
     * exact hit serves the refined strategy.  Runs on the worker
     * thread that finished the refinement; must be cheap.
     */
    void setUpgradeListener(std::function<void(std::uint64_t)> listener);

    /**
     * Block until no async refinement is queued or running.  Benches
     * and tests use it to observe the final (refined) cache state;
     * drain() implies it.
     */
    void waitForRefines();

    /** A copy of every cache entry — the persistence snapshot. */
    std::vector<CacheEntry> snapshotCache() const;

    /**
     * Rehydrate the cache from persisted entries (snapshot + WAL
     * replay at startup).  Entries keep their persisted
     * `warm_start_only` flags — owned entries stay exact-hittable
     * after a restart — and the model epoch is raised to the highest
     * epoch seen, so a restored shard never serves pre-crash entries
     * the fleet has since invalidated as exact hits.  Does not fire
     * the insert listener (restored entries are already persisted).
     * Returns the number of entries inserted.
     */
    std::size_t restoreEntries(std::vector<CacheEntry> entries);

    const ServiceOptions &options() const { return options_; }

  private:
    std::future<StrategyResponse> dispatch(StrategyRequest request);
    /** Enqueue the admitted request; @p done fires exactly once. */
    void dispatchWith(StrategyRequest request, CompletionFn done);
    /** Locked admission check shared by every submit path; increments
     *  `admitted_` on None.  @p request drives the shed probe. */
    RejectReason admitOne(const StrategyRequest &request);
    /** True when sojourn-based shedding would refuse a cold request
     *  right now (queue backlogged and sojourn EWMA above target). */
    bool shouldShedCold() const;
    void recordSojourn(double seconds);
    void recordColdLatency(double seconds);
    /** Cold EWMA, falling back to the configured prior when unset. */
    double coldEwmaOrPrior() const;
    /**
     * @p expires_at: absolute steady-clock expiry, or
     * `time_point::max()` for no deadline.
     */
    StrategyResponse
    process(const StrategyRequest &request,
            std::chrono::steady_clock::time_point expires_at);
    /**
     * Full pipeline run; @p stale_donor, when set, is a demoted
     * same-digest entry from an earlier model epoch used as a forced
     * warm-start donor (similarity 1.0 by construction).
     */
    StrategyResponse
    computeFresh(const StrategyRequest &request,
                 const Fingerprint &fingerprint,
                 std::chrono::steady_clock::time_point expires_at,
                 const CacheEntry *stale_donor = nullptr);
    /** True when this request should try the surrogate first. */
    bool predictEligible(const StrategyRequest &request,
                         const CacheEntry *stale_donor) const;
    /**
     * Surrogate fast path: prepare (profile + models, no search),
     * predict, snap, repair, validate with one evaluation.  On
     * success @p prepared carries the profiling half for the async
     * refinement to reuse.  Throws when the surrogate cannot predict
     * (caller falls back to computeFresh).
     */
    StrategyResponse
    computePredicted(const StrategyRequest &request,
                     const Fingerprint &fingerprint,
                     std::shared_ptr<const dvfs::PreparedWorkload>
                         &prepared,
                     tune::PredictedStrategy &predicted);
    /** Enqueue the async refinement for a served prediction. */
    void scheduleRefine(StrategyRequest request, Fingerprint fingerprint,
                        std::shared_ptr<const dvfs::PreparedWorkload>
                            prepared,
                        tune::PredictedStrategy predicted);
    /** The refinement body (runs on the pool). */
    void runRefine(const StrategyRequest &request,
                   const Fingerprint &fingerprint,
                   const dvfs::PreparedWorkload &prepared,
                   const tune::PredictedStrategy &predicted);
    /** Feed a finished search into the surrogate corpus. */
    void observeSearch(const StrategyRequest &request,
                       const dvfs::PreprocessResult &prep,
                       const std::vector<double> &best_mhz);
    void recordLatency(double seconds);

    ServiceOptions options_;
    StrategyCache cache_;

    // Admission accounting.
    mutable std::mutex admission_mutex_;
    std::condition_variable admission_open_;
    std::size_t admitted_ = 0;
    /** Set (permanently) by drain(); guarded by admission_mutex_. */
    bool draining_ = false;

    // Identical in-flight requests coalesce onto one computation.
    std::mutex inflight_mutex_;
    std::unordered_map<std::uint64_t, std::shared_future<StrategyResponse>>
        inflight_;

    // Metrics.  The per-request hot counters are sharded across cache
    // lines (ShardedCounter) so concurrent workers never contend on a
    // shared line; the cold/rare ones stay plain atomics.
    ShardedCounter requests_;
    ShardedCounter exact_hits_;
    ShardedCounter coalesced_;
    ShardedCounter warm_hits_;
    ShardedCounter cold_misses_;
    ShardedCounter generations_saved_;
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> expired_in_queue_{0};
    std::atomic<std::uint64_t> shed_early_{0};
    std::atomic<std::uint64_t> ga_runs_past_deadline_{0};
    std::atomic<std::uint64_t> stale_demotions_{0};
    std::atomic<std::uint64_t> peer_donor_queries_{0};
    std::atomic<std::uint64_t> peer_donor_hits_{0};
    std::atomic<std::uint64_t> donors_imported_{0};
    std::atomic<std::uint64_t> replica_hits_{0};
    std::atomic<std::uint64_t> restored_entries_{0};
    std::atomic<std::uint64_t> model_epoch_{0};

    std::atomic<std::uint64_t> predicted_served_{0};
    std::atomic<std::uint64_t> refine_upgrades_{0};
    std::atomic<std::uint64_t> refine_discards_{0};

    /** Async refinements queued or running; waitForRefines() blocks
     *  on this reaching zero. */
    mutable std::mutex refine_mutex_;
    std::condition_variable refines_done_;
    std::size_t refines_in_flight_ = 0;

    /** Insert listener, swappable at runtime: readers copy the
     *  shared_ptr under the mutex, then invoke outside it. */
    mutable std::mutex listener_mutex_;
    std::shared_ptr<const std::function<void(const CacheEntry &)>>
        insert_listener_;
    /** Refine-upgrade listener (same swap discipline). */
    std::shared_ptr<const std::function<void(std::uint64_t)>>
        upgrade_listener_;
    mutable std::mutex latency_mutex_;
    std::vector<double> latencies_;

    // Overload signals (EWMAs; one mutex, touched O(1) per request).
    mutable std::mutex overload_mutex_;
    double sojourn_ewma_ = 0.0;
    /** 0 until the first cold search completes (prior applies). */
    double cold_ewma_ = 0.0;

    /** Last member: destroyed (joined) first, while the rest live. */
    ThreadPool pool_;
};

} // namespace opdvfs::serve

#endif // OPDVFS_SERVE_SERVICE_H
