#include "serve/cache_read.h"

#include <algorithm>
#include <stdexcept>

namespace opdvfs::serve {

ReadIndex::ReadIndex()
{
    auto empty = std::make_shared<const ReadSnapshot>();
    current_.store(empty.get(), std::memory_order_seq_cst);
    current_owner_ = std::move(empty);
}

std::size_t
ReadIndex::registerReader()
{
    std::size_t slot = reader_count_.fetch_add(1, std::memory_order_acq_rel);
    if (slot >= kMaxReaders)
        throw std::runtime_error("ReadIndex: out of reader slots");
    return slot;
}

std::shared_ptr<const std::string>
ReadIndex::lookup(std::size_t reader, std::uint64_t digest,
                  std::uint64_t model_epoch)
{
    ReaderSlot &slot = slots_[reader];
    // Pin first, then load the pointer: seq_cst on the pin store, the
    // epoch bump and the pointer swap puts this load after the swap in
    // the single total order whenever the writer's reclaim scan missed
    // the pin — the snapshot we dereference is always alive (see the
    // file comment for the full argument).
    std::uint64_t epoch = global_epoch_.load(std::memory_order_seq_cst);
    slot.pin.store(epoch, std::memory_order_seq_cst);
    const ReadSnapshot *snapshot =
        current_.load(std::memory_order_seq_cst);
    std::shared_ptr<const std::string> frame;
    auto it = snapshot->by_digest.find(digest);
    if (it != snapshot->by_digest.end()
        && it->second.model_epoch == model_epoch)
        frame = it->second.frame; // ref taken while pinned: outlives us
    slot.pin.store(0, std::memory_order_release);
    return frame;
}

void
ReadIndex::publish(std::shared_ptr<const ReadSnapshot> next)
{
    const ReadSnapshot *raw = next.get();
    std::lock_guard<std::mutex> lock(writer_mutex_);
    current_.store(raw, std::memory_order_seq_cst);
    std::uint64_t retire_epoch =
        global_epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
    retired_.push_back({std::move(current_owner_), retire_epoch});
    current_owner_ = std::move(next);
    ++publishes_;
    reclaimLocked();
}

void
ReadIndex::reclaim()
{
    std::lock_guard<std::mutex> lock(writer_mutex_);
    reclaimLocked();
}

void
ReadIndex::reclaimLocked()
{
    std::uint64_t min_pin = UINT64_MAX;
    std::size_t readers =
        std::min(reader_count_.load(std::memory_order_acquire),
                 kMaxReaders);
    for (std::size_t i = 0; i < readers; ++i) {
        std::uint64_t pin =
            slots_[i].pin.load(std::memory_order_seq_cst);
        if (pin != 0)
            min_pin = std::min(min_pin, pin);
    }
    auto still_held = [min_pin](const Retired &r) {
        return r.epoch > min_pin;
    };
    auto kept = std::stable_partition(retired_.begin(), retired_.end(),
                                      still_held);
    reclaimed_ += static_cast<std::uint64_t>(
        std::distance(kept, retired_.end()));
    retired_.erase(kept, retired_.end());
}

std::shared_ptr<const ReadSnapshot>
ReadIndex::writerSnapshot() const
{
    std::lock_guard<std::mutex> lock(writer_mutex_);
    return current_owner_;
}

std::size_t
ReadIndex::size() const
{
    return writerSnapshot()->by_digest.size();
}

std::uint64_t
ReadIndex::publishes() const
{
    std::lock_guard<std::mutex> lock(writer_mutex_);
    return publishes_;
}

std::size_t
ReadIndex::retiredSnapshots() const
{
    std::lock_guard<std::mutex> lock(writer_mutex_);
    return retired_.size();
}

std::uint64_t
ReadIndex::reclaimedSnapshots() const
{
    std::lock_guard<std::mutex> lock(writer_mutex_);
    return reclaimed_;
}

} // namespace opdvfs::serve
