#include "cluster/cluster_runner.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "sim/simulator.h"

namespace opdvfs::cluster {

double
ClusterRunResult::aicoreAvgWatts() const
{
    double total = 0.0;
    for (const auto &device : devices)
        total += device.aicore_avg_w;
    return devices.empty() ? 0.0 : total / static_cast<double>(devices.size());
}

double
ClusterRunResult::socAvgWatts() const
{
    double total = 0.0;
    for (const auto &device : devices)
        total += device.soc_avg_w;
    return devices.empty() ? 0.0 : total / static_cast<double>(devices.size());
}

namespace {

/**
 * Queue one device's iteration, routing collectives to the group.
 * With @p guard_stats set, SetFreqs go through the guarded
 * verify-and-retry path.
 */
void
enqueueDeviceIteration(npu::NpuChip &chip, int rank,
                       const models::Workload &workload,
                       CollectiveGroup &group,
                       const std::vector<trace::SetFreqTrigger> &triggers,
                       const dvfs::GuardOptions *guard = nullptr,
                       dvfs::GuardStats *guard_stats = nullptr)
{
    for (std::size_t i = 0; i < workload.iteration.size(); ++i) {
        const ops::Op &op = workload.iteration[i];

        if (op.hw.category == npu::OpCategory::Communication
            && op.hw.comm_bytes > 0.0) {
            double bytes = op.hw.comm_bytes;
            chip.computeStream().enqueue(
                [&group, rank, bytes](std::function<void()> done) {
                    group.arrive(rank, bytes, std::move(done));
                });
        } else {
            chip.enqueueOp(op.hw, op.id);
        }

        for (const auto &trigger : triggers) {
            if (trigger.after_op_index == i) {
                auto event = std::make_shared<sim::SyncEvent>();
                chip.computeStream().enqueueRecord(event);
                chip.setFreqStream().enqueueWait(event);
                if (guard_stats) {
                    dvfs::enqueueGuardedSetFreq(chip, trigger.mhz,
                                                guard->set_freq_retries,
                                                guard->retry_backoff,
                                                *guard_stats);
                } else {
                    chip.enqueueSetFreq(trigger.mhz);
                }
            }
        }
    }
}

/** Frequency a rank should end the iteration at, given its triggers. */
double
expectedFinalMhz(const npu::NpuChip &chip,
                 const std::vector<trace::SetFreqTrigger> &triggers,
                 double initial_mhz)
{
    const trace::SetFreqTrigger *last = nullptr;
    for (const auto &trigger : triggers) {
        if (!last || trigger.after_op_index >= last->after_op_index)
            last = &trigger;
    }
    return chip.freqTable().snap(last ? last->mhz : initial_mhz);
}

} // namespace

ClusterRunResult
ClusterRunner::run(const models::Workload &workload,
                   const std::vector<std::vector<trace::SetFreqTrigger>>
                       &per_device_triggers,
                   const ClusterRunOptions &options) const
{
    if (workload.iteration.empty())
        throw std::invalid_argument("ClusterRunner: empty workload");
    if (!per_device_triggers.empty()
        && per_device_triggers.size()
            != static_cast<std::size_t>(config_.devices)) {
        throw std::invalid_argument(
            "ClusterRunner: need one trigger set per device");
    }
    if (!options.device_faults.empty()
        && options.device_faults.size()
            != static_cast<std::size_t>(config_.devices)) {
        throw std::invalid_argument(
            "ClusterRunner: need one fault plan per device");
    }

    sim::Simulator simulator;
    CollectiveGroup group(simulator, config_.devices,
                          config_.link_bandwidth,
                          config_.collective_latency_s);

    std::vector<std::unique_ptr<npu::NpuChip>> chips;
    chips.reserve(static_cast<std::size_t>(config_.devices));
    for (int d = 0; d < config_.devices; ++d) {
        npu::NpuConfig chip_config = config_.chip;
        chip_config.initial_mhz = options.initial_mhz;
        if (!options.device_faults.empty())
            chip_config.faults =
                options.device_faults[static_cast<std::size_t>(d)];
        chips.push_back(
            std::make_unique<npu::NpuChip>(simulator, chip_config));
    }

    static const std::vector<trace::SetFreqTrigger> kNoTriggers;
    auto triggers_for = [&](int rank) -> const auto & {
        return per_device_triggers.empty()
            ? kNoTriggers
            : per_device_triggers[static_cast<std::size_t>(rank)];
    };

    // Warm-up iterations (thermal + frequency steady state).
    for (int warm = 0; warm < options.warmup_iterations; ++warm) {
        for (int d = 0; d < config_.devices; ++d) {
            enqueueDeviceIteration(*chips[static_cast<std::size_t>(d)], d,
                                   workload, group, triggers_for(d));
        }
        simulator.run();
    }

    // Measured iteration.
    std::vector<std::uint64_t> set_freq_before;
    for (auto &chip : chips) {
        chip->resetEnergy();
        set_freq_before.push_back(chip->dvfs().setFreqCount());
    }
    std::uint64_t collectives_before = group.completedCollectives();
    double wait_before = group.totalWaitSeconds();
    Tick start = simulator.now();

    for (int d = 0; d < config_.devices; ++d) {
        enqueueDeviceIteration(*chips[static_cast<std::size_t>(d)], d,
                               workload, group, triggers_for(d));
    }
    simulator.run();

    ClusterRunResult result;
    result.iteration_seconds = ticksToSeconds(simulator.now() - start);
    result.collectives = group.completedCollectives() - collectives_before;
    result.collective_wait_seconds =
        group.totalWaitSeconds() - wait_before;
    for (std::size_t d = 0; d < chips.size(); ++d) {
        chips[d]->syncAccounting();
        DeviceResult device;
        device.aicore_energy_j = chips[d]->energy().aicore_joules;
        device.soc_energy_j = chips[d]->energy().soc_joules;
        device.aicore_avg_w = chips[d]->energy().aicoreAvgWatts();
        device.soc_avg_w = chips[d]->energy().socAvgWatts();
        device.set_freq_count =
            chips[d]->dvfs().setFreqCount() - set_freq_before[d];
        result.devices.push_back(device);
    }
    return result;
}

double
GuardedClusterResult::meanLoss() const
{
    if (iterations.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &it : iterations)
        sum += it.loss;
    return sum / static_cast<double>(iterations.size());
}

double
GuardedClusterResult::worstLoss() const
{
    double worst = 0.0;
    for (const auto &it : iterations)
        worst = std::max(worst, it.loss);
    return worst;
}

GuardedClusterResult
ClusterRunner::runGuarded(const models::Workload &workload,
                          const std::vector<
                              std::vector<trace::SetFreqTrigger>>
                              &per_device_triggers,
                          double baseline_seconds,
                          const GuardedClusterOptions &options) const
{
    if (workload.iteration.empty())
        throw std::invalid_argument("ClusterRunner: empty workload");
    if (options.iterations <= 0)
        throw std::invalid_argument("ClusterRunner: no iterations");
    if (!per_device_triggers.empty()
        && per_device_triggers.size()
            != static_cast<std::size_t>(config_.devices)) {
        throw std::invalid_argument(
            "ClusterRunner: need one trigger set per device");
    }
    if (!options.run.device_faults.empty()
        && options.run.device_faults.size()
            != static_cast<std::size_t>(config_.devices)) {
        throw std::invalid_argument(
            "ClusterRunner: need one fault plan per device");
    }

    sim::Simulator simulator;
    CollectiveGroup group(simulator, config_.devices,
                          config_.link_bandwidth,
                          config_.collective_latency_s);

    std::vector<std::unique_ptr<npu::NpuChip>> chips;
    chips.reserve(static_cast<std::size_t>(config_.devices));
    for (int d = 0; d < config_.devices; ++d) {
        npu::NpuConfig chip_config = config_.chip;
        chip_config.initial_mhz = options.run.initial_mhz;
        if (!options.run.device_faults.empty())
            chip_config.faults =
                options.run.device_faults[static_cast<std::size_t>(d)];
        chips.push_back(
            std::make_unique<npu::NpuChip>(simulator, chip_config));
    }

    static const std::vector<trace::SetFreqTrigger> kNoTriggers;
    auto triggers_for = [&](int rank) -> const auto & {
        return per_device_triggers.empty()
            ? kNoTriggers
            : per_device_triggers[static_cast<std::size_t>(rank)];
    };

    dvfs::DvfsGuard guard(options.guard, baseline_seconds);
    dvfs::GuardStats &stats = guard.mutableStats();

    // Warm-up (unguarded, unmeasured).
    for (int warm = 0; warm < options.run.warmup_iterations; ++warm) {
        for (int d = 0; d < config_.devices; ++d) {
            enqueueDeviceIteration(*chips[static_cast<std::size_t>(d)], d,
                                   workload, group, triggers_for(d));
        }
        simulator.run();
    }

    GuardedClusterResult result;
    result.baseline_seconds = baseline_seconds;
    double max_mhz = npu::FreqTable(config_.chip.freq).maxMhz();

    for (int iter = 0; iter < options.iterations; ++iter) {
        bool strategy_active = guard.strategyEnabled();
        if (guard.wantsThrottleReset()) {
            // Fleet-wide repair: reset every throttled rank's governor.
            for (auto &chip : chips) {
                if (chip->dvfs().throttled()) {
                    chip->resetThrottleGovernor();
                    ++stats.throttle_resets;
                }
            }
        }

        Tick start = simulator.now();
        for (int d = 0; d < config_.devices; ++d) {
            npu::NpuChip &chip = *chips[static_cast<std::size_t>(d)];
            if (strategy_active) {
                enqueueDeviceIteration(
                    chip, d, workload, group, triggers_for(d),
                    &options.guard,
                    options.guard.enabled ? &stats : nullptr);
            } else {
                dvfs::enqueueGuardedSetFreq(chip, max_mhz,
                                            options.guard.set_freq_retries,
                                            options.guard.retry_backoff,
                                            stats);
                enqueueDeviceIteration(chip, d, workload, group,
                                       kNoTriggers);
            }
        }
        simulator.run();

        GuardedClusterIteration record;
        record.strategy_active = strategy_active;
        record.seconds = ticksToSeconds(simulator.now() - start);

        bool any_throttled = false;
        double peak_temperature = 0.0;
        for (int d = 0; d < config_.devices; ++d) {
            npu::NpuChip &chip = *chips[static_cast<std::size_t>(d)];
            chip.syncAccounting();
            peak_temperature =
                std::max(peak_temperature, chip.temperature());
            double expected = strategy_active
                ? expectedFinalMhz(chip, triggers_for(d),
                                   options.run.initial_mhz)
                : max_mhz;
            bool throttled = chip.dvfs().throttled();
            any_throttled = any_throttled || throttled;
            if (throttled || chip.dvfs().currentMhz() != expected)
                record.straggler_ranks.push_back(d);
        }

        dvfs::GuardObservation observation;
        observation.iteration_seconds = record.seconds;
        observation.temperature_c = peak_temperature;
        observation.telemetry_ok = true;
        observation.throttled = any_throttled;
        record.state_after = guard.observe(observation);
        record.loss = guard.lastLoss();
        result.iterations.push_back(record);
    }

    result.guard = guard.stats();
    for (const auto &chip : chips) {
        result.device_faults.push_back(
            chip->faultInjector() ? chip->faultInjector()->counters()
                                  : npu::FaultCounters{});
    }
    return result;
}

} // namespace opdvfs::cluster
