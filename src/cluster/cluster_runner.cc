#include "cluster/cluster_runner.h"

#include <memory>
#include <stdexcept>

#include "sim/simulator.h"

namespace opdvfs::cluster {

double
ClusterRunResult::aicoreAvgWatts() const
{
    double total = 0.0;
    for (const auto &device : devices)
        total += device.aicore_avg_w;
    return devices.empty() ? 0.0 : total / static_cast<double>(devices.size());
}

double
ClusterRunResult::socAvgWatts() const
{
    double total = 0.0;
    for (const auto &device : devices)
        total += device.soc_avg_w;
    return devices.empty() ? 0.0 : total / static_cast<double>(devices.size());
}

namespace {

/** Queue one device's iteration, routing collectives to the group. */
void
enqueueDeviceIteration(npu::NpuChip &chip, int rank,
                       const models::Workload &workload,
                       CollectiveGroup &group,
                       const std::vector<trace::SetFreqTrigger> &triggers)
{
    for (std::size_t i = 0; i < workload.iteration.size(); ++i) {
        const ops::Op &op = workload.iteration[i];

        if (op.hw.category == npu::OpCategory::Communication
            && op.hw.comm_bytes > 0.0) {
            double bytes = op.hw.comm_bytes;
            chip.computeStream().enqueue(
                [&group, rank, bytes](std::function<void()> done) {
                    group.arrive(rank, bytes, std::move(done));
                });
        } else {
            chip.enqueueOp(op.hw, op.id);
        }

        for (const auto &trigger : triggers) {
            if (trigger.after_op_index == i) {
                auto event = std::make_shared<sim::SyncEvent>();
                chip.computeStream().enqueueRecord(event);
                chip.setFreqStream().enqueueWait(event);
                chip.enqueueSetFreq(trigger.mhz);
            }
        }
    }
}

} // namespace

ClusterRunResult
ClusterRunner::run(const models::Workload &workload,
                   const std::vector<std::vector<trace::SetFreqTrigger>>
                       &per_device_triggers,
                   const ClusterRunOptions &options) const
{
    if (workload.iteration.empty())
        throw std::invalid_argument("ClusterRunner: empty workload");
    if (!per_device_triggers.empty()
        && per_device_triggers.size()
            != static_cast<std::size_t>(config_.devices)) {
        throw std::invalid_argument(
            "ClusterRunner: need one trigger set per device");
    }

    sim::Simulator simulator;
    CollectiveGroup group(simulator, config_.devices,
                          config_.link_bandwidth,
                          config_.collective_latency_s);

    std::vector<std::unique_ptr<npu::NpuChip>> chips;
    chips.reserve(static_cast<std::size_t>(config_.devices));
    for (int d = 0; d < config_.devices; ++d) {
        npu::NpuConfig chip_config = config_.chip;
        chip_config.initial_mhz = options.initial_mhz;
        chips.push_back(
            std::make_unique<npu::NpuChip>(simulator, chip_config));
    }

    static const std::vector<trace::SetFreqTrigger> kNoTriggers;
    auto triggers_for = [&](int rank) -> const auto & {
        return per_device_triggers.empty()
            ? kNoTriggers
            : per_device_triggers[static_cast<std::size_t>(rank)];
    };

    // Warm-up iterations (thermal + frequency steady state).
    for (int warm = 0; warm < options.warmup_iterations; ++warm) {
        for (int d = 0; d < config_.devices; ++d) {
            enqueueDeviceIteration(*chips[static_cast<std::size_t>(d)], d,
                                   workload, group, triggers_for(d));
        }
        simulator.run();
    }

    // Measured iteration.
    std::vector<std::uint64_t> set_freq_before;
    for (auto &chip : chips) {
        chip->resetEnergy();
        set_freq_before.push_back(chip->dvfs().setFreqCount());
    }
    std::uint64_t collectives_before = group.completedCollectives();
    double wait_before = group.totalWaitSeconds();
    Tick start = simulator.now();

    for (int d = 0; d < config_.devices; ++d) {
        enqueueDeviceIteration(*chips[static_cast<std::size_t>(d)], d,
                               workload, group, triggers_for(d));
    }
    simulator.run();

    ClusterRunResult result;
    result.iteration_seconds = ticksToSeconds(simulator.now() - start);
    result.collectives = group.completedCollectives() - collectives_before;
    result.collective_wait_seconds =
        group.totalWaitSeconds() - wait_before;
    for (std::size_t d = 0; d < chips.size(); ++d) {
        chips[d]->syncAccounting();
        DeviceResult device;
        device.aicore_energy_j = chips[d]->energy().aicore_joules;
        device.soc_energy_j = chips[d]->energy().soc_joules;
        device.aicore_avg_w = chips[d]->energy().aicoreAvgWatts();
        device.soc_avg_w = chips[d]->energy().socAvgWatts();
        device.set_freq_count =
            chips[d]->dvfs().setFreqCount() - set_freq_before[d];
        result.devices.push_back(device);
    }
    return result;
}

} // namespace opdvfs::cluster
