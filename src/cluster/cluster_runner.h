/**
 * @file
 * Multi-device execution: N simulated NPUs sharing one discrete-event
 * timeline, with Communication operators routed through a collective
 * rendezvous (ring all-reduce) instead of the single-device fixed
 * duration.
 *
 * This models the deployment the paper actually evaluates on (GPT-3
 * with tensor parallelism across NPUs) one level deeper: because
 * collectives synchronise the group, a DVFS strategy applied to a
 * subset of devices turns the slowed devices into stragglers that
 * stall every peer - savings only materialise fleet-wide.
 */

#ifndef OPDVFS_CLUSTER_CLUSTER_RUNNER_H
#define OPDVFS_CLUSTER_CLUSTER_RUNNER_H

#include <cstdint>
#include <vector>

#include "cluster/collective.h"
#include "models/workload.h"
#include "npu/npu_chip.h"
#include "trace/workload_runner.h"

namespace opdvfs::cluster {

/** Cluster-level configuration. */
struct ClusterConfig
{
    /** Devices in the (tensor-parallel) group. */
    int devices = 8;
    /** Per-device chip configuration. */
    npu::NpuConfig chip;
    /** Inter-device link bandwidth, bytes/second. */
    double link_bandwidth = 2.0e11;
    /** Fixed latency per collective, seconds. */
    double collective_latency_s = 30e-6;
};

/** Per-device measurements. */
struct DeviceResult
{
    double aicore_avg_w = 0.0;
    double soc_avg_w = 0.0;
    double aicore_energy_j = 0.0;
    double soc_energy_j = 0.0;
    std::uint64_t set_freq_count = 0;
};

/** Cluster-level measurements for one iteration. */
struct ClusterRunResult
{
    /** Wall time of the iteration (all devices + collectives drained). */
    double iteration_seconds = 0.0;
    std::vector<DeviceResult> devices;
    /** Collectives completed during the measured iteration. */
    std::uint64_t collectives = 0;
    /** Aggregate device-seconds spent blocked at rendezvous. */
    double collective_wait_seconds = 0.0;

    /** Mean per-device AICore power. */
    double aicoreAvgWatts() const;
    /** Mean per-device SoC power. */
    double socAvgWatts() const;
};

/** Options for one cluster measurement. */
struct ClusterRunOptions
{
    double initial_mhz = 1800.0;
    /** Warm-up iterations before the measured one. */
    int warmup_iterations = 1;
    std::uint64_t seed = 1;
};

/** Owns chips, collective group and the measurement protocol. */
class ClusterRunner
{
  public:
    explicit ClusterRunner(ClusterConfig config) : config_(config) {}

    /**
     * Run one iteration of @p workload on every device.  All devices
     * execute the same sequence (tensor parallelism replicates the
     * operator graph); @p per_device_triggers optionally applies a
     * DVFS strategy to each device (empty = no DVFS anywhere; one
     * entry per device otherwise).
     */
    ClusterRunResult
    run(const models::Workload &workload,
        const std::vector<std::vector<trace::SetFreqTrigger>>
            &per_device_triggers = {},
        const ClusterRunOptions &options = {}) const;

    const ClusterConfig &config() const { return config_; }

  private:
    ClusterConfig config_;
};

} // namespace opdvfs::cluster

#endif // OPDVFS_CLUSTER_CLUSTER_RUNNER_H
