/**
 * @file
 * Multi-device execution: N simulated NPUs sharing one discrete-event
 * timeline, with Communication operators routed through a collective
 * rendezvous (ring all-reduce) instead of the single-device fixed
 * duration.
 *
 * This models the deployment the paper actually evaluates on (GPT-3
 * with tensor parallelism across NPUs) one level deeper: because
 * collectives synchronise the group, a DVFS strategy applied to a
 * subset of devices turns the slowed devices into stragglers that
 * stall every peer - savings only materialise fleet-wide.
 */

#ifndef OPDVFS_CLUSTER_CLUSTER_RUNNER_H
#define OPDVFS_CLUSTER_CLUSTER_RUNNER_H

#include <cstdint>
#include <vector>

#include "cluster/collective.h"
#include "dvfs/guard.h"
#include "models/workload.h"
#include "npu/npu_chip.h"
#include "trace/workload_runner.h"

namespace opdvfs::cluster {

/** Cluster-level configuration. */
struct ClusterConfig
{
    /** Devices in the (tensor-parallel) group. */
    int devices = 8;
    /** Per-device chip configuration. */
    npu::NpuConfig chip;
    /** Inter-device link bandwidth, bytes/second. */
    double link_bandwidth = 2.0e11;
    /** Fixed latency per collective, seconds. */
    double collective_latency_s = 30e-6;
};

/** Per-device measurements. */
struct DeviceResult
{
    double aicore_avg_w = 0.0;
    double soc_avg_w = 0.0;
    double aicore_energy_j = 0.0;
    double soc_energy_j = 0.0;
    std::uint64_t set_freq_count = 0;
};

/** Cluster-level measurements for one iteration. */
struct ClusterRunResult
{
    /** Wall time of the iteration (all devices + collectives drained). */
    double iteration_seconds = 0.0;
    std::vector<DeviceResult> devices;
    /** Collectives completed during the measured iteration. */
    std::uint64_t collectives = 0;
    /** Aggregate device-seconds spent blocked at rendezvous. */
    double collective_wait_seconds = 0.0;

    /** Mean per-device AICore power. */
    double aicoreAvgWatts() const;
    /** Mean per-device SoC power. */
    double socAvgWatts() const;
};

/** Options for one cluster measurement. */
struct ClusterRunOptions
{
    double initial_mhz = 1800.0;
    /** Warm-up iterations before the measured one. */
    int warmup_iterations = 1;
    /**
     * Per-device fault plans (empty = no faults anywhere; one entry
     * per device otherwise).  Lets a single misbehaving rank be
     * modelled inside an otherwise healthy group.
     */
    std::vector<npu::FaultPlan> device_faults;
    std::uint64_t seed = 1;
};

/** Options for a guarded multi-iteration fleet run. */
struct GuardedClusterOptions
{
    dvfs::GuardOptions guard;
    /** Measured iterations. */
    int iterations = 8;
    ClusterRunOptions run;
};

/** One fleet iteration under the guard. */
struct GuardedClusterIteration
{
    double seconds = 0.0;
    /** Relative loss vs the fault-free baseline iteration time. */
    double loss = 0.0;
    bool strategy_active = true;
    dvfs::GuardState state_after = dvfs::GuardState::Monitoring;
    /**
     * Ranks whose device ended the iteration away from its commanded
     * frequency (throttled, or a SetFreq that never landed): the
     * devices stalling the collective group.
     */
    std::vector<int> straggler_ranks;
};

/** Everything a guarded fleet run measured. */
struct GuardedClusterResult
{
    std::vector<GuardedClusterIteration> iterations;
    double baseline_seconds = 0.0;
    dvfs::GuardStats guard;
    /** Per-rank injection bookkeeping (zeros for healthy ranks). */
    std::vector<npu::FaultCounters> device_faults;

    double meanLoss() const;
    double worstLoss() const;
};

/** Owns chips, collective group and the measurement protocol. */
class ClusterRunner
{
  public:
    explicit ClusterRunner(ClusterConfig config) : config_(config) {}

    /**
     * Run one iteration of @p workload on every device.  All devices
     * execute the same sequence (tensor parallelism replicates the
     * operator graph); @p per_device_triggers optionally applies a
     * DVFS strategy to each device (empty = no DVFS anywhere; one
     * entry per device otherwise).
     */
    ClusterRunResult
    run(const models::Workload &workload,
        const std::vector<std::vector<trace::SetFreqTrigger>>
            &per_device_triggers = {},
        const ClusterRunOptions &options = {}) const;

    /**
     * Run `options.iterations` measured fleet iterations under the
     * runtime guard: planned SetFreqs are verified and retried on
     * every device, throttled ranks violating the envelope get a
     * governor reset, and on sustained violation of the cluster
     * iteration time the whole fleet falls back to the maximum
     * frequency (with hysteresis re-enable).  Because collectives
     * synchronise the group, one faulted rank inflates the cluster
     * iteration time for everyone — the guard observes fleet time and
     * repairs the straggler, which is reported per iteration.
     * @p baseline_seconds is the fault-free fleet iteration time.
     */
    GuardedClusterResult
    runGuarded(const models::Workload &workload,
               const std::vector<std::vector<trace::SetFreqTrigger>>
                   &per_device_triggers,
               double baseline_seconds,
               const GuardedClusterOptions &options = {}) const;

    const ClusterConfig &config() const { return config_; }

  private:
    ClusterConfig config_;
};

} // namespace opdvfs::cluster

#endif // OPDVFS_CLUSTER_CLUSTER_RUNNER_H
