#include "cluster/collective.h"

#include <stdexcept>

#include "common/units.h"

namespace opdvfs::cluster {

CollectiveGroup::CollectiveGroup(sim::Simulator &simulator, int devices,
                                 double link_bandwidth,
                                 double base_latency_s)
    : simulator_(simulator),
      devices_(devices),
      link_bandwidth_(link_bandwidth),
      base_latency_s_(base_latency_s),
      next_collective_(static_cast<std::size_t>(devices), 0)
{
    if (devices < 1 || link_bandwidth <= 0.0 || base_latency_s < 0.0)
        throw std::invalid_argument("CollectiveGroup: invalid config");
}

double
CollectiveGroup::transferSeconds(double bytes) const
{
    double n = static_cast<double>(devices_);
    double ring_factor = devices_ > 1 ? 2.0 * (n - 1.0) / n : 0.0;
    return base_latency_s_ + ring_factor * bytes / link_bandwidth_;
}

void
CollectiveGroup::arrive(int device_rank, double bytes,
                        std::function<void()> done)
{
    if (device_rank < 0 || device_rank >= devices_)
        throw std::invalid_argument("CollectiveGroup: bad rank");

    std::uint64_t index =
        next_collective_[static_cast<std::size_t>(device_rank)]++;
    if (index < first_pending_)
        throw std::logic_error("CollectiveGroup: rendezvous reused");

    std::size_t slot = static_cast<std::size_t>(index - first_pending_);
    if (slot >= pending_.size())
        pending_.resize(slot + 1);

    Pending &pending = pending_[slot];
    if (pending.arrived > 0 && pending.bytes != bytes)
        throw std::invalid_argument(
            "CollectiveGroup: byte-count mismatch across ranks");
    pending.bytes = bytes;
    ++pending.arrived;
    pending.waiters.push_back(std::move(done));
    pending.arrival_ticks.push_back(simulator_.now());

    if (pending.arrived < devices_)
        return;

    // Last participant arrived: account waits, run the transfer, then
    // release everyone.
    Tick now = simulator_.now();
    for (Tick arrival : pending.arrival_ticks)
        total_wait_seconds_ += ticksToSeconds(now - arrival);

    Tick transfer = secondsToTicks(transferSeconds(pending.bytes));
    auto waiters = std::move(pending.waiters);

    // Retire leading completed slots so pending_ stays small.
    pending.arrived = -1; // mark complete
    while (!pending_.empty() && pending_.front().arrived == -1) {
        pending_.erase(pending_.begin());
        ++first_pending_;
    }
    ++completed_;

    simulator_.scheduleIn(transfer, [waiters = std::move(waiters)] {
        for (const auto &waiter : waiters)
            waiter();
    });
}

} // namespace opdvfs::cluster
