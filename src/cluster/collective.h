/**
 * @file
 * Collective-communication engine for multi-device simulation.
 *
 * The paper's GPT-3 runs tensor-parallel across NPUs; every AllReduce
 * synchronises the group.  A CollectiveGroup models that: the i-th
 * collective call on every device joins the same rendezvous, waits for
 * the last participant, then all participants spend the ring-transfer
 * time 2 (N-1)/N * bytes / link_bandwidth before proceeding.
 *
 * The synchronisation makes per-device DVFS strategies couple: one
 * slow device stalls every peer at the next collective, which is why
 * strategies must be deployed fleet-wide (see bench_cluster_straggler).
 */

#ifndef OPDVFS_CLUSTER_COLLECTIVE_H
#define OPDVFS_CLUSTER_COLLECTIVE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.h"

namespace opdvfs::cluster {

/** Shared rendezvous state for one device group. */
class CollectiveGroup
{
  public:
    /**
     * @param simulator      shared simulator of all devices
     * @param devices        group size (N)
     * @param link_bandwidth per-link bandwidth in bytes/second
     * @param base_latency_s fixed software/latency cost per collective
     */
    CollectiveGroup(sim::Simulator &simulator, int devices,
                    double link_bandwidth, double base_latency_s = 30e-6);

    /**
     * Device @p device_rank arrives at its next collective carrying
     * @p bytes; @p done fires when the collective completes on this
     * device.  Every device must call arrive() the same number of
     * times, in the same order, with the same byte counts.
     */
    void arrive(int device_rank, double bytes, std::function<void()> done);

    /** Ring all-reduce wall time for @p bytes. */
    double transferSeconds(double bytes) const;

    /** Collectives fully completed so far. */
    std::uint64_t completedCollectives() const { return completed_; }

    /** Total time devices spent waiting at rendezvous, seconds. */
    double totalWaitSeconds() const { return total_wait_seconds_; }

    int devices() const { return devices_; }

  private:
    struct Pending
    {
        int arrived = 0;
        double bytes = 0.0;
        std::vector<std::function<void()>> waiters;
        std::vector<Tick> arrival_ticks;
    };

    sim::Simulator &simulator_;
    int devices_;
    double link_bandwidth_;
    double base_latency_s_;
    /** Per-device index of its next collective. */
    std::vector<std::uint64_t> next_collective_;
    /** Rendezvous state keyed by collective index - first incomplete. */
    std::vector<Pending> pending_;
    std::uint64_t first_pending_ = 0;
    std::uint64_t completed_ = 0;
    double total_wait_seconds_ = 0.0;
};

} // namespace opdvfs::cluster

#endif // OPDVFS_CLUSTER_COLLECTIVE_H
