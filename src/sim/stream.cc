#include "sim/stream.h"

#include <stdexcept>

namespace opdvfs::sim {

void
SyncEvent::record(Tick now)
{
    if (recorded_)
        throw std::logic_error("SyncEvent: recorded twice");
    recorded_ = true;
    record_tick_ = now;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto &fn : waiters)
        fn();
}

void
SyncEvent::onRecord(std::function<void()> fn)
{
    if (recorded_)
        fn();
    else
        waiters_.push_back(std::move(fn));
}

Stream::Stream(Simulator &simulator, std::string name)
    : simulator_(simulator), name_(std::move(name))
{
}

void
Stream::enqueue(Task task)
{
    queue_.push_back({Item::Kind::Task, std::move(task), nullptr});
    pump();
}

void
Stream::enqueueDelay(Tick duration)
{
    if (duration < 0)
        throw std::invalid_argument("Stream: negative delay");
    enqueue([this, duration](std::function<void()> done) {
        simulator_.scheduleIn(duration, std::move(done));
    });
}

void
Stream::enqueueRecord(std::shared_ptr<SyncEvent> event)
{
    if (!event)
        throw std::invalid_argument("Stream: null event");
    queue_.push_back({Item::Kind::Record, nullptr, std::move(event)});
    pump();
}

void
Stream::enqueueWait(std::shared_ptr<SyncEvent> event)
{
    if (!event)
        throw std::invalid_argument("Stream: null event");
    queue_.push_back({Item::Kind::Wait, nullptr, std::move(event)});
    pump();
}

void
Stream::pump()
{
    if (pumping_)
        return;
    pumping_ = true;

    while (!busy_ && !waiting_ && !queue_.empty()) {
        Item item = std::move(queue_.front());
        queue_.pop_front();

        switch (item.kind) {
          case Item::Kind::Record:
            item.event->record(simulator_.now());
            break;

          case Item::Kind::Wait:
            if (!item.event->recorded()) {
                waiting_ = true;
                item.event->onRecord([this] {
                    waiting_ = false;
                    pump();
                });
            }
            break;

          case Item::Kind::Task: {
            busy_ = true;
            auto called = std::make_shared<bool>(false);
            auto done = [this, called] {
                if (*called)
                    throw std::logic_error(
                        "Stream: task completion invoked twice");
                *called = true;
                busy_ = false;
                if (queue_.empty() && !waiting_)
                    last_idle_tick_ = simulator_.now();
                pump();
            };
            item.task(std::move(done));
            break;
          }
        }
    }

    pumping_ = false;
    // A task may have completed synchronously while we held the guard;
    // if so there may be runnable items left.
    if (!busy_ && !waiting_ && !queue_.empty())
        pump();
}

} // namespace opdvfs::sim
