/**
 * @file
 * Time-ordered event queue for the discrete-event kernel.
 *
 * Events scheduled for the same tick execute in scheduling order, which
 * keeps simulations deterministic.
 */

#ifndef OPDVFS_SIM_EVENT_QUEUE_H
#define OPDVFS_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"

namespace opdvfs::sim {

/** An event body. */
using EventFn = std::function<void()>;

/** Min-heap of events keyed by (tick, insertion sequence). */
class EventQueue
{
  public:
    /** Schedule @p fn to run at absolute time @p when. */
    void schedule(Tick when, EventFn fn);

    /** True if no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Tick of the earliest pending event; kMaxTick when empty. */
    Tick nextTick() const;

    /**
     * Pop and run the earliest event.
     * @return the tick it ran at.
     * @throws std::logic_error if the queue is empty.
     */
    Tick runNext();

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    /** Heap ordering: earliest (tick, seq) on top of the max-heap. */
    static bool later(const Entry &a, const Entry &b);

    // Managed manually with std::push_heap/pop_heap so entries can be
    // moved out on pop (std::priority_queue::top() is const).
    std::vector<Entry> heap_;
    std::uint64_t next_seq_ = 0;
};

} // namespace opdvfs::sim

#endif // OPDVFS_SIM_EVENT_QUEUE_H
