/**
 * @file
 * The discrete-event simulator: a clock plus an event queue.
 *
 * Hardware components (AICore, DVFS controller, thermal model,
 * telemetry samplers) schedule callbacks against one Simulator
 * instance; run() drains events in time order and advances the clock.
 */

#ifndef OPDVFS_SIM_SIMULATOR_H
#define OPDVFS_SIM_SIMULATOR_H

#include <cstdint>

#include "common/units.h"
#include "sim/event_queue.h"

namespace opdvfs::sim {

/** Owns simulated time and the pending-event queue. */
class Simulator
{
  public:
    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn to run @p delay ticks from now (delay >= 0). */
    void scheduleIn(Tick delay, EventFn fn);

    /** Schedule @p fn at absolute tick @p when (>= now). */
    void scheduleAt(Tick when, EventFn fn);

    /**
     * Run until the queue drains or @p limit is reached.  Events
     * scheduled exactly at @p limit still run.
     * @return number of events executed.
     */
    std::uint64_t run(Tick limit = kMaxTick);

    /** True if no events are pending. */
    bool idle() const { return queue_.empty(); }

    /** Total events executed over the simulator's lifetime. */
    std::uint64_t eventsExecuted() const { return events_executed_; }

  private:
    EventQueue queue_;
    Tick now_ = 0;
    std::uint64_t events_executed_ = 0;
};

} // namespace opdvfs::sim

#endif // OPDVFS_SIM_SIMULATOR_H
