#include "sim/simulator.h"

#include <stdexcept>

namespace opdvfs::sim {

void
Simulator::scheduleIn(Tick delay, EventFn fn)
{
    if (delay < 0)
        throw std::invalid_argument("Simulator: negative delay");
    queue_.schedule(now_ + delay, std::move(fn));
}

void
Simulator::scheduleAt(Tick when, EventFn fn)
{
    if (when < now_)
        throw std::invalid_argument("Simulator: scheduling in the past");
    queue_.schedule(when, std::move(fn));
}

std::uint64_t
Simulator::run(Tick limit)
{
    std::uint64_t executed = 0;
    while (!queue_.empty() && queue_.nextTick() <= limit) {
        // Advance the clock before dispatching so the event body sees
        // its own timestamp from now().
        now_ = queue_.nextTick();
        queue_.runNext();
        ++executed;
    }
    events_executed_ += executed;
    if (queue_.empty() && limit != kMaxTick && now_ < limit)
        now_ = limit;
    return executed;
}

} // namespace opdvfs::sim
