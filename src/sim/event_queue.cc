#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>

namespace opdvfs::sim {

bool
EventQueue::later(const Entry &a, const Entry &b)
{
    if (a.when != b.when)
        return a.when > b.when;
    return a.seq > b.seq;
}

void
EventQueue::schedule(Tick when, EventFn fn)
{
    if (when < 0)
        throw std::invalid_argument("EventQueue: negative tick");
    heap_.push_back({when, next_seq_++, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), later);
}

Tick
EventQueue::nextTick() const
{
    return heap_.empty() ? kMaxTick : heap_.front().when;
}

Tick
EventQueue::runNext()
{
    if (heap_.empty())
        throw std::logic_error("EventQueue: runNext on empty queue");
    std::pop_heap(heap_.begin(), heap_.end(), later);
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    entry.fn();
    return entry.when;
}

} // namespace opdvfs::sim
