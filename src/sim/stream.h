/**
 * @file
 * Ordered execution streams with record/wait synchronisation events,
 * mirroring the CANN/PyTorch stream-and-event mechanism the paper's
 * DVFS executor is built on (Sect. 7.1, Fig. 14): compute operators run
 * on a compute stream, SetFreq operators run on a dedicated SetFreq
 * stream, and Event Record / Event Wait order the two.
 */

#ifndef OPDVFS_SIM_STREAM_H
#define OPDVFS_SIM_STREAM_H

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace opdvfs::sim {

/**
 * A one-shot synchronisation event: recorded exactly once by a stream,
 * waited on by any number of streams.
 */
class SyncEvent
{
  public:
    /** True once record() has happened. */
    bool recorded() const { return recorded_; }

    /** Tick at which the event was recorded (valid once recorded()). */
    Tick recordTick() const { return record_tick_; }

    /** Mark recorded and release all waiters. */
    void record(Tick now);

    /** Invoke @p fn when recorded (immediately if already recorded). */
    void onRecord(std::function<void()> fn);

  private:
    bool recorded_ = false;
    Tick record_tick_ = 0;
    std::vector<std::function<void()>> waiters_;
};

/**
 * A FIFO stream of asynchronous tasks.
 *
 * A task receives a completion callback and must invoke it exactly once
 * (typically from a Simulator event it schedules); the stream starts
 * the next queued item when the callback fires.  Besides tasks, the
 * queue can hold event records (instantaneous) and event waits (block
 * the stream until another stream records the event).
 */
class Stream
{
  public:
    /**
     * Task body: perform the work, then call @p done (possibly later,
     * from a scheduled event).
     */
    using Task = std::function<void(std::function<void()> done)>;

    Stream(Simulator &simulator, std::string name);

    /** Queue an asynchronous task. */
    void enqueue(Task task);

    /** Queue a fixed-duration busy period. */
    void enqueueDelay(Tick duration);

    /** Queue an instantaneous record of @p event. */
    void enqueueRecord(std::shared_ptr<SyncEvent> event);

    /** Queue a wait: the stream stalls until @p event is recorded. */
    void enqueueWait(std::shared_ptr<SyncEvent> event);

    /** True when nothing queued and no task in flight. */
    bool idle() const { return !busy_ && queue_.empty(); }

    /** Tick when the stream last became idle. */
    Tick lastIdleTick() const { return last_idle_tick_; }

    const std::string &name() const { return name_; }

    Simulator &simulator() { return simulator_; }

  private:
    struct Item
    {
        enum class Kind { Task, Record, Wait };
        Kind kind;
        Task task;
        std::shared_ptr<SyncEvent> event;
    };

    /** Start queued items until blocked, busy, or drained. */
    void pump();

    Simulator &simulator_;
    std::string name_;
    std::deque<Item> queue_;
    bool busy_ = false;
    bool waiting_ = false;
    Tick last_idle_tick_ = 0;
    // Guards against re-entrant pump() from a synchronously-completing
    // task.
    bool pumping_ = false;
};

} // namespace opdvfs::sim

#endif // OPDVFS_SIM_STREAM_H
