#include "math/curve_fit.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "math/linear_solve.h"

namespace opdvfs::math {

namespace {

void
clampParams(std::vector<double> &params, const CurveFitOptions &options)
{
    for (std::size_t i = 0; i < params.size(); ++i) {
        if (i < options.lower_bounds.size())
            params[i] = std::max(params[i], options.lower_bounds[i]);
        if (i < options.upper_bounds.size())
            params[i] = std::min(params[i], options.upper_bounds[i]);
    }
}

double
sumSquaredError(const CurveModel &model, const std::vector<double> &x,
                const std::vector<double> &y, const std::vector<double> &params)
{
    double sse = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        double r = y[i] - model(x[i], params);
        if (!std::isfinite(r))
            return std::numeric_limits<double>::infinity();
        sse += r * r;
    }
    return sse;
}

} // namespace

CurveFitResult
curveFit(const CurveModel &model, const std::vector<double> &x,
         const std::vector<double> &y, std::vector<double> initial_params,
         const CurveFitOptions &options)
{
    if (x.size() != y.size())
        throw std::invalid_argument("curveFit: x/y size mismatch");
    if (x.size() < initial_params.size())
        throw std::invalid_argument("curveFit: underdetermined system");
    if (initial_params.empty())
        throw std::invalid_argument("curveFit: no parameters");

    const std::size_t n = x.size();
    const std::size_t p = initial_params.size();

    CurveFitResult result;
    result.params = std::move(initial_params);
    clampParams(result.params, options);
    result.sse = sumSquaredError(model, x, y, result.params);

    double lambda = options.initial_lambda;

    // Scale-aware absolute floor: an SSE this small relative to the
    // data is a perfect fit.
    double y_scale = 0.0;
    for (double v : y)
        y_scale += v * v;
    double sse_floor = options.tolerance * std::max(y_scale, 1e-300);

    for (int iter = 0; iter < options.max_iterations; ++iter) {
        result.iterations = iter + 1;
        if (result.sse <= sse_floor) {
            result.converged = true;
            break;
        }

        // Numeric Jacobian of the residuals and current residual vector.
        Matrix jacobian(n, p);
        std::vector<double> residuals(n);
        for (std::size_t i = 0; i < n; ++i)
            residuals[i] = y[i] - model(x[i], result.params);

        for (std::size_t j = 0; j < p; ++j) {
            double h = std::max(1e-7, std::abs(result.params[j]) * 1e-6);
            std::vector<double> bumped = result.params;
            bumped[j] += h;
            clampParams(bumped, options);
            double actual_h = bumped[j] - result.params[j];
            if (actual_h == 0.0) {
                // At an upper bound; probe downward instead.
                bumped = result.params;
                bumped[j] -= h;
                clampParams(bumped, options);
                actual_h = bumped[j] - result.params[j];
                if (actual_h == 0.0)
                    continue;
            }
            for (std::size_t i = 0; i < n; ++i) {
                double y_bumped = model(x[i], bumped);
                double y_base = model(x[i], result.params);
                jacobian(i, j) = (y_bumped - y_base) / actual_h;
            }
        }

        // Solve the damped normal equations for the step.
        std::vector<double> step;
        try {
            step = leastSquares(jacobian, residuals, lambda);
        } catch (const std::runtime_error &) {
            lambda *= 10.0;
            if (lambda > 1e12)
                break;
            continue;
        }

        std::vector<double> candidate = result.params;
        for (std::size_t j = 0; j < p; ++j)
            candidate[j] += step[j];
        clampParams(candidate, options);

        double candidate_sse = sumSquaredError(model, x, y, candidate);
        if (candidate_sse < result.sse) {
            double improvement =
                (result.sse - candidate_sse) / std::max(result.sse, 1e-300);
            result.params = std::move(candidate);
            result.sse = candidate_sse;
            lambda = std::max(lambda * 0.3, 1e-12);
            if (improvement < options.tolerance) {
                result.converged = true;
                break;
            }
        } else {
            lambda *= 10.0;
            if (lambda > 1e12)
                break;
        }
    }

    return result;
}

} // namespace opdvfs::math
