#include "math/piecewise_linear.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace opdvfs::math {

ConvexPwl::ConvexPwl(std::vector<AffinePiece> pieces)
    : pieces_(normalise(std::move(pieces)))
{
}

ConvexPwl
ConvexPwl::affine(double slope, double intercept)
{
    return ConvexPwl({{slope, intercept}});
}

ConvexPwl
ConvexPwl::constant(double value)
{
    return affine(0.0, value);
}

ConvexPwl
ConvexPwl::max(const ConvexPwl &a, const ConvexPwl &b)
{
    std::vector<AffinePiece> pieces = a.pieces_;
    pieces.insert(pieces.end(), b.pieces_.begin(), b.pieces_.end());
    return ConvexPwl(std::move(pieces));
}

ConvexPwl
ConvexPwl::max(const std::vector<ConvexPwl> &fs)
{
    if (fs.empty())
        throw std::invalid_argument("ConvexPwl::max: empty argument list");
    std::vector<AffinePiece> pieces;
    for (const auto &f : fs)
        pieces.insert(pieces.end(), f.pieces_.begin(), f.pieces_.end());
    return ConvexPwl(std::move(pieces));
}

ConvexPwl
ConvexPwl::sum(const ConvexPwl &a, const ConvexPwl &b)
{
    // max_i(p_i) + max_j(q_j) == max_{i,j}(p_i + q_j); pieces that never
    // attain the maximum are pruned by normalise().
    std::vector<AffinePiece> pieces;
    pieces.reserve(a.pieces_.size() * b.pieces_.size());
    for (const auto &p : a.pieces_) {
        for (const auto &q : b.pieces_) {
            pieces.push_back(
                {p.slope + q.slope, p.intercept + q.intercept});
        }
    }
    return ConvexPwl(std::move(pieces));
}

ConvexPwl
ConvexPwl::scaled(double factor) const
{
    if (factor < 0.0)
        throw std::invalid_argument(
            "ConvexPwl::scaled: negative factors break convexity");
    std::vector<AffinePiece> pieces = pieces_;
    for (auto &p : pieces) {
        p.slope *= factor;
        p.intercept *= factor;
    }
    return ConvexPwl(std::move(pieces));
}

double
ConvexPwl::eval(double x) const
{
    double best = pieces_.front().eval(x);
    for (std::size_t i = 1; i < pieces_.size(); ++i)
        best = std::max(best, pieces_[i].eval(x));
    return best;
}

double
ConvexPwl::slopeAt(double x) const
{
    double best = pieces_.front().eval(x);
    double slope = pieces_.front().slope;
    for (std::size_t i = 1; i < pieces_.size(); ++i) {
        double v = pieces_[i].eval(x);
        // Ties resolve to the smaller slope: the left derivative.
        if (v > best + 1e-12 * std::max(1.0, std::abs(best))) {
            best = v;
            slope = pieces_[i].slope;
        }
    }
    return slope;
}

std::vector<double>
ConvexPwl::breakpoints(double lo, double hi) const
{
    std::vector<double> out;
    // Pieces are sorted by slope and all attain the max somewhere, so
    // consecutive pieces intersect at the kinks.
    for (std::size_t i = 0; i + 1 < pieces_.size(); ++i) {
        const auto &a = pieces_[i];
        const auto &b = pieces_[i + 1];
        double x = (a.intercept - b.intercept) / (b.slope - a.slope);
        if (x > lo && x < hi)
            out.push_back(x);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<AffinePiece>
ConvexPwl::normalise(std::vector<AffinePiece> pieces)
{
    if (pieces.empty())
        throw std::invalid_argument("ConvexPwl: no pieces");

    std::sort(pieces.begin(), pieces.end(),
              [](const AffinePiece &a, const AffinePiece &b) {
                  if (a.slope != b.slope)
                      return a.slope < b.slope;
                  return a.intercept < b.intercept;
              });

    // Among equal slopes, only the largest intercept can attain the max.
    std::vector<AffinePiece> dedup;
    for (const auto &p : pieces) {
        if (!dedup.empty() && dedup.back().slope == p.slope)
            dedup.back() = p;
        else
            dedup.push_back(p);
    }

    // Upper-envelope pruning (convex hull trick).  With ascending
    // slopes, piece b between a and c never attains the max iff b is at
    // or below the a/c crossing.
    auto useless = [](const AffinePiece &a, const AffinePiece &b,
                      const AffinePiece &c) {
        // b.eval(x_ac) <= a.eval(x_ac) rearranged to avoid division.
        return (b.intercept - a.intercept) * (c.slope - b.slope)
            <= (c.intercept - b.intercept) * (b.slope - a.slope);
    };

    std::vector<AffinePiece> hull;
    for (const auto &p : dedup) {
        while (hull.size() >= 2
               && useless(hull[hull.size() - 2], hull.back(), p)) {
            hull.pop_back();
        }
        hull.push_back(p);
    }
    return hull;
}

bool
isConvexSamples(const std::vector<double> &x, const std::vector<double> &y,
                double tol)
{
    if (x.size() != y.size())
        throw std::invalid_argument("isConvexSamples: size mismatch");
    for (std::size_t i = 1; i < x.size(); ++i) {
        if (x[i] <= x[i - 1])
            throw std::invalid_argument("isConvexSamples: x not ascending");
    }
    for (std::size_t i = 1; i + 1 < x.size(); ++i) {
        double span = x[i + 1] - x[i - 1];
        double w = (x[i] - x[i - 1]) / span;
        double chord = y[i - 1] * (1.0 - w) + y[i + 1] * w;
        double slack = tol * std::max(1.0, std::abs(chord));
        if (y[i] > chord + slack)
            return false;
    }
    return true;
}

} // namespace opdvfs::math
