/**
 * @file
 * Generic nonlinear least squares (Levenberg-Marquardt) with numeric
 * Jacobians and box constraints on parameters.
 *
 * This stands in for scipy.curve_fit, which the paper uses to fit its
 * Func. 1 and Func. 3 performance models (Sect. 4.3), including the
 * clamp of Func. 3's exponent parameter to [0, 10].
 */

#ifndef OPDVFS_MATH_CURVE_FIT_H
#define OPDVFS_MATH_CURVE_FIT_H

#include <functional>
#include <limits>
#include <vector>

namespace opdvfs::math {

/** A model y = model(x, params) to be fitted. */
using CurveModel =
    std::function<double(double x, const std::vector<double> &params)>;

/** Options controlling the Levenberg-Marquardt iteration. */
struct CurveFitOptions
{
    /** Maximum outer iterations. */
    int max_iterations = 200;
    /** Stop when the relative SSE improvement drops below this. */
    double tolerance = 1e-12;
    /** Initial LM damping. */
    double initial_lambda = 1e-3;
    /** Per-parameter lower bounds (empty = unbounded). */
    std::vector<double> lower_bounds;
    /** Per-parameter upper bounds (empty = unbounded). */
    std::vector<double> upper_bounds;
};

/** Result of a fit. */
struct CurveFitResult
{
    std::vector<double> params;
    /** Final sum of squared residuals. */
    double sse = std::numeric_limits<double>::infinity();
    /** Iterations consumed. */
    int iterations = 0;
    /** True if the iteration hit the tolerance before max_iterations. */
    bool converged = false;
};

/**
 * Fit @p model to the samples (x[i], y[i]) starting from
 * @p initial_params.
 *
 * @throws std::invalid_argument on size mismatches.
 */
CurveFitResult curveFit(const CurveModel &model, const std::vector<double> &x,
                        const std::vector<double> &y,
                        std::vector<double> initial_params,
                        const CurveFitOptions &options = {});

} // namespace opdvfs::math

#endif // OPDVFS_MATH_CURVE_FIT_H
