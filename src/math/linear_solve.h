/**
 * @file
 * Small dense linear algebra: Gaussian elimination and linear least
 * squares via normal equations.  Sized for the 2x2 / 3x3 systems the
 * model-fitting code produces; not a general-purpose BLAS.
 */

#ifndef OPDVFS_MATH_LINEAR_SOLVE_H
#define OPDVFS_MATH_LINEAR_SOLVE_H

#include <cstddef>
#include <vector>

namespace opdvfs::math {

/** Dense row-major matrix just big enough for the fitting code. */
class Matrix
{
  public:
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
    {}

    double &operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    double operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** A^T * A (cols x cols). */
    Matrix gram() const;

    /** A^T * v (length cols). @p v must have length rows. */
    std::vector<double> transposeTimes(const std::vector<double> &v) const;

    /** A * x (length rows). @p x must have length cols. */
    std::vector<double> times(const std::vector<double> &x) const;

  private:
    std::size_t rows_;
    std::size_t cols_;
    std::vector<double> data_;
};

/**
 * Solve the square system A x = b with partial-pivot Gaussian
 * elimination.
 *
 * @throws std::invalid_argument for shape mismatch.
 * @throws std::runtime_error if the matrix is (numerically) singular.
 */
std::vector<double> solve(Matrix a, std::vector<double> b);

/**
 * Least-squares solution of the overdetermined system A x ~= b through
 * the normal equations (A^T A) x = A^T b, with optional Tikhonov
 * damping on the diagonal (used by Levenberg-Marquardt).
 */
std::vector<double> leastSquares(const Matrix &a, const std::vector<double> &b,
                                 double damping = 0.0);

} // namespace opdvfs::math

#endif // OPDVFS_MATH_LINEAR_SOLVE_H
