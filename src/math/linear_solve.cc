#include "math/linear_solve.h"

#include <cmath>
#include <stdexcept>

namespace opdvfs::math {

Matrix
Matrix::gram() const
{
    Matrix g(cols_, cols_);
    for (std::size_t i = 0; i < cols_; ++i) {
        for (std::size_t j = i; j < cols_; ++j) {
            double s = 0.0;
            for (std::size_t r = 0; r < rows_; ++r)
                s += (*this)(r, i) * (*this)(r, j);
            g(i, j) = s;
            g(j, i) = s;
        }
    }
    return g;
}

std::vector<double>
Matrix::transposeTimes(const std::vector<double> &v) const
{
    if (v.size() != rows_)
        throw std::invalid_argument("transposeTimes: length mismatch");
    std::vector<double> out(cols_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out[c] += (*this)(r, c) * v[r];
    return out;
}

std::vector<double>
Matrix::times(const std::vector<double> &x) const
{
    if (x.size() != cols_)
        throw std::invalid_argument("times: length mismatch");
    std::vector<double> out(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out[r] += (*this)(r, c) * x[c];
    return out;
}

std::vector<double>
solve(Matrix a, std::vector<double> b)
{
    const std::size_t n = a.rows();
    if (a.cols() != n || b.size() != n)
        throw std::invalid_argument("solve: system is not square");

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivoting.
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::abs(a(r, col)) > std::abs(a(pivot, col)))
                pivot = r;
        }
        if (std::abs(a(pivot, col)) < 1e-300)
            throw std::runtime_error("solve: singular matrix");
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(a(col, c), a(pivot, c));
            std::swap(b[col], b[pivot]);
        }

        for (std::size_t r = col + 1; r < n; ++r) {
            double factor = a(r, col) / a(col, col);
            if (factor == 0.0)
                continue;
            for (std::size_t c = col; c < n; ++c)
                a(r, c) -= factor * a(col, c);
            b[r] -= factor * b[col];
        }
    }

    std::vector<double> x(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
        double s = b[i];
        for (std::size_t c = i + 1; c < n; ++c)
            s -= a(i, c) * x[c];
        x[i] = s / a(i, i);
    }
    return x;
}

std::vector<double>
leastSquares(const Matrix &a, const std::vector<double> &b, double damping)
{
    Matrix normal = a.gram();
    if (damping > 0.0) {
        for (std::size_t i = 0; i < normal.rows(); ++i)
            normal(i, i) *= 1.0 + damping;
    }
    return solve(std::move(normal), a.transposeTimes(b));
}

} // namespace opdvfs::math
