/**
 * @file
 * Exact algebra for convex piecewise-linear (PWL) functions.
 *
 * The paper's central analytic result (Sect. 4.2) is that an operator's
 * cycle count is a convex PWL function of core frequency, built from
 * sums and maxima of affine terms (Eqs. 5-8).  Every convex PWL
 * function is the upper envelope of finitely many affine pieces, and
 * that class is closed under +, max, and non-negative scaling, so we
 * represent a function as its set of affine pieces and implement those
 * operations exactly.  The perf module uses this to construct symbolic
 * Cycle(f) functions, and tests use it to verify the simulator's ground
 * truth is convex.
 */

#ifndef OPDVFS_MATH_PIECEWISE_LINEAR_H
#define OPDVFS_MATH_PIECEWISE_LINEAR_H

#include <vector>

namespace opdvfs::math {

/** One affine piece y = slope * x + intercept. */
struct AffinePiece
{
    double slope = 0.0;
    double intercept = 0.0;

    double eval(double x) const { return slope * x + intercept; }
};

/**
 * A convex piecewise-linear function represented as the upper envelope
 * (pointwise max) of its affine pieces.  The piece list is kept
 * normalised: sorted by slope, with dominated pieces removed over the
 * domain of interest.
 */
class ConvexPwl
{
  public:
    /** The zero function. */
    ConvexPwl() : pieces_{{0.0, 0.0}} {}

    /** A single affine function. */
    static ConvexPwl affine(double slope, double intercept);

    /** A constant function. */
    static ConvexPwl constant(double value);

    /** Pointwise maximum. */
    static ConvexPwl max(const ConvexPwl &a, const ConvexPwl &b);

    /** Pointwise maximum over several functions. */
    static ConvexPwl max(const std::vector<ConvexPwl> &fs);

    /** Pointwise sum. */
    static ConvexPwl sum(const ConvexPwl &a, const ConvexPwl &b);

    /** Scale by a non-negative factor (throws for negative factors). */
    ConvexPwl scaled(double factor) const;

    /** Evaluate at @p x. */
    double eval(double x) const;

    /** Left derivative at @p x (slope of the active piece). */
    double slopeAt(double x) const;

    /**
     * Breakpoints (kinks) of the upper envelope strictly inside
     * [lo, hi], in increasing order.
     */
    std::vector<double> breakpoints(double lo, double hi) const;

    /** Number of affine pieces after normalisation. */
    std::size_t pieceCount() const { return pieces_.size(); }

    /** The normalised pieces, sorted by increasing slope. */
    const std::vector<AffinePiece> &pieces() const { return pieces_; }

  private:
    explicit ConvexPwl(std::vector<AffinePiece> pieces);

    /** Sort by slope and drop pieces that never attain the maximum. */
    static std::vector<AffinePiece>
    normalise(std::vector<AffinePiece> pieces);

    std::vector<AffinePiece> pieces_;
};

/**
 * Check that sampled data (x ascending) is consistent with a convex
 * function up to a relative tolerance: every interior point must lie on
 * or below the chord of its neighbours, within tol * |chord value|.
 */
bool isConvexSamples(const std::vector<double> &x,
                     const std::vector<double> &y, double tol = 1e-9);

} // namespace opdvfs::math

#endif // OPDVFS_MATH_PIECEWISE_LINEAR_H
