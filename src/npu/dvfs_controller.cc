#include "npu/dvfs_controller.h"

#include <stdexcept>

namespace opdvfs::npu {

DvfsController::DvfsController(sim::Simulator &simulator,
                               const FreqTable &table, double initial_mhz)
    : simulator_(simulator), table_(table), current_mhz_(initial_mhz)
{
    if (!table.supports(initial_mhz))
        throw std::invalid_argument(
            "DvfsController: unsupported initial frequency");
}

void
DvfsController::apply(double mhz)
{
    if (!table_.supports(mhz))
        throw std::invalid_argument("DvfsController: unsupported frequency");
    ++set_freq_count_;
    if (mhz == current_mhz_)
        return;
    double old = current_mhz_;
    current_mhz_ = mhz;
    for (const auto &listener : listeners_)
        listener(old, mhz);
}

void
DvfsController::applyAfter(Tick delay, double mhz)
{
    simulator_.scheduleIn(delay, [this, mhz] { apply(mhz); });
}

void
DvfsController::onChange(Listener listener)
{
    listeners_.push_back(std::move(listener));
}

} // namespace opdvfs::npu
