#include "npu/dvfs_controller.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace opdvfs::npu {

DvfsController::DvfsController(sim::Simulator &simulator,
                               const FreqTable &table, double initial_mhz)
    : simulator_(simulator), table_(table), current_mhz_(initial_mhz),
      requested_mhz_(initial_mhz)
{
    if (!table.supports(initial_mhz))
        throw std::invalid_argument(
            "DvfsController: unsupported initial frequency");
}

void
DvfsController::apply(double mhz)
{
    if (!std::isfinite(mhz))
        throw std::invalid_argument(
            "DvfsController: non-finite frequency request");
    requested_mhz_ = table_.snap(mhz);
    ++set_freq_count_;
    setFrequency(grantedMhz());
}

double
DvfsController::grantedMhz() const
{
    return throttled() ? std::min(requested_mhz_, throttle_ceiling_)
                       : requested_mhz_;
}

void
DvfsController::setFrequency(double mhz)
{
    if (mhz == current_mhz_)
        return;
    double old = current_mhz_;
    current_mhz_ = mhz;
    for (const auto &listener : listeners_)
        listener(old, mhz);
}

void
DvfsController::setThrottleCeiling(double mhz)
{
    if (!std::isfinite(mhz))
        throw std::invalid_argument(
            "DvfsController: non-finite throttle ceiling");
    double ceiling = table_.snap(mhz);
    if (throttled() && ceiling == throttle_ceiling_)
        return;
    throttle_ceiling_ = ceiling;
    ++throttle_events_;
    for (const auto &listener : throttle_listeners_)
        listener(true, ceiling);
    setFrequency(grantedMhz());
}

void
DvfsController::clearThrottleCeiling()
{
    if (!throttled())
        return;
    throttle_ceiling_ = 0.0;
    for (const auto &listener : throttle_listeners_)
        listener(false, 0.0);
    setFrequency(requested_mhz_);
}

void
DvfsController::applyAfter(Tick delay, double mhz)
{
    simulator_.scheduleIn(delay, [this, mhz] { apply(mhz); });
}

void
DvfsController::onChange(Listener listener)
{
    listeners_.push_back(std::move(listener));
}

void
DvfsController::onThrottle(ThrottleListener listener)
{
    throttle_listeners_.push_back(std::move(listener));
}

} // namespace opdvfs::npu
