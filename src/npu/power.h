/**
 * @file
 * Ground-truth power computation (paper Sect. 5.2, Eq. 11):
 *
 *     P_AICore = alpha f V^2 + beta f V^2 + gamma_core dT V + theta V
 *     P_uncore = idle + activity * active + gamma_uncore dT
 *     P_SoC    = P_AICore + P_uncore
 *
 * alpha is the per-operator activity factor (load-dependent dynamic
 * power), beta the load-independent dynamic coefficient, theta the
 * temperature-independent static coefficient, and the gamma terms the
 * linear subthreshold-leakage dependence on temperature.  The uncore
 * runs in its own fixed voltage/frequency domain (the Ascend NPU does
 * not expose uncore DVFS, Sect. 3), so its voltage factor is absorbed
 * into the coefficients.
 */

#ifndef OPDVFS_NPU_POWER_H
#define OPDVFS_NPU_POWER_H

namespace opdvfs::npu {

/** Ground-truth AICore power coefficients. */
struct AicorePowerParams
{
    /** Load-independent dynamic coefficient beta, W / (Hz V^2). */
    double beta = 5.0e-9;
    /** Static coefficient theta, W / V. */
    double theta = 10.0;
    /** Leakage temperature slope gamma, W / (K V). */
    double gamma = 0.2;
};

/** Ground-truth uncore power coefficients (fixed clock domain). */
struct UncorePowerParams
{
    /** Load-independent uncore power, W. */
    double idle_watts = 120.0;
    /** Additional power at uncore activity 1.0, W. */
    double active_watts = 60.0;
    /** Leakage temperature slope, W / K (voltage absorbed). */
    double gamma = 1.3;
    /**
     * Fraction of idle_watts that is clocked (dynamic) power and hence
     * scales with the uncore operating point; the rest is static.
     */
    double dynamic_fraction = 0.55;
};

/** Instantaneous operating state used for a power evaluation. */
struct PowerState
{
    double f_mhz = 1800.0;
    double volts = 0.825;
    /** Per-operator AICore activity factor; 0 when idle. */
    double alpha_core = 0.0;
    /** Uncore activity in [0, 1]. */
    double uncore_activity = 0.0;
    /** Uncore operating-point scale in (0, 1] (Sect. 8.2 scenario). */
    double uncore_scale = 1.0;
    /** Die temperature rise over ambient, K. */
    double delta_t = 0.0;
    /**
     * Multiplier on the AICore dynamic (alpha/beta) terms; 1.0 for a
     * healthy die, driven above 1.0 by capacitance-aging drift.
     */
    double aging_scale = 1.0;
};

/** Stateless evaluator of the ground-truth power equations. */
class PowerCalculator
{
  public:
    PowerCalculator(const AicorePowerParams &aicore,
                    const UncorePowerParams &uncore)
        : aicore_(aicore), uncore_(uncore)
    {}

    PowerCalculator() : PowerCalculator(AicorePowerParams{},
                                        UncorePowerParams{}) {}

    /** AICore power under @p state (Eq. 11). */
    double aicorePower(const PowerState &state) const;

    /** AICore load-independent power at (f, V, dT=0) (Eq. 12). */
    double aicoreIdlePower(double f_mhz, double volts) const;

    /** Uncore power under @p state. */
    double uncorePower(const PowerState &state) const;

    /** SoC power = AICore + uncore. */
    double socPower(const PowerState &state) const;

    const AicorePowerParams &aicoreParams() const { return aicore_; }
    const UncorePowerParams &uncoreParams() const { return uncore_; }

  private:
    AicorePowerParams aicore_;
    UncorePowerParams uncore_;
};

} // namespace opdvfs::npu

#endif // OPDVFS_NPU_POWER_H
