/**
 * @file
 * The NPU's supported frequency points and the firmware
 * voltage-frequency curve (paper Sect. 5.1, Fig. 9).
 *
 * The modelled device supports core frequencies from 1000 MHz to
 * 1800 MHz in 100 MHz steps.  Below a knee frequency the firmware holds
 * voltage constant; above it, voltage rises linearly with frequency.
 */

#ifndef OPDVFS_NPU_FREQ_TABLE_H
#define OPDVFS_NPU_FREQ_TABLE_H

#include <vector>

namespace opdvfs::npu {

/** One supported operating point. */
struct FreqPoint
{
    double mhz = 0.0;
    double volts = 0.0;
};

/** Parameters of the firmware V-F curve. */
struct FreqTableConfig
{
    double min_mhz = 1000.0;
    double max_mhz = 1800.0;
    double step_mhz = 100.0;
    /** Below this frequency, voltage is flat (Fig. 9). */
    double knee_mhz = 1300.0;
    /** Voltage at and below the knee. */
    double base_volts = 0.65;
    /** Voltage slope above the knee, in V per MHz. */
    double volts_per_mhz = 0.4e-3;
};

/**
 * Discrete frequency table with automatic voltage adaptation.
 * Immutable once constructed.
 */
class FreqTable
{
  public:
    explicit FreqTable(const FreqTableConfig &config = {});

    /** All supported operating points, ascending in frequency. */
    const std::vector<FreqPoint> &points() const { return points_; }

    /** All supported frequencies in MHz, ascending. */
    std::vector<double> frequenciesMhz() const;

    /** True iff @p mhz is one of the supported points. */
    bool supports(double mhz) const;

    /**
     * Firmware-selected voltage for a supported frequency.
     * @throws std::invalid_argument for unsupported frequencies.
     */
    double voltageFor(double mhz) const;

    /** Lowest supported frequency. */
    double minMhz() const { return points_.front().mhz; }

    /** Highest supported frequency. */
    double maxMhz() const { return points_.back().mhz; }

    /** Clamp and snap @p mhz to the nearest supported point. */
    double snap(double mhz) const;

    const FreqTableConfig &config() const { return config_; }

  private:
    FreqTableConfig config_;
    std::vector<FreqPoint> points_;
};

} // namespace opdvfs::npu

#endif // OPDVFS_NPU_FREQ_TABLE_H
