#include "npu/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace opdvfs::npu {

bool
FaultPlan::driftEnabled() const
{
    return aging_dynamic_drift != 0.0 || sensor_bias_watts != 0.0
        || latency_drift != 0.0 || ambient_drift_celsius != 0.0;
}

bool
FaultPlan::anyEnabled() const
{
    return set_freq_drop_rate > 0.0 || set_freq_jitter_max > 0
        || thermal_throttle || spurious_trip_rate_hz > 0.0
        || blackout_rate_hz > 0.0 || spike_rate > 0.0 || driftEnabled();
}

FaultInjector::FaultInjector(const FaultPlan &plan)
    : plan_(plan),
      set_freq_rng_(plan.seed * 2654435761ULL + 11),
      thermal_rng_(plan.seed * 2654435761ULL + 29),
      telemetry_rng_(plan.seed * 2654435761ULL + 47)
{
    if (plan.set_freq_drop_rate < 0.0 || plan.set_freq_drop_rate > 1.0
        || plan.spike_rate < 0.0 || plan.spike_rate > 1.0) {
        throw std::invalid_argument(
            "FaultInjector: probabilities must be in [0, 1]");
    }
    if (plan.set_freq_jitter_max < 0 || plan.blackout_duration < 0
        || plan.spurious_trip_rate_hz < 0.0 || plan.blackout_rate_hz < 0.0) {
        throw std::invalid_argument(
            "FaultInjector: negative rate or duration");
    }
    if (plan.thermal_throttle
        && plan.throttle_release_celsius > plan.throttle_trip_celsius) {
        throw std::invalid_argument(
            "FaultInjector: release point above trip point");
    }
    if (!std::isfinite(plan.aging_dynamic_drift)
        || !std::isfinite(plan.sensor_bias_watts)
        || !std::isfinite(plan.latency_drift)
        || !std::isfinite(plan.ambient_drift_celsius)) {
        throw std::invalid_argument(
            "FaultInjector: non-finite drift magnitude");
    }
    if (plan.aging_dynamic_drift <= -1.0 || plan.latency_drift <= -1.0) {
        throw std::invalid_argument(
            "FaultInjector: drift would make power or latency "
            "non-positive");
    }
    if (plan.drift_start < 0 || plan.drift_ramp < 0) {
        throw std::invalid_argument(
            "FaultInjector: negative drift start or ramp");
    }
    if (plan.spurious_trip_rate_hz > 0.0)
        next_spurious_trip_ = drawGap(plan.spurious_trip_rate_hz,
                                      thermal_rng_);
    if (plan.blackout_rate_hz > 0.0)
        next_blackout_ = drawGap(plan.blackout_rate_hz, telemetry_rng_);
}

Tick
FaultInjector::drawGap(double rate_hz, Rng &rng)
{
    // Exponential inter-arrival; u in [0, 1) keeps the log finite.
    double u = rng.uniform(0.0, 1.0);
    double seconds = -std::log(1.0 - u) / rate_hz;
    return secondsToTicks(seconds);
}

bool
FaultInjector::dropSetFreq()
{
    ++counters_.set_freqs_seen;
    if (plan_.set_freq_drop_rate <= 0.0)
        return false;
    bool dropped = set_freq_rng_.chance(plan_.set_freq_drop_rate);
    if (dropped)
        ++counters_.set_freqs_dropped;
    return dropped;
}

Tick
FaultInjector::setFreqExtraLatency()
{
    if (plan_.set_freq_jitter_max <= 0)
        return 0;
    Tick extra = static_cast<Tick>(set_freq_rng_.uniformInt(
        0, plan_.set_freq_jitter_max));
    counters_.jitter_injected += extra;
    return extra;
}

ThrottleAction
FaultInjector::updateThrottle(Tick now, double temperature_c)
{
    if (!plan_.thermal_throttle && plan_.spurious_trip_rate_hz <= 0.0)
        return ThrottleAction::None;

    bool glitch = false;
    while (now >= next_spurious_trip_) {
        glitch = true;
        ++counters_.spurious_trips;
        next_spurious_trip_ += drawGap(plan_.spurious_trip_rate_hz,
                                       thermal_rng_);
    }
    bool hot = plan_.thermal_throttle
        && temperature_c >= plan_.throttle_trip_celsius;

    if (!throttle_active_ && (hot || glitch)) {
        throttle_active_ = true;
        ++counters_.throttle_trips;
        return ThrottleAction::Trip;
    }
    if (throttle_active_ && plan_.throttle_auto_release && !hot && !glitch
        && temperature_c <= plan_.throttle_release_celsius) {
        throttle_active_ = false;
        ++counters_.throttle_releases;
        return ThrottleAction::Release;
    }
    return ThrottleAction::None;
}

void
FaultInjector::forceRelease()
{
    if (!throttle_active_)
        return;
    throttle_active_ = false;
    ++counters_.forced_releases;
}

double
FaultInjector::driftLevel(Tick now) const
{
    if (!plan_.driftEnabled() || now < plan_.drift_start)
        return 0.0;
    if (plan_.drift_ramp <= 0)
        return 1.0;
    double level = static_cast<double>(now - plan_.drift_start)
        / static_cast<double>(plan_.drift_ramp);
    return std::min(level, 1.0);
}

double
FaultInjector::agingDynamicScale(Tick now) const
{
    return 1.0 + plan_.aging_dynamic_drift * driftLevel(now);
}

double
FaultInjector::sensorBiasWatts(Tick now) const
{
    return plan_.sensor_bias_watts * driftLevel(now);
}

double
FaultInjector::latencyScale(Tick now) const
{
    return 1.0 + plan_.latency_drift * driftLevel(now);
}

double
FaultInjector::ambientOffsetCelsius(Tick now) const
{
    return plan_.ambient_drift_celsius * driftLevel(now);
}

TelemetryFault
FaultInjector::telemetrySample(Tick now)
{
    ++counters_.samples_seen;
    if (now < blackout_until_) {
        ++counters_.samples_blacked_out;
        return TelemetryFault::Blackout;
    }
    if (now >= next_blackout_) {
        blackout_until_ = now + plan_.blackout_duration;
        do {
            next_blackout_ += drawGap(plan_.blackout_rate_hz,
                                      telemetry_rng_);
        } while (next_blackout_ < blackout_until_);
        ++counters_.samples_blacked_out;
        return TelemetryFault::Blackout;
    }
    if (plan_.spike_rate > 0.0
        && telemetry_rng_.chance(plan_.spike_rate)) {
        ++counters_.samples_spiked;
        return TelemetryFault::Spike;
    }
    return TelemetryFault::None;
}

} // namespace opdvfs::npu
