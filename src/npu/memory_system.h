/**
 * @file
 * Abstraction of the NPU memory hierarchy (paper Sect. 2.2, Fig. 2)
 * and the Ld/St bandwidth analysis of Sect. 4.1.
 *
 * Load/store traffic crosses the core/uncore boundary: each AICore's L1
 * sits in the core clock domain, while the shared L2 and HBM sit in the
 * uncore domain.  Throughput therefore follows
 *
 *     Tp(f) = min(C * f * core_num, BW_uncore)            (Eq. 1)
 *
 * where C is a bus-width constant and BW_uncore blends L2 and HBM
 * bandwidth by the L2 hit rate.  For a transfer of M bytes this yields
 * the core-domain cycle count
 *
 *     Cycle(f) = max(M/BW_uncore * f, M/(C*core_num)) + T0 * f  (Eq. 4)
 *
 * i.e. an affine-plus-max convex function of f with saturation point
 * fs = BW_uncore / (C * core_num)                          (Eq. 2).
 */

#ifndef OPDVFS_NPU_MEMORY_SYSTEM_H
#define OPDVFS_NPU_MEMORY_SYSTEM_H

#include <cstddef>

namespace opdvfs::npu {

/** Hardware constants of the memory hierarchy. */
struct MemorySystemConfig
{
    /** Number of AICores sharing the uncore. */
    std::size_t core_num = 32;
    /** Bytes a core moves across the boundary per core cycle (C). */
    double bytes_per_cycle_per_core = 32.0;
    /**
     * Peak shared L2 bandwidth in bytes/second.  With the default C and
     * core count the pure-L2 saturation frequency (Eq. 2) is ~1953 MHz,
     * just above the supported range: L2-resident traffic stays
     * core-limited at every operating point.
     */
    double l2_bandwidth = 2.0e12;
    /**
     * Peak HBM bandwidth in bytes/second; pure-HBM saturation is
     * ~1172 MHz, so HBM-heavy operators go uncore-bound early.
     */
    double hbm_bandwidth = 1.2e12;
    /**
     * Uncore operating-point scale in (0, 1]: both L2 and HBM
     * bandwidth scale with the uncore clock.  1.0 is the nominal
     * point; the Ascend NPU the paper measures cannot change it
     * (Sect. 3), so this models the Sect. 8.2 future-work scenario of
     * uncore DVFS becoming available.
     */
    double bandwidth_scale = 1.0;
};

/**
 * The two coefficients of the convex Ld/St cycle function for one
 * transfer: Cycle(f) = max(slope_per_hz * f_hz, floor_cycles); the
 * caller adds the T0*f fixed-overhead term (it is an operator property,
 * not a memory-system property).
 */
struct LdStCycleCoefficients
{
    /** a = M / BW_uncore, in seconds (multiplied by f in Hz -> cycles). */
    double slope_per_hz = 0.0;
    /** c = M / (C * core_num), in core cycles. */
    double floor_cycles = 0.0;
};

/** Static model of the L1/L2/HBM hierarchy. */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemorySystemConfig &config = {});

    /**
     * Effective uncore bandwidth for traffic with the given L2 hit
     * rate: hit * BW_L2 + (1 - hit) * BW_HBM.
     */
    double uncoreBandwidth(double l2_hit_rate) const;

    /** Eq. 1: achievable Ld/St throughput (bytes/s) at @p f_mhz. */
    double throughput(double f_mhz, double l2_hit_rate) const;

    /** Eq. 2: saturation frequency in MHz for the given hit rate. */
    double saturationMhz(double l2_hit_rate) const;

    /**
     * Eq. 4 coefficients for moving @p volume_bytes with the given L2
     * hit rate.  A zero volume yields zero coefficients.
     */
    LdStCycleCoefficients ldStCoefficients(double volume_bytes,
                                           double l2_hit_rate) const;

    const MemorySystemConfig &config() const { return config_; }

  private:
    MemorySystemConfig config_;
};

} // namespace opdvfs::npu

#endif // OPDVFS_NPU_MEMORY_SYSTEM_H
