#include "npu/aicore_timeline.h"

#include <algorithm>
#include <stdexcept>

#include "common/units.h"

namespace opdvfs::npu {

double
PipelineRatios::maxRatio() const
{
    return std::max({cube, vector, scalar, mte1, mte2, mte3});
}

AicoreTimeline::AicoreTimeline(const HwOpParams &params,
                               const MemorySystem &memory)
    : params_(params),
      ld_(memory.ldStCoefficients(params.ld_volume_bytes, params.ld_l2_hit)),
      st_(memory.ldStCoefficients(params.st_volume_bytes, params.st_l2_hit))
{
    if (params.n < 1)
        throw std::invalid_argument("AicoreTimeline: n must be >= 1");
    if (params.core_cycles < 0.0 || params.t0_seconds < 0.0)
        throw std::invalid_argument("AicoreTimeline: negative parameter");
}

namespace {

/** max(a*f, c) for one transfer; zero when there is no traffic. */
double
rawTransferCycles(const LdStCycleCoefficients &coeff, double f_hz)
{
    if (coeff.floor_cycles == 0.0)
        return 0.0;
    return std::max(coeff.slope_per_hz * f_hz, coeff.floor_cycles);
}

} // namespace

double
AicoreTimeline::ldCycles(double f_mhz) const
{
    double f_hz = mhzToHz(f_mhz);
    if (ld_.floor_cycles == 0.0)
        return 0.0;
    return rawTransferCycles(ld_, f_hz) + params_.t0_seconds * f_hz;
}

double
AicoreTimeline::stCycles(double f_mhz) const
{
    double f_hz = mhzToHz(f_mhz);
    if (st_.floor_cycles == 0.0)
        return 0.0;
    return rawTransferCycles(st_, f_hz) + params_.t0_seconds * f_hz;
}

double
AicoreTimeline::cyclesScenario(double f_hz) const
{
    const double n = static_cast<double>(params_.n);
    const double core = params_.core_cycles;
    const double t0f = params_.t0_seconds * f_hz;
    const bool has_ld = ld_.floor_cycles > 0.0;
    const bool has_st = st_.floor_cycles > 0.0;
    const double raw_ld = rawTransferCycles(ld_, f_hz);
    const double raw_st = rawTransferCycles(st_, f_hz);
    const double t0_ld = has_ld ? t0f : 0.0;
    const double t0_st = has_st ? t0f : 0.0;

    switch (params_.scenario) {
      case Scenario::PingPongFreeIndependent:
        // Eq. 5: head Ld + tail St + n core computations + (n-1)
        // overlapped move-in/move-out slots + (n+1) T0 overheads.
        return raw_ld + raw_st + n * core
            + (n - 1.0) * std::max(raw_ld, raw_st)
            + t0_ld + t0_st
            + (n - 1.0) * ((has_ld || has_st) ? t0f : 0.0);

      case Scenario::PingPongFreeDependent:
        // Eq. 6: fully serialised Ld -> core -> St chains.
        return n * (raw_ld + raw_st + core + t0_ld + t0_st);

      case Scenario::PingPongIndependent:
        // Eq. 7: head/tail exposed once; the steady state is paced by
        // the slowest of {Ld, core, St}.
        return raw_ld + core + raw_st
            + (n - 1.0)
                * std::max({raw_ld + t0_ld, raw_st + t0_st, core})
            + t0_ld + t0_st;

      case Scenario::PingPongDependent:
        // Eq. 8: double buffering halves the serialised chain count;
        // one un-overlapped max() segment remains.
        return (n / 2.0) * (raw_ld + raw_st + core)
            + std::max({raw_ld + t0_ld, raw_st + t0_st, core})
            + (n / 2.0) * (t0_ld + t0_st);
    }
    throw std::logic_error("AicoreTimeline: unknown scenario");
}

double
AicoreTimeline::cycles(double f_mhz) const
{
    if (params_.category != OpCategory::Compute)
        return 0.0;
    double f_hz = mhzToHz(f_mhz);
    return cyclesScenario(f_hz) + params_.overhead_seconds * f_hz;
}

double
AicoreTimeline::seconds(double f_mhz) const
{
    if (params_.category != OpCategory::Compute)
        return params_.fixed_seconds;
    return cycles(f_mhz) / mhzToHz(f_mhz);
}

math::ConvexPwl
AicoreTimeline::cyclePwl() const
{
    return math::ConvexPwl::sum(
        cyclePwlScenario(),
        math::ConvexPwl::affine(params_.overhead_seconds, 0.0));
}

math::ConvexPwl
AicoreTimeline::cyclePwlScenario() const
{
    using math::ConvexPwl;

    const double n = static_cast<double>(params_.n);
    const bool has_ld = ld_.floor_cycles > 0.0;
    const bool has_st = st_.floor_cycles > 0.0;
    const double t0 = params_.t0_seconds;

    auto raw = [](const LdStCycleCoefficients &coeff) {
        if (coeff.floor_cycles == 0.0)
            return ConvexPwl::constant(0.0);
        return ConvexPwl::max(ConvexPwl::affine(coeff.slope_per_hz, 0.0),
                              ConvexPwl::constant(coeff.floor_cycles));
    };

    ConvexPwl raw_ld = raw(ld_);
    ConvexPwl raw_st = raw(st_);
    ConvexPwl core = ConvexPwl::constant(params_.core_cycles);
    ConvexPwl t0f = ConvexPwl::affine(t0, 0.0);
    ConvexPwl ld_full = has_ld ? ConvexPwl::sum(raw_ld, t0f) : raw_ld;
    ConvexPwl st_full = has_st ? ConvexPwl::sum(raw_st, t0f) : raw_st;

    switch (params_.scenario) {
      case Scenario::PingPongFreeIndependent: {
        ConvexPwl mid = ConvexPwl::max(raw_ld, raw_st).scaled(n - 1.0);
        double t0_slope = t0 * ((has_ld ? 1.0 : 0.0) + (has_st ? 1.0 : 0.0)
                                + ((has_ld || has_st) ? n - 1.0 : 0.0));
        ConvexPwl acc = ConvexPwl::sum(raw_ld, raw_st);
        acc = ConvexPwl::sum(acc, core.scaled(n));
        acc = ConvexPwl::sum(acc, mid);
        return ConvexPwl::sum(acc, ConvexPwl::affine(t0_slope, 0.0));
      }

      case Scenario::PingPongFreeDependent: {
        ConvexPwl acc = ConvexPwl::sum(raw_ld, raw_st);
        acc = ConvexPwl::sum(acc, core);
        double t0_slope = t0 * ((has_ld ? 1.0 : 0.0) + (has_st ? 1.0 : 0.0));
        acc = ConvexPwl::sum(acc, ConvexPwl::affine(t0_slope, 0.0));
        return acc.scaled(n);
      }

      case Scenario::PingPongIndependent: {
        ConvexPwl pace =
            ConvexPwl::max({ld_full, st_full, core}).scaled(n - 1.0);
        ConvexPwl acc = ConvexPwl::sum(raw_ld, raw_st);
        acc = ConvexPwl::sum(acc, core);
        acc = ConvexPwl::sum(acc, pace);
        double t0_slope = t0 * ((has_ld ? 1.0 : 0.0) + (has_st ? 1.0 : 0.0));
        return ConvexPwl::sum(acc, ConvexPwl::affine(t0_slope, 0.0));
      }

      case Scenario::PingPongDependent: {
        ConvexPwl chain = ConvexPwl::sum(ConvexPwl::sum(raw_ld, raw_st), core)
                              .scaled(n / 2.0);
        ConvexPwl head = ConvexPwl::max({ld_full, st_full, core});
        double t0_slope = t0 * (n / 2.0)
            * ((has_ld ? 1.0 : 0.0) + (has_st ? 1.0 : 0.0));
        ConvexPwl acc = ConvexPwl::sum(chain, head);
        return ConvexPwl::sum(acc, ConvexPwl::affine(t0_slope, 0.0));
      }
    }
    throw std::logic_error("AicoreTimeline: unknown scenario");
}

PipelineRatios
AicoreTimeline::ratios(double f_mhz) const
{
    PipelineRatios out;
    if (params_.category != OpCategory::Compute)
        return out;

    double total = cycles(f_mhz);
    if (total <= 0.0)
        return out;

    const double n = static_cast<double>(params_.n);
    double ld_busy = std::min(n * ldCycles(f_mhz), total);
    double st_busy = std::min(n * stCycles(f_mhz), total);
    double core_busy = std::min(n * params_.core_cycles, total);

    out.mte2 = ld_busy / total;
    out.mte3 = st_busy / total;

    double core_ratio = core_busy / total;
    switch (params_.core_pipe) {
      case CorePipe::Cube:   out.cube = core_ratio; break;
      case CorePipe::Vector: out.vector = core_ratio; break;
      case CorePipe::Scalar: out.scalar = core_ratio; break;
      case CorePipe::Mte1:   out.mte1 = core_ratio; break;
    }
    return out;
}

} // namespace opdvfs::npu
