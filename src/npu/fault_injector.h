/**
 * @file
 * Deterministic, seeded fault injection for the simulated NPU.
 *
 * Real Ascend deployments misbehave in ways the clean simulator never
 * shows: the firmware silently drops SetFreq commands, the apply
 * latency jitters past the executor's compensated 1 ms, thermal
 * protection clamps the core clock when the die crosses a trip point
 * (sometimes spuriously, on a glitched sensor reading), and the lpmi
 * telemetry channel blacks out or returns corrupted spikes.  The
 * FaultInjector reproduces each of those fault classes from an
 * explicit seed so every faulted run is bit-for-bit repeatable.
 *
 * Every fault class draws from its own forked RNG stream, so enabling
 * one class never perturbs the event sequence of another.  Rate-based
 * faults (spurious throttle trips, telemetry blackouts) are realised
 * as pre-drawn Poisson arrival schedules, which makes them independent
 * of how often the hosting component polls the injector.
 */

#ifndef OPDVFS_NPU_FAULT_INJECTOR_H
#define OPDVFS_NPU_FAULT_INJECTOR_H

#include <cstdint>

#include "common/random.h"
#include "common/units.h"

namespace opdvfs::npu {

/** Configuration of every injectable fault class (all off by default). */
struct FaultPlan
{
    /** Seed for all fault draws; forked per fault class. */
    std::uint64_t seed = 1;

    // --- SetFreq command faults ------------------------------------------
    /** Probability a SetFreq command is silently dropped by firmware. */
    double set_freq_drop_rate = 0.0;
    /** Max extra apply latency, uniform in [0, max] per SetFreq. */
    Tick set_freq_jitter_max = 0;

    // --- firmware thermal throttle ---------------------------------------
    /** Clamp the core clock when die temperature crosses the trip point. */
    bool thermal_throttle = false;
    double throttle_trip_celsius = 85.0;
    /** Auto-release threshold (only honoured with throttle_auto_release). */
    double throttle_release_celsius = 80.0;
    /** Frequency the firmware clamps to while throttled. */
    double throttle_mhz = 1000.0;
    /** Mean rate (events/s) of spurious sensor-glitch trips. */
    double spurious_trip_rate_hz = 0.0;
    /**
     * When false, the firmware's auto-release is broken (a latched
     * clamp): only an explicit governor reset clears the throttle.
     */
    bool throttle_auto_release = true;

    // --- telemetry faults --------------------------------------------------
    /** Mean rate (events/s) at which blackout windows begin. */
    double blackout_rate_hz = 0.0;
    /** Duration of each blackout window (samples inside are lost). */
    Tick blackout_duration = 50 * kTicksPerMs;
    /** Probability a surviving sample is a corrupted spike. */
    double spike_rate = 0.0;
    /** Power multiplier applied to spiked samples. */
    double spike_factor = 4.0;
    /** Additive temperature error on spiked samples, degC. */
    double spike_temperature_delta = 30.0;

    // --- slow model drift --------------------------------------------------
    // Each magnitude is the value reached at full ramp: zero before
    // `drift_start`, a linear ramp over `drift_ramp`, then held.  The
    // ramp is deterministic (no RNG), so drifted runs replay
    // bit-for-bit and the drift level at any tick is a pure function
    // of the plan.

    /** Fractional dynamic-power increase (capacitance aging scales the
     *  alpha/beta f V^2 terms). */
    double aging_dynamic_drift = 0.0;
    /** Additive power-telemetry bias at full ramp, W (sensor aging). */
    double sensor_bias_watts = 0.0;
    /** Fractional per-operator latency increase at full ramp. */
    double latency_drift = 0.0;
    /** Ambient-temperature change at full ramp, degC. */
    double ambient_drift_celsius = 0.0;
    /** Tick at which the drift ramp begins. */
    Tick drift_start = 0;
    /** Ramp duration; 0 means a step to full drift at drift_start. */
    Tick drift_ramp = 0;

    /** True when any slow-drift magnitude is configured. */
    bool driftEnabled() const;

    /** True when any fault class is configured. */
    bool anyEnabled() const;
};

/** What the firmware throttle state machine wants done right now. */
enum class ThrottleAction { None, Trip, Release };

/** Per-sample telemetry verdict. */
enum class TelemetryFault { None, Blackout, Spike };

/** Injection bookkeeping, for tests and benches. */
struct FaultCounters
{
    std::uint64_t set_freqs_seen = 0;
    std::uint64_t set_freqs_dropped = 0;
    /** Total extra SetFreq latency injected. */
    Tick jitter_injected = 0;
    std::uint64_t throttle_trips = 0;
    std::uint64_t spurious_trips = 0;
    std::uint64_t throttle_releases = 0;
    /** Releases forced by a governor reset (the guard's repair). */
    std::uint64_t forced_releases = 0;
    std::uint64_t samples_seen = 0;
    std::uint64_t samples_blacked_out = 0;
    std::uint64_t samples_spiked = 0;
};

/** Seeded realisation of one chip's FaultPlan. */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan);

    // --- SetFreq path (NpuChip::enqueueSetFreq) ---------------------------

    /** Draw: true when this SetFreq command is silently lost. */
    bool dropSetFreq();

    /** Draw: extra apply latency for this SetFreq. */
    Tick setFreqExtraLatency();

    // --- thermal throttle (NpuChip accrual loop) --------------------------

    /**
     * Advance the firmware throttle state machine to @p now at die
     * temperature @p temperature_c.  Returns the transition the caller
     * must apply to the DvfsController, if any.
     */
    ThrottleAction updateThrottle(Tick now, double temperature_c);

    /** Governor reset: clears a (possibly latched) throttle. */
    void forceRelease();

    bool throttleActive() const { return throttle_active_; }

    // --- telemetry path (PowerSampler) ------------------------------------

    /** Classify the sample being taken at @p now. */
    TelemetryFault telemetrySample(Tick now);

    // --- slow model drift (deterministic, no RNG) --------------------------

    /** Ramp position in [0, 1] at @p now. */
    double driftLevel(Tick now) const;

    /** Multiplier on the dynamic (alpha/beta) power terms, >= 0. */
    double agingDynamicScale(Tick now) const;

    /** Additive bias on power-telemetry readings at @p now, W. */
    double sensorBiasWatts(Tick now) const;

    /** Multiplier on every operator's execution time, > 0. */
    double latencyScale(Tick now) const;

    /** Ambient-temperature offset at @p now, degC. */
    double ambientOffsetCelsius(Tick now) const;

    const FaultPlan &plan() const { return plan_; }
    const FaultCounters &counters() const { return counters_; }

  private:
    /** Draw the next Poisson inter-arrival gap for @p rate_hz. */
    Tick drawGap(double rate_hz, Rng &rng);

    FaultPlan plan_;
    Rng set_freq_rng_;
    Rng thermal_rng_;
    Rng telemetry_rng_;
    bool throttle_active_ = false;
    Tick next_spurious_trip_ = kMaxTick;
    Tick next_blackout_ = kMaxTick;
    Tick blackout_until_ = -1;
    FaultCounters counters_;
};

} // namespace opdvfs::npu

#endif // OPDVFS_NPU_FAULT_INJECTOR_H
