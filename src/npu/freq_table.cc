#include "npu/freq_table.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace opdvfs::npu {

FreqTable::FreqTable(const FreqTableConfig &config) : config_(config)
{
    if (config.min_mhz <= 0.0 || config.max_mhz < config.min_mhz
        || config.step_mhz <= 0.0) {
        throw std::invalid_argument("FreqTable: invalid frequency range");
    }
    for (double f = config.min_mhz; f <= config.max_mhz + 1e-9;
         f += config.step_mhz) {
        double volts = config.base_volts;
        if (f > config.knee_mhz)
            volts += (f - config.knee_mhz) * config.volts_per_mhz;
        points_.push_back({f, volts});
    }
}

std::vector<double>
FreqTable::frequenciesMhz() const
{
    std::vector<double> out;
    out.reserve(points_.size());
    for (const auto &p : points_)
        out.push_back(p.mhz);
    return out;
}

bool
FreqTable::supports(double mhz) const
{
    return std::any_of(points_.begin(), points_.end(),
                       [mhz](const FreqPoint &p) {
                           return std::abs(p.mhz - mhz) < 1e-6;
                       });
}

double
FreqTable::voltageFor(double mhz) const
{
    for (const auto &p : points_) {
        if (std::abs(p.mhz - mhz) < 1e-6)
            return p.volts;
    }
    throw std::invalid_argument("FreqTable: unsupported frequency");
}

double
FreqTable::snap(double mhz) const
{
    const FreqPoint *best = &points_.front();
    for (const auto &p : points_) {
        if (std::abs(p.mhz - mhz) < std::abs(best->mhz - mhz))
            best = &p;
    }
    return best->mhz;
}

} // namespace opdvfs::npu
