#include "npu/power.h"

#include <algorithm>

#include "common/units.h"

namespace opdvfs::npu {

double
PowerCalculator::aicoreIdlePower(double f_mhz, double volts) const
{
    double fv2 = mhzToHz(f_mhz) * volts * volts;
    return aicore_.beta * fv2 + aicore_.theta * volts;
}

double
PowerCalculator::aicorePower(const PowerState &state) const
{
    double fv2 = mhzToHz(state.f_mhz) * state.volts * state.volts;
    // Aging scales the switched-capacitance (dynamic) terms only; the
    // static/leakage terms are unaffected.
    return state.aging_scale * (state.alpha_core * fv2 + aicore_.beta * fv2)
        + aicore_.gamma * state.delta_t * state.volts
        + aicore_.theta * state.volts;
}

double
PowerCalculator::uncorePower(const PowerState &state) const
{
    double activity = std::clamp(state.uncore_activity, 0.0, 1.0);
    // Uncore DVFS (Sect. 8.2 future work): dynamic power scales with
    // the uncore clock and its DVS voltage; static leakage does not.
    double s = std::clamp(state.uncore_scale, 0.0, 1.0);
    double volts_scale = 0.7 + 0.3 * s;
    double dynamic_scale = s * volts_scale * volts_scale;
    double idle_dynamic = uncore_.idle_watts * uncore_.dynamic_fraction;
    double idle_static = uncore_.idle_watts - idle_dynamic;
    return idle_static
        + (idle_dynamic + activity * uncore_.active_watts) * dynamic_scale
        + uncore_.gamma * state.delta_t;
}

double
PowerCalculator::socPower(const PowerState &state) const
{
    return aicorePower(state) + uncorePower(state);
}

} // namespace opdvfs::npu
