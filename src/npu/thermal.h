/**
 * @file
 * First-order RC thermal model of the SoC package.
 *
 * At equilibrium the model reproduces the linear temperature/SoC-power
 * relation the paper measures (Fig. 10, Eq. 15): T = T0 + k * Psoc.
 * Away from equilibrium the temperature relaxes exponentially with a
 * package time constant, which is what makes the cool-down trace used
 * for gamma calibration (Sect. 5.4.2) and the thermal-transient model
 * error realistic.
 */

#ifndef OPDVFS_NPU_THERMAL_H
#define OPDVFS_NPU_THERMAL_H

namespace opdvfs::npu {

/** Thermal constants of the package. */
struct ThermalConfig
{
    /** Ambient temperature T0 in Celsius. */
    double ambient_celsius = 25.0;
    /** Equilibrium slope k in K/W (Eq. 15). */
    double k_per_watt = 0.15;
    /** Package RC time constant in seconds. */
    double time_constant_s = 8.0;
};

/** Mutable thermal state advanced by the simulator. */
class ThermalModel
{
  public:
    explicit ThermalModel(const ThermalConfig &config = {});

    /** Equilibrium temperature under constant @p p_soc_watts (Eq. 15). */
    double equilibrium(double p_soc_watts) const;

    /**
     * Advance the state by @p dt_s seconds under constant power
     * @p p_soc_watts, with the exact first-order update
     * T += (Teq - T) * (1 - exp(-dt / tau)).
     */
    void advance(double dt_s, double p_soc_watts);

    /** Current die temperature in Celsius. */
    double temperature() const { return temperature_; }

    /** Temperature rise over ambient, dT. */
    double deltaT() const;

    /** Highest temperature reached since construction/resetPeak(). */
    double peakCelsius() const { return peak_celsius_; }

    /** Restart peak tracking from the current temperature. */
    void resetPeak() { peak_celsius_ = temperature_; }

    /** Reset to ambient. */
    void reset();

    /**
     * Offset the effective ambient temperature (thermal-environment
     * drift): equilibria shift by the offset while deltaT() stays
     * relative to the *nominal* ambient, which is what the leakage
     * term and the fitted Eq. 15 intercept reference.
     */
    void setAmbientOffset(double offset_celsius)
    {
        ambient_offset_ = offset_celsius;
    }

    double ambientOffset() const { return ambient_offset_; }

    const ThermalConfig &config() const { return config_; }

  private:
    ThermalConfig config_;
    double temperature_;
    double peak_celsius_;
    double ambient_offset_ = 0.0;
};

} // namespace opdvfs::npu

#endif // OPDVFS_NPU_THERMAL_H
