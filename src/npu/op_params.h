/**
 * @file
 * Hardware-level description of one operator execution on the NPU.
 *
 * These are the *ground-truth* parameters the simulator executes from.
 * The performance/power models never see them directly; they only see
 * noisy profiled timings and telemetry, exactly as on real hardware.
 */

#ifndef OPDVFS_NPU_OP_PARAMS_H
#define OPDVFS_NPU_OP_PARAMS_H

namespace opdvfs::npu {

/**
 * The four timeline scenarios of paper Sect. 4.2, classified by
 * PingPong (double buffering) involvement and by whether the store of
 * iteration i depends on the load of iteration i (serialising Ld/St).
 */
enum class Scenario
{
    /** Sect. 4.2.1 / Eq. 5: no double buffering, Ld and St overlap. */
    PingPongFreeIndependent,
    /** Sect. 4.2.2 / Eq. 6: no double buffering, Ld -> core -> St. */
    PingPongFreeDependent,
    /** Sect. 4.2.3 / Eq. 7: double buffering, Ld and St overlap. */
    PingPongIndependent,
    /** Sect. 4.2.4 / Eq. 8: double buffering, Ld -> core -> St. */
    PingPongDependent,
};

/** Core-domain pipelines of the AICore (Sect. 6.1). */
enum class CorePipe
{
    /** Matrix (cube) unit. */
    Cube,
    /** Vector unit. */
    Vector,
    /** Scalar unit. */
    Scalar,
    /** Intra-AICore memory-transfer engine. */
    Mte1,
};

/** Coarse operator category (Table 1). */
enum class OpCategory
{
    /** Runs on the AICore; sensitive to core frequency by bottleneck. */
    Compute,
    /** Runs on the host-side AICPU; core-frequency insensitive. */
    Aicpu,
    /** Collective communication; core-frequency insensitive. */
    Communication,
    /** Scheduling gap (no work dispatched). */
    Idle,
};

/** Ground-truth execution parameters for one operator. */
struct HwOpParams
{
    OpCategory category = OpCategory::Compute;
    Scenario scenario = Scenario::PingPongIndependent;
    CorePipe core_pipe = CorePipe::Vector;

    /** Number of core computations, n in Eqs. 5-8 (>= 1). */
    int n = 1;
    /** Core cycles per computation, Cycle(core); frequency-invariant. */
    double core_cycles = 0.0;

    /** Bytes moved in per computation (one Ld). */
    double ld_volume_bytes = 0.0;
    /** L2 hit rate of the Ld traffic. */
    double ld_l2_hit = 0.5;
    /** Bytes moved out per computation (one St). */
    double st_volume_bytes = 0.0;
    /** L2 hit rate of the St traffic. */
    double st_l2_hit = 0.5;

    /** Fixed per-access memory overhead T0 in seconds (Eq. 3). */
    double t0_seconds = 0.0;

    /**
     * Frequency-independent dispatch/pre/post-processing time in
     * seconds, not attributable to any pipeline.  Dominates the tiny
     * operators the paper classifies as no-pipeline bound (Sect. 6.1).
     */
    double overhead_seconds = 0.0;

    /** Wall duration for non-Compute categories, in seconds. */
    double fixed_seconds = 0.0;

    /**
     * Payload of a Communication operator in bytes.  Single-device
     * simulation charges fixed_seconds; the cluster module instead
     * routes the operator through a collective rendezvous sized by
     * this payload.
     */
    double comm_bytes = 0.0;

    /**
     * AICore activity factor alpha (Eq. 11 load-dependent term);
     * watts per (Hz * V^2).  Zero while the AICore is idle.
     */
    double alpha_core = 0.0;
    /** Uncore activity in [0, 1], scaling uncore dynamic power. */
    double uncore_activity = 0.0;
};

} // namespace opdvfs::npu

#endif // OPDVFS_NPU_OP_PARAMS_H
