/**
 * @file
 * The assembled NPU: frequency domain, memory hierarchy, thermal and
 * power state, DVFS controller, and the operator execution engine.
 *
 * Operators run back-to-back on a compute stream; a separate SetFreq
 * stream carries frequency-adjustment operators (Sect. 7.1).  Energy is
 * integrated exactly over piecewise-constant power segments, with long
 * segments chunked so the RC thermal state, and hence the
 * temperature-dependent leakage, stays current.
 *
 * A mid-operator frequency change re-plans the in-flight operator: the
 * completed work fraction is preserved and the remainder re-timed at
 * the new frequency.
 */

#ifndef OPDVFS_NPU_NPU_CHIP_H
#define OPDVFS_NPU_NPU_CHIP_H

#include <cstdint>
#include <functional>
#include <memory>

#include "npu/aicore_timeline.h"
#include "npu/dvfs_controller.h"
#include "npu/fault_injector.h"
#include "npu/freq_table.h"
#include "npu/memory_system.h"
#include "npu/op_params.h"
#include "npu/power.h"
#include "npu/thermal.h"
#include "sim/simulator.h"
#include "sim/stream.h"

namespace opdvfs::npu {

/** Everything needed to instantiate a chip. */
struct NpuConfig
{
    FreqTableConfig freq;
    MemorySystemConfig memory;
    AicorePowerParams aicore_power;
    UncorePowerParams uncore_power;
    ThermalConfig thermal;
    /** Execution latency of one SetFreq operator (paper: 1 ms). */
    Tick set_freq_latency = kTicksPerMs;
    /** Initial core frequency. */
    double initial_mhz = 1800.0;
    /**
     * Uncore operating point in (0, 1]; scales L2/HBM bandwidth and
     * uncore dynamic power (Sect. 8.2 future-work scenario; the real
     * device is fixed at 1.0).
     */
    double uncore_scale = 1.0;
    /** Max energy-integration chunk, bounding thermal staleness. */
    Tick max_energy_segment = 2 * kTicksPerMs;
    /**
     * Platform misbehaviour to inject (all classes off by default, in
     * which case no injector is instantiated and execution is
     * bit-for-bit identical to a chip without this field).
     */
    FaultPlan faults;
};

/** Cumulative energy counters. */
struct EnergyCounters
{
    double aicore_joules = 0.0;
    double soc_joules = 0.0;
    /** Simulated span the counters cover. */
    Tick elapsed_ticks = 0;

    double aicoreAvgWatts() const;
    double socAvgWatts() const;
};

/** The simulated accelerator. */
class NpuChip
{
  public:
    /** Observer for operator lifetime; used by the profiler. */
    struct OpObserver
    {
        virtual ~OpObserver() = default;
        /** Fired when an operator starts executing. */
        virtual void opStarted(std::uint64_t op_id, Tick start) = 0;
        /**
         * Fired on completion.  @p f_mhz_at_end is the core frequency
         * when the operator retired.
         */
        virtual void opFinished(std::uint64_t op_id, Tick start, Tick end,
                                double f_mhz_at_end) = 0;
    };

    NpuChip(sim::Simulator &simulator, const NpuConfig &config = {});

    /**
     * Queue an operator for execution on the compute stream.
     * @p op_id is an opaque tag handed back to the observer.
     */
    void enqueueOp(const HwOpParams &params, std::uint64_t op_id);

    /** Install the (single) op observer; may be null. */
    void setObserver(OpObserver *observer) { observer_ = observer; }

    /**
     * Queue a SetFreq operator on the SetFreq stream: occupies the
     * stream for the configured latency (plus any injected jitter),
     * then switches the core frequency — unless the fault injector
     * drops the command, in which case the stream time is consumed but
     * the frequency is left unchanged.  Mirrors the CANN SetFreq
     * operator (Sect. 7.1).  Finite out-of-table targets snap to the
     * nearest supported point; non-finite targets throw.
     */
    void enqueueSetFreq(double mhz);

    // --- component access -------------------------------------------------

    sim::Simulator &simulator() { return simulator_; }
    const FreqTable &freqTable() const { return freq_table_; }
    const MemorySystem &memorySystem() const { return memory_; }
    DvfsController &dvfs() { return dvfs_; }
    const DvfsController &dvfs() const { return dvfs_; }
    sim::Stream &computeStream() { return compute_stream_; }
    sim::Stream &setFreqStream() { return set_freq_stream_; }
    const NpuConfig &config() const { return config_; }

    /** Active fault injector, or nullptr when no fault is configured. */
    FaultInjector *faultInjector() { return fault_injector_.get(); }
    const FaultInjector *faultInjector() const
    {
        return fault_injector_.get();
    }

    /**
     * Reset the DVFS governor: clears a (possibly latched) firmware
     * throttle and restores the last requested frequency.  A genuinely
     * hot die re-trips on the next accounting step; a spurious or
     * latched clamp stays cleared.  This is the repair lever the
     * runtime guard pulls when a throttled device violates its
     * performance envelope.
     */
    void resetThrottleGovernor();

    // --- telemetry (ground truth; samplers add noise) ---------------------

    /** Instantaneous AICore power right now. */
    double instantAicorePower() const;
    /** Instantaneous SoC power right now. */
    double instantSocPower() const;
    /** Die temperature right now. */
    double temperature() const;

    /**
     * Bring energy/thermal accounting up to the present.  Telemetry
     * samplers call this before reading instantaneous values.
     */
    void syncAccounting();

    /** Cumulative energy since the last reset. */
    const EnergyCounters &energy() const { return energy_; }

    /**
     * Energy snapshot taken when the most recent operator retired.
     * Lets measurement windows end exactly at the last operator even
     * if telemetry events extend the simulation afterwards.
     */
    const EnergyCounters &energyAtLastRetire() const
    {
        return energy_at_last_retire_;
    }

    /** Zero the energy counters (keeps thermal state). */
    void resetEnergy();

    /** True when both streams are drained. */
    bool idle() const;

  private:
    struct OpExecution;

    /** Current power-relevant state. */
    PowerState powerState() const;

    /** Integrate energy from the last accrual point to now. */
    void accrueEnergy();

    /** Integrate up to now while pricing the segment at @p f_mhz. */
    void accrueAtFrequency(double f_mhz);

    /** (Re-)schedule completion of the in-flight operator. */
    void planInFlight();

    /** Re-plan the in-flight operator after a frequency change. */
    void replanInFlight(double new_mhz);

    /** Let the firmware throttle react to the current die temperature. */
    void maybeUpdateThrottle();

    sim::Simulator &simulator_;
    NpuConfig config_;
    FreqTable freq_table_;
    MemorySystem memory_;
    PowerCalculator power_;
    ThermalModel thermal_;
    DvfsController dvfs_;
    sim::Stream compute_stream_;
    sim::Stream set_freq_stream_;

    OpObserver *observer_ = nullptr;

    /** Present only when the config enables at least one fault class. */
    std::unique_ptr<FaultInjector> fault_injector_;
    /** Re-entrancy guard for throttle-induced frequency changes. */
    bool throttle_updating_ = false;

    /** Execution state of the op occupying the compute stream. */
    std::shared_ptr<OpExecution> in_flight_;

    Tick last_accrual_ = 0;
    EnergyCounters energy_;
    EnergyCounters energy_at_last_retire_;
};

} // namespace opdvfs::npu

#endif // OPDVFS_NPU_NPU_CHIP_H
