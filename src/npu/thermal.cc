#include "npu/thermal.h"

#include <cmath>
#include <stdexcept>

namespace opdvfs::npu {

ThermalModel::ThermalModel(const ThermalConfig &config)
    : config_(config), temperature_(config.ambient_celsius),
      peak_celsius_(config.ambient_celsius)
{
    if (config.k_per_watt < 0.0 || config.time_constant_s <= 0.0)
        throw std::invalid_argument("ThermalModel: invalid configuration");
}

double
ThermalModel::equilibrium(double p_soc_watts) const
{
    return config_.ambient_celsius + ambient_offset_
        + config_.k_per_watt * p_soc_watts;
}

void
ThermalModel::advance(double dt_s, double p_soc_watts)
{
    if (dt_s < 0.0)
        throw std::invalid_argument("ThermalModel: negative time step");
    double blend = 1.0 - std::exp(-dt_s / config_.time_constant_s);
    temperature_ += (equilibrium(p_soc_watts) - temperature_) * blend;
    if (temperature_ > peak_celsius_)
        peak_celsius_ = temperature_;
}

double
ThermalModel::deltaT() const
{
    return temperature_ - config_.ambient_celsius;
}

void
ThermalModel::reset()
{
    temperature_ = config_.ambient_celsius;
    peak_celsius_ = config_.ambient_celsius;
}

} // namespace opdvfs::npu
