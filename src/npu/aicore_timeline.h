/**
 * @file
 * The AICore execution-timeline model: exact cycle counts for the four
 * scenarios of paper Sect. 4.2 (Eqs. 5-8), their symbolic convex
 * piecewise-linear form, and the resulting pipeline-utilisation ratios
 * the PMU reports.
 */

#ifndef OPDVFS_NPU_AICORE_TIMELINE_H
#define OPDVFS_NPU_AICORE_TIMELINE_H

#include "math/piecewise_linear.h"
#include "npu/memory_system.h"
#include "npu/op_params.h"

namespace opdvfs::npu {

/**
 * Busy-time fractions per pipeline over an operator's execution.
 * Core-domain pipes may overlap uncore transfers (PingPong), so the
 * sum may exceed 1; conversely stalls can push the sum below 1.
 */
struct PipelineRatios
{
    double cube = 0.0;
    double vector = 0.0;
    double scalar = 0.0;
    double mte1 = 0.0;
    /** Move-in (Ld) pipe; uncore domain. */
    double mte2 = 0.0;
    /** Move-out (St) pipe; uncore domain. */
    double mte3 = 0.0;

    double sum() const
    {
        return cube + vector + scalar + mte1 + mte2 + mte3;
    }
    double
    maxRatio() const;
};

/** Per-scenario timeline evaluation for one operator. */
class AicoreTimeline
{
  public:
    AicoreTimeline(const HwOpParams &params, const MemorySystem &memory);

    /**
     * Exact core-domain cycle count of the operator at @p f_mhz
     * (Eqs. 5-8).  Only meaningful for Compute operators.
     */
    double cycles(double f_mhz) const;

    /** Wall-clock duration at @p f_mhz; fixed for non-Compute ops. */
    double seconds(double f_mhz) const;

    /**
     * Symbolic Cycle(f) as a convex PWL function of frequency in Hz.
     * Demonstrates the paper's central analytic claim; also used for
     * breakpoint analysis in benches and tests.
     */
    math::ConvexPwl cyclePwl() const;

    /** Ground-truth PMU pipeline ratios at @p f_mhz. */
    PipelineRatios ratios(double f_mhz) const;

    /** Cycles of one Ld transfer at @p f_mhz, incl. T0 (Eq. 4). */
    double ldCycles(double f_mhz) const;

    /** Cycles of one St transfer at @p f_mhz, incl. T0 (Eq. 4). */
    double stCycles(double f_mhz) const;

  private:
    double cyclesScenario(double f_hz) const;
    math::ConvexPwl cyclePwlScenario() const;

    HwOpParams params_;
    LdStCycleCoefficients ld_;
    LdStCycleCoefficients st_;
};

} // namespace opdvfs::npu

#endif // OPDVFS_NPU_AICORE_TIMELINE_H
