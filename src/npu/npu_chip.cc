#include "npu/npu_chip.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace opdvfs::npu {

double
EnergyCounters::aicoreAvgWatts() const
{
    double s = ticksToSeconds(elapsed_ticks);
    return s > 0.0 ? aicore_joules / s : 0.0;
}

double
EnergyCounters::socAvgWatts() const
{
    double s = ticksToSeconds(elapsed_ticks);
    return s > 0.0 ? soc_joules / s : 0.0;
}

/** Mutable execution state of one in-flight operator. */
struct NpuChip::OpExecution
{
    HwOpParams params;
    AicoreTimeline timeline;
    std::uint64_t op_id = 0;
    Tick start_tick = 0;
    /** Fraction of the operator's work still outstanding, in [0, 1]. */
    double work_remaining = 1.0;
    Tick plan_start = 0;
    Tick plan_duration = 0;
    /** Bumped on re-plan; stale completion events check it. */
    std::uint64_t epoch = 0;
    /** Duration at the top frequency; anchors uncore-activity scaling. */
    double reference_seconds = 0.0;
    std::function<void()> done;

    OpExecution(const HwOpParams &p, const MemorySystem &memory,
                std::uint64_t id, double reference_mhz)
        : params(p),
          timeline(p, memory),
          op_id(id),
          reference_seconds(timeline.seconds(reference_mhz))
    {}
};

namespace {

/** Apply the chip-level uncore operating point to the memory config. */
MemorySystemConfig
scaledMemory(const NpuConfig &config)
{
    MemorySystemConfig memory = config.memory;
    memory.bandwidth_scale *= config.uncore_scale;
    return memory;
}

} // namespace

NpuChip::NpuChip(sim::Simulator &simulator, const NpuConfig &config)
    : simulator_(simulator),
      config_(config),
      freq_table_(config.freq),
      memory_(scaledMemory(config)),
      power_(config.aicore_power, config.uncore_power),
      thermal_(config.thermal),
      dvfs_(simulator, freq_table_, config.initial_mhz),
      compute_stream_(simulator, "compute"),
      set_freq_stream_(simulator, "setfreq")
{
    if (config_.max_energy_segment <= 0)
        throw std::invalid_argument("NpuChip: invalid energy segment");

    if (config_.faults.anyEnabled())
        fault_injector_ = std::make_unique<FaultInjector>(config_.faults);

    dvfs_.onChange([this](double old_mhz, double new_mhz) {
        // Close the accounting segment at the *old* operating point,
        // then re-time whatever is in flight.
        accrueAtFrequency(old_mhz);
        replanInFlight(new_mhz);
    });
}

void
NpuChip::enqueueOp(const HwOpParams &params, std::uint64_t op_id)
{
    compute_stream_.enqueue(
        [this, params, op_id](std::function<void()> done) {
            accrueEnergy();
            auto exec = std::make_shared<OpExecution>(
                params, memory_, op_id, freq_table_.maxMhz());
            exec->start_tick = simulator_.now();
            exec->done = std::move(done);
            in_flight_ = exec;
            if (observer_)
                observer_->opStarted(op_id, exec->start_tick);
            planInFlight();
        });
}

void
NpuChip::planInFlight()
{
    auto exec = in_flight_;
    double seconds =
        exec->work_remaining * exec->timeline.seconds(dvfs_.currentMhz());
    // Silicon aging slows every operator by the same factor; the level
    // at plan time is a good approximation because the drift ramp is
    // orders of magnitude slower than one operator.
    if (fault_injector_)
        seconds *= fault_injector_->latencyScale(simulator_.now());
    Tick duration = secondsToTicks(std::max(seconds, 0.0));
    exec->plan_start = simulator_.now();
    exec->plan_duration = duration;
    std::uint64_t epoch = exec->epoch;

    simulator_.scheduleIn(duration, [this, exec, epoch] {
        if (exec->epoch != epoch)
            return; // Re-planned after a frequency change.
        accrueEnergy();
        if (exec->epoch != epoch) {
            // The accrual tripped (or released) the firmware throttle,
            // and the resulting frequency change re-planned this very
            // operator; the re-planned completion event owns it now.
            return;
        }
        energy_at_last_retire_ = energy_;
        in_flight_.reset();
        if (observer_) {
            observer_->opFinished(exec->op_id, exec->start_tick,
                                  simulator_.now(), dvfs_.currentMhz());
        }
        exec->done();
    });
}

void
NpuChip::replanInFlight(double /* new_mhz */)
{
    if (!in_flight_)
        return;
    auto exec = in_flight_;
    if (exec->plan_duration > 0) {
        double elapsed = static_cast<double>(simulator_.now()
                                             - exec->plan_start);
        double frac = std::clamp(
            elapsed / static_cast<double>(exec->plan_duration), 0.0, 1.0);
        exec->work_remaining *= 1.0 - frac;
    }
    ++exec->epoch;
    planInFlight();
}

void
NpuChip::enqueueSetFreq(double mhz)
{
    if (!std::isfinite(mhz))
        throw std::invalid_argument("NpuChip: non-finite SetFreq target");
    mhz = freq_table_.snap(mhz);
    set_freq_stream_.enqueue([this, mhz](std::function<void()> done) {
        Tick latency = config_.set_freq_latency;
        bool dropped = false;
        if (fault_injector_) {
            latency += fault_injector_->setFreqExtraLatency();
            dropped = fault_injector_->dropSetFreq();
        }
        simulator_.scheduleIn(latency,
                              [this, mhz, dropped, done = std::move(done)] {
                                  // A dropped command consumed the
                                  // stream time but never reached the
                                  // frequency domain.
                                  if (!dropped)
                                      dvfs_.apply(mhz);
                                  done();
                              });
    });
}

void
NpuChip::resetThrottleGovernor()
{
    if (fault_injector_)
        fault_injector_->forceRelease();
    dvfs_.clearThrottleCeiling();
}

void
NpuChip::maybeUpdateThrottle()
{
    if (!fault_injector_ || throttle_updating_)
        return;
    throttle_updating_ = true;
    ThrottleAction action = fault_injector_->updateThrottle(
        simulator_.now(), thermal_.temperature());
    if (action == ThrottleAction::Trip)
        dvfs_.setThrottleCeiling(config_.faults.throttle_mhz);
    else if (action == ThrottleAction::Release)
        dvfs_.clearThrottleCeiling();
    throttle_updating_ = false;
}

PowerState
NpuChip::powerState() const
{
    PowerState state;
    state.f_mhz = dvfs_.currentMhz();
    state.volts = dvfs_.currentVolts();
    state.uncore_scale = config_.uncore_scale;
    state.delta_t = thermal_.deltaT();
    if (fault_injector_) {
        state.aging_scale =
            fault_injector_->agingDynamicScale(simulator_.now());
    }
    if (in_flight_) {
        state.alpha_core = in_flight_->params.alpha_core;
        state.uncore_activity = in_flight_->params.uncore_activity;
        // Uncore activity tracks the achieved transfer rate: when the
        // core slows, the operator moves the same bytes over a longer
        // window, so instantaneous uncore utilisation drops
        // proportionally.
        if (in_flight_->params.category == OpCategory::Compute
            && in_flight_->reference_seconds > 0.0) {
            double now_seconds =
                in_flight_->timeline.seconds(state.f_mhz);
            if (now_seconds > 0.0) {
                state.uncore_activity *=
                    in_flight_->reference_seconds / now_seconds;
                state.uncore_activity =
                    std::min(state.uncore_activity, 1.0);
            }
        }
    }
    return state;
}

double
NpuChip::instantAicorePower() const
{
    return power_.aicorePower(powerState());
}

double
NpuChip::instantSocPower() const
{
    return power_.socPower(powerState());
}

double
NpuChip::temperature() const
{
    return thermal_.temperature();
}

void
NpuChip::syncAccounting()
{
    accrueEnergy();
}

void
NpuChip::accrueEnergy()
{
    accrueAtFrequency(dvfs_.currentMhz());
}

void
NpuChip::accrueAtFrequency(double f_mhz)
{
    Tick now = simulator_.now();
    if (fault_injector_) {
        thermal_.setAmbientOffset(
            fault_injector_->ambientOffsetCelsius(now));
    }
    while (last_accrual_ < now) {
        Tick seg_end =
            std::min(now, last_accrual_ + config_.max_energy_segment);
        double dt = ticksToSeconds(seg_end - last_accrual_);

        PowerState state = powerState();
        state.f_mhz = f_mhz;
        state.volts = freq_table_.voltageFor(f_mhz);
        state.delta_t = thermal_.deltaT();

        double p_core = power_.aicorePower(state);
        double p_soc = power_.socPower(state);
        energy_.aicore_joules += p_core * dt;
        energy_.soc_joules += p_soc * dt;
        energy_.elapsed_ticks += seg_end - last_accrual_;

        thermal_.advance(dt, p_soc);
        last_accrual_ = seg_end;
    }
    maybeUpdateThrottle();
}

void
NpuChip::resetEnergy()
{
    syncAccounting();
    energy_ = EnergyCounters{};
    energy_at_last_retire_ = EnergyCounters{};
}

bool
NpuChip::idle() const
{
    return compute_stream_.idle() && set_freq_stream_.idle();
}

} // namespace opdvfs::npu
