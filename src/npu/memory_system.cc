#include "npu/memory_system.h"

#include <algorithm>
#include <stdexcept>

#include "common/units.h"

namespace opdvfs::npu {

MemorySystem::MemorySystem(const MemorySystemConfig &config) : config_(config)
{
    if (config.core_num == 0 || config.bytes_per_cycle_per_core <= 0.0
        || config.l2_bandwidth <= 0.0 || config.hbm_bandwidth <= 0.0
        || config.bandwidth_scale <= 0.0 || config.bandwidth_scale > 1.0) {
        throw std::invalid_argument("MemorySystem: invalid configuration");
    }
}

double
MemorySystem::uncoreBandwidth(double l2_hit_rate) const
{
    double hit = std::clamp(l2_hit_rate, 0.0, 1.0);
    return config_.bandwidth_scale
        * (hit * config_.l2_bandwidth
           + (1.0 - hit) * config_.hbm_bandwidth);
}

double
MemorySystem::throughput(double f_mhz, double l2_hit_rate) const
{
    double core_side = config_.bytes_per_cycle_per_core * mhzToHz(f_mhz)
        * static_cast<double>(config_.core_num);
    return std::min(core_side, uncoreBandwidth(l2_hit_rate));
}

double
MemorySystem::saturationMhz(double l2_hit_rate) const
{
    double per_cycle = config_.bytes_per_cycle_per_core
        * static_cast<double>(config_.core_num);
    return uncoreBandwidth(l2_hit_rate) / per_cycle / 1e6;
}

LdStCycleCoefficients
MemorySystem::ldStCoefficients(double volume_bytes, double l2_hit_rate) const
{
    if (volume_bytes < 0.0)
        throw std::invalid_argument("MemorySystem: negative volume");
    if (volume_bytes == 0.0)
        return {};

    LdStCycleCoefficients coeff;
    coeff.slope_per_hz = volume_bytes / uncoreBandwidth(l2_hit_rate);
    coeff.floor_cycles = volume_bytes
        / (config_.bytes_per_cycle_per_core
           * static_cast<double>(config_.core_num));
    return coeff;
}

} // namespace opdvfs::npu
