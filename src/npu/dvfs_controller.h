/**
 * @file
 * Core-domain frequency controller.
 *
 * Tracks the AICore frequency domain's operating point, snaps requests
 * to the supported table, applies the firmware's automatic voltage
 * adaptation (Sect. 5.1), and notifies listeners (the execution engine
 * re-plans in-flight operators; the energy integrator closes the
 * current accounting segment).
 *
 * The controller also models the firmware's thermal-protection clamp:
 * while a throttle ceiling is set, requests above it are granted only
 * up to the ceiling, and the last requested frequency is restored when
 * the ceiling clears.  Throttle transitions notify their own listener
 * set so runtime guards can observe firmware interventions.
 */

#ifndef OPDVFS_NPU_DVFS_CONTROLLER_H
#define OPDVFS_NPU_DVFS_CONTROLLER_H

#include <cstdint>
#include <functional>
#include <vector>

#include "npu/freq_table.h"
#include "sim/simulator.h"

namespace opdvfs::npu {

/** Owns the core-domain operating point. */
class DvfsController
{
  public:
    /** Listener signature: (old_mhz, new_mhz). */
    using Listener = std::function<void(double, double)>;

    /** Throttle listener signature: (active, ceiling_mhz). */
    using ThrottleListener = std::function<void(bool, double)>;

    DvfsController(sim::Simulator &simulator, const FreqTable &table,
                   double initial_mhz);

    /** Current core frequency in MHz. */
    double currentMhz() const { return current_mhz_; }

    /** Firmware voltage for the current frequency. */
    double currentVolts() const { return table_.voltageFor(current_mhz_); }

    /**
     * Change the frequency immediately.  Finite out-of-table requests
     * degrade gracefully: they snap to the nearest supported point and
     * still count as a SetFreq.  Non-finite requests throw.  While a
     * throttle ceiling is active the granted frequency is capped at
     * the ceiling; the request is remembered and restored on release.
     */
    void apply(double mhz);

    /** Schedule apply(@p mhz) after @p delay ticks. */
    void applyAfter(Tick delay, double mhz);

    /** Register a change listener (fires on every actual change). */
    void onChange(Listener listener);

    /** Register a throttle listener (fires on clamp set/clear). */
    void onThrottle(ThrottleListener listener);

    /** Number of apply() calls executed (SetFreq count). */
    std::uint64_t setFreqCount() const { return set_freq_count_; }

    /** Last frequency requested via apply() (pre-clamp, post-snap). */
    double requestedMhz() const { return requested_mhz_; }

    // --- firmware thermal-protection clamp --------------------------------

    /**
     * Engage the throttle: cap the operating point at @p mhz (snapped
     * to the table).  A current frequency above the ceiling is clamped
     * immediately; the clamp does not count as a SetFreq.
     */
    void setThrottleCeiling(double mhz);

    /** Release the throttle and restore the last requested frequency. */
    void clearThrottleCeiling();

    /** True while a throttle ceiling is engaged. */
    bool throttled() const { return throttle_ceiling_ > 0.0; }

    /** Active ceiling in MHz (0 when not throttled). */
    double throttleCeilingMhz() const { return throttle_ceiling_; }

    /** Number of throttle engage events. */
    std::uint64_t throttleEvents() const { return throttle_events_; }

    const FreqTable &table() const { return table_; }

  private:
    /** Switch the operating point and notify change listeners. */
    void setFrequency(double mhz);

    /** Requested frequency, capped by the ceiling when throttled. */
    double grantedMhz() const;

    sim::Simulator &simulator_;
    const FreqTable &table_;
    double current_mhz_;
    double requested_mhz_;
    double throttle_ceiling_ = 0.0;
    std::uint64_t set_freq_count_ = 0;
    std::uint64_t throttle_events_ = 0;
    std::vector<Listener> listeners_;
    std::vector<ThrottleListener> throttle_listeners_;
};

} // namespace opdvfs::npu

#endif // OPDVFS_NPU_DVFS_CONTROLLER_H
