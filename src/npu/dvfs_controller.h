/**
 * @file
 * Core-domain frequency controller.
 *
 * Tracks the AICore frequency domain's operating point, snaps requests
 * to the supported table, applies the firmware's automatic voltage
 * adaptation (Sect. 5.1), and notifies listeners (the execution engine
 * re-plans in-flight operators; the energy integrator closes the
 * current accounting segment).
 */

#ifndef OPDVFS_NPU_DVFS_CONTROLLER_H
#define OPDVFS_NPU_DVFS_CONTROLLER_H

#include <cstdint>
#include <functional>
#include <vector>

#include "npu/freq_table.h"
#include "sim/simulator.h"

namespace opdvfs::npu {

/** Owns the core-domain operating point. */
class DvfsController
{
  public:
    /** Listener signature: (old_mhz, new_mhz). */
    using Listener = std::function<void(double, double)>;

    DvfsController(sim::Simulator &simulator, const FreqTable &table,
                   double initial_mhz);

    /** Current core frequency in MHz. */
    double currentMhz() const { return current_mhz_; }

    /** Firmware voltage for the current frequency. */
    double currentVolts() const { return table_.voltageFor(current_mhz_); }

    /**
     * Change the frequency immediately.  Unsupported values throw.
     * No-op changes (same frequency) still count as a SetFreq.
     */
    void apply(double mhz);

    /** Schedule apply(@p mhz) after @p delay ticks. */
    void applyAfter(Tick delay, double mhz);

    /** Register a change listener (fires on every actual change). */
    void onChange(Listener listener);

    /** Number of apply() calls executed (SetFreq count). */
    std::uint64_t setFreqCount() const { return set_freq_count_; }

    const FreqTable &table() const { return table_; }

  private:
    sim::Simulator &simulator_;
    const FreqTable &table_;
    double current_mhz_;
    std::uint64_t set_freq_count_ = 0;
    std::vector<Listener> listeners_;
};

} // namespace opdvfs::npu

#endif // OPDVFS_NPU_DVFS_CONTROLLER_H
