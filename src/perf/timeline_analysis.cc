#include "perf/timeline_analysis.h"

#include <stdexcept>

#include "common/units.h"
#include "npu/aicore_timeline.h"

namespace opdvfs::perf {

TimelineAnalysis
analyzeTimeline(const npu::HwOpParams &params,
                const npu::MemorySystem &memory, double lo_mhz,
                double hi_mhz)
{
    if (lo_mhz <= 0.0 || hi_mhz <= lo_mhz)
        throw std::invalid_argument("analyzeTimeline: bad range");

    npu::AicoreTimeline timeline(params, memory);

    TimelineAnalysis analysis;
    analysis.cycle_pwl = timeline.cyclePwl();

    double lo_hz = mhzToHz(lo_mhz);
    double hi_hz = mhzToHz(hi_mhz);
    for (double hz : analysis.cycle_pwl.breakpoints(lo_hz, hi_hz))
        analysis.breakpoints_mhz.push_back(hz / 1e6);
    analysis.segments = analysis.breakpoints_mhz.size() + 1;
    analysis.low_slope = analysis.cycle_pwl.slopeAt(lo_hz);
    analysis.high_slope = analysis.cycle_pwl.slopeAt(hi_hz);
    return analysis;
}

} // namespace opdvfs::perf
