/**
 * @file
 * The three candidate fitting functions of paper Sect. 4.3 for the
 * operator time-vs-frequency relation:
 *
 *   Func. 1:  T(f) = (a f^2 + b f + c) / f      (full quadratic)
 *   Func. 2:  T(f) = (a f^2 + c) / f            (no linear term)
 *   Func. 3:  T(f) = (a e^{b f} + c) / f        (exponential)
 *
 * All three keep T(f) = Cycle(f) / f with Cycle(f) convex, as the
 * timeline analysis requires.  Func. 2 admits a closed-form solve from
 * two points (and a linear least-squares solve from more), which is
 * why the paper selects it: comparable accuracy to Func. 1 at a small
 * fraction of the fitting cost.  Func. 1 and Func. 3 are fitted with
 * Levenberg-Marquardt (the scipy.curve_fit stand-in); Func. 3's
 * exponent is clamped to [0, 10] exactly as the paper does to avoid
 * overflow.
 */

#ifndef OPDVFS_PERF_FIT_FUNCTIONS_H
#define OPDVFS_PERF_FIT_FUNCTIONS_H

#include <string>
#include <vector>

namespace opdvfs::perf {

/** Candidate model families. */
enum class FitFunction
{
    /** Func. 1: (a f^2 + b f + c) / f. */
    FullQuadOverF,
    /** Func. 2: (a f^2 + c) / f - the paper's production choice. */
    QuadOverF,
    /** Func. 3: (a e^{bf} + c) / f. */
    ExpOverF,
    /**
     * Baseline (CRISP-like, Ref. [28] of the paper): assumes the
     * memory-stall portion of execution time is *independent* of core
     * frequency: T(f) = (b f + c) / f = b + c/f.  The paper's Sect. 4.1
     * argues this misses the Ld/St frequency dependence; comparing its
     * accuracy against Func. 1/2 quantifies that claim.
     */
    StallOverF,
    /**
     * Direct piecewise-linear interpolation of Cycle(f) = T(f) * f
     * through the profiled points, end segments extrapolated.  The
     * paper notes this as the alternative to fitting ("...or directly
     * derive piecewise linear functions", Sect. 4.3); it reproduces
     * the flat region of uncore-saturated operators exactly, which
     * smooth fits blur around the kink.
     */
    PwlCycles,
};

/** Human-readable name (matches the paper's legend). */
std::string fitFunctionName(FitFunction kind);

/** Number of free parameters of the family. */
int fitFunctionParams(FitFunction kind);

/** A fitted time-vs-frequency model for one operator. */
struct FittedCurve
{
    FitFunction kind = FitFunction::QuadOverF;
    /** Parameters over f in GHz (for conditioning). */
    std::vector<double> params;

    /** Predicted execution time in seconds at @p f_mhz. */
    double predictSeconds(double f_mhz) const;
};

/**
 * Fit the family to (frequency, time) samples.
 *
 * Func. 2 uses the closed-form/linear-LS solve; the others run LM.
 * Requires at least as many samples as parameters.
 *
 * @param f_mhz      sample frequencies in MHz
 * @param seconds    measured execution times
 */
FittedCurve fitCurve(FitFunction kind, const std::vector<double> &f_mhz,
                     const std::vector<double> &seconds);

} // namespace opdvfs::perf

#endif // OPDVFS_PERF_FIT_FUNCTIONS_H
