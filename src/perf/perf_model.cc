#include "perf/perf_model.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "common/statistics.h"

namespace opdvfs::perf {

double
OpPerfModel::predictSeconds(double f_mhz) const
{
    if (!frequency_sensitive)
        return scale * fixed_seconds;
    return scale * curve.predictSeconds(f_mhz);
}

void
PerfModelRepository::addProfile(double f_mhz,
                                const std::vector<trace::OpRecord> &records)
{
    for (const auto &record : records) {
        ProfileData &data = profiles_[record.op_id];
        data.type = record.type;
        data.category = record.category;
        data.durations[f_mhz] = record.duration_s;
    }
}

void
PerfModelRepository::fitAll(const PerfBuildOptions &options)
{
    models_.clear();
    for (const auto &[op_id, data] : profiles_) {
        OpPerfModel model;
        model.op_id = op_id;
        model.type = data.type;
        model.category = data.category;

        if (data.durations.empty())
            continue;

        if (data.category != npu::OpCategory::Compute) {
            // Table 1: AICPU/communication/idle operators are AICore
            // frequency insensitive.
            model.frequency_sensitive = false;
            std::vector<double> durations;
            for (const auto &[f, d] : data.durations)
                durations.push_back(d);
            model.fixed_seconds = stats::mean(durations);
            model.tiny = model.fixed_seconds < options.tiny_threshold_s;
            models_.emplace(op_id, std::move(model));
            continue;
        }

        // Select fitting points.
        std::vector<double> fs, ts;
        if (options.fit_frequencies_mhz.empty()) {
            for (const auto &[f, d] : data.durations) {
                fs.push_back(f);
                ts.push_back(d);
            }
        } else {
            for (double f : options.fit_frequencies_mhz) {
                auto it = data.durations.find(f);
                if (it == data.durations.end()) {
                    throw std::invalid_argument(
                        "fitAll: requested fit frequency was not profiled");
                }
                fs.push_back(f);
                ts.push_back(it->second);
            }
        }
        if (static_cast<int>(fs.size()) < fitFunctionParams(options.kind)) {
            throw std::invalid_argument(
                "fitAll: not enough profiled frequencies for the family");
        }

        model.curve = fitCurve(options.kind, fs, ts);
        model.tiny =
            data.durations.rbegin()->second < options.tiny_threshold_s;
        models_.emplace(op_id, std::move(model));
    }
}

const OpPerfModel *
PerfModelRepository::find(std::uint64_t op_id) const
{
    auto it = models_.find(op_id);
    return it == models_.end() ? nullptr : &it->second;
}

double
PerfModelRepository::predictSeconds(std::uint64_t op_id, double f_mhz) const
{
    const OpPerfModel *model = find(op_id);
    if (!model)
        throw std::invalid_argument("predictSeconds: unknown operator");
    return model->predictSeconds(f_mhz);
}

void
PerfModelRepository::scaleDurations(
    const std::unordered_map<std::string, double> &scale_by_type,
    double fallback_scale)
{
    auto check = [](double scale) {
        if (!std::isfinite(scale) || scale <= 0.0)
            throw std::invalid_argument(
                "scaleDurations: scales must be positive");
    };
    check(fallback_scale);
    for (const auto &[type, scale] : scale_by_type)
        check(scale);
    for (auto &[id, model] : models_) {
        auto it = scale_by_type.find(model.type);
        model.scale =
            it == scale_by_type.end() ? fallback_scale : it->second;
    }
}

std::size_t
PerfModelRepository::evaluableModelCount() const
{
    std::size_t count = 0;
    for (const auto &[id, model] : models_) {
        if (model.frequency_sensitive && !model.tiny)
            ++count;
    }
    return count;
}

std::vector<double>
PerfModelRepository::profiledFrequencies() const
{
    std::set<double> fs;
    for (const auto &[id, data] : profiles_) {
        for (const auto &[f, d] : data.durations)
            fs.insert(f);
    }
    return {fs.begin(), fs.end()};
}

std::vector<PerfError>
PerfModelRepository::evaluate(
    double f_mhz, const std::vector<trace::OpRecord> &records) const
{
    std::vector<PerfError> errors;
    errors.reserve(records.size());
    for (const auto &record : records) {
        const OpPerfModel *model = find(record.op_id);
        if (!model || !model->frequency_sensitive || model->tiny)
            continue;
        if (record.duration_s <= 0.0)
            continue;

        PerfError error;
        error.op_id = record.op_id;
        error.f_mhz = f_mhz;
        error.predicted_s = model->predictSeconds(f_mhz);
        error.measured_s = record.duration_s;
        error.relative_error =
            std::abs(error.predicted_s - error.measured_s)
            / error.measured_s;
        errors.push_back(error);
    }
    return errors;
}

} // namespace opdvfs::perf
