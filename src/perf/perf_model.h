/**
 * @file
 * The per-operator DVFS performance model (paper Sect. 4.3, 7.2).
 *
 * Built purely from profiled records collected at a small number of
 * frequency points (one workload run per frequency suffices), it
 * predicts each operator's execution time at any supported frequency.
 * AICore-frequency-insensitive operators (AICPU, communication, idle;
 * Table 1) are modelled as constant-duration.
 */

#ifndef OPDVFS_PERF_PERF_MODEL_H
#define OPDVFS_PERF_PERF_MODEL_H

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "perf/fit_functions.h"
#include "trace/profiler.h"

namespace opdvfs::perf {

/** The fitted model of one operator. */
struct OpPerfModel
{
    std::uint64_t op_id = 0;
    std::string type;
    npu::OpCategory category = npu::OpCategory::Compute;
    /** Compute operators follow the fitted curve; others are fixed. */
    bool frequency_sensitive = true;
    FittedCurve curve;
    /** Mean measured duration for insensitive operators. */
    double fixed_seconds = 0.0;
    /**
     * True if the operator ran under the 20 us threshold; excluded
     * from error statistics (Sect. 7.2) but still usable.
     */
    bool tiny = false;
    /**
     * Multiplicative recalibration factor on the predicted duration.
     * 1.0 for a freshly fitted model; the drift recalibrator moves it
     * when the silicon slows down relative to the original fit.
     */
    double scale = 1.0;

    /** Predicted duration at @p f_mhz, seconds. */
    double predictSeconds(double f_mhz) const;
};

/** Controls model construction. */
struct PerfBuildOptions
{
    FitFunction kind = FitFunction::QuadOverF;
    /** Ops faster than this at the highest profiled frequency are
     * flagged tiny. */
    double tiny_threshold_s = 20e-6;
    /**
     * Frequencies used for fitting; empty means all profiled
     * frequencies.  The paper fits on two to three points and
     * validates on the rest.
     */
    std::vector<double> fit_frequencies_mhz;
};

/** Per-operator prediction error (for Fig. 15 / Fig. 16). */
struct PerfError
{
    std::uint64_t op_id = 0;
    double f_mhz = 0.0;
    double predicted_s = 0.0;
    double measured_s = 0.0;
    /** |pred - meas| / meas. */
    double relative_error = 0.0;
};

/** Builds and stores the per-operator models of one workload. */
class PerfModelRepository
{
  public:
    /** Ingest one profiled run at frequency @p f_mhz. */
    void addProfile(double f_mhz, const std::vector<trace::OpRecord> &records);

    /** Fit models for every profiled operator. */
    void fitAll(const PerfBuildOptions &options = {});

    /** Model for @p op_id, or nullptr if unknown. */
    const OpPerfModel *find(std::uint64_t op_id) const;

    /** Predicted duration; throws for unknown operators. */
    double predictSeconds(std::uint64_t op_id, double f_mhz) const;

    /**
     * Set every model's duration scale (absolute, not cumulative):
     * ops whose type appears in @p scale_by_type get that factor, the
     * rest get @p fallback_scale.  Used by the drift recalibrator to
     * apply aging corrections without refitting the curves.
     */
    void
    scaleDurations(const std::unordered_map<std::string, double>
                       &scale_by_type,
                   double fallback_scale);

    /** Number of fitted models. */
    std::size_t modelCount() const { return models_.size(); }

    /** Number of non-tiny sensitive models (the Sect. 7.2 population). */
    std::size_t evaluableModelCount() const;

    /** Profiled frequencies, ascending. */
    std::vector<double> profiledFrequencies() const;

    /**
     * Out-of-sample validation: predict each non-tiny sensitive
     * operator at @p f_mhz and compare with the given records.
     */
    std::vector<PerfError>
    evaluate(double f_mhz, const std::vector<trace::OpRecord> &records) const;

    const std::unordered_map<std::uint64_t, OpPerfModel> &models() const
    {
        return models_;
    }

  private:
    struct ProfileData
    {
        std::string type;
        npu::OpCategory category = npu::OpCategory::Compute;
        /** frequency MHz -> measured duration s. */
        std::map<double, double> durations;
    };

    std::unordered_map<std::uint64_t, ProfileData> profiles_;
    std::unordered_map<std::uint64_t, OpPerfModel> models_;
};

} // namespace opdvfs::perf

#endif // OPDVFS_PERF_PERF_MODEL_H
