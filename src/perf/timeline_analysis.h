/**
 * @file
 * Symbolic analysis of an operator's Cycle(f) function: its exact
 * convex piecewise-linear form, kinks within the supported frequency
 * range, and the segment count that determines how many linear pieces
 * a direct (non-fitted) performance model would need (Sect. 4.3).
 */

#ifndef OPDVFS_PERF_TIMELINE_ANALYSIS_H
#define OPDVFS_PERF_TIMELINE_ANALYSIS_H

#include <vector>

#include "math/piecewise_linear.h"
#include "npu/memory_system.h"
#include "npu/op_params.h"

namespace opdvfs::perf {

/** Result of analysing one operator's cycle-frequency relation. */
struct TimelineAnalysis
{
    /** Exact Cycle(f) over f in Hz. */
    math::ConvexPwl cycle_pwl;
    /** Kinks strictly inside the analysed range, in MHz, ascending. */
    std::vector<double> breakpoints_mhz;
    /** Number of linear segments over the analysed range. */
    std::size_t segments = 1;
    /** Slope at the low end of the range (cycles per Hz). */
    double low_slope = 0.0;
    /** Slope at the high end of the range (cycles per Hz). */
    double high_slope = 0.0;
};

/**
 * Analyse the operator over [lo_mhz, hi_mhz].  Only meaningful for
 * Compute operators.
 */
TimelineAnalysis analyzeTimeline(const npu::HwOpParams &params,
                                 const npu::MemorySystem &memory,
                                 double lo_mhz, double hi_mhz);

} // namespace opdvfs::perf

#endif // OPDVFS_PERF_TIMELINE_ANALYSIS_H
