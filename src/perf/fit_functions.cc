#include "perf/fit_functions.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "math/curve_fit.h"
#include "math/linear_solve.h"

namespace opdvfs::perf {

namespace {

double
mhzToGhz(double mhz)
{
    return mhz / 1000.0;
}

/** Model evaluation over f in GHz. */
double
evalGhz(FitFunction kind, double f_ghz, const std::vector<double> &p)
{
    switch (kind) {
      case FitFunction::FullQuadOverF:
        return (p[0] * f_ghz * f_ghz + p[1] * f_ghz + p[2]) / f_ghz;
      case FitFunction::QuadOverF:
        return (p[0] * f_ghz * f_ghz + p[1]) / f_ghz;
      case FitFunction::StallOverF:
        return (p[0] * f_ghz + p[1]) / f_ghz;
      case FitFunction::ExpOverF:
        return (p[0] * std::exp(p[1] * f_ghz) + p[2]) / f_ghz;
      case FitFunction::PwlCycles: {
        // Params are knots (f1, y1, f2, y2, ...) of Cycle(f) = T f,
        // sorted by f; interpolate/extrapolate linearly in cycles.
        std::size_t knots = p.size() / 2;
        std::size_t seg = 0;
        while (seg + 2 < knots && f_ghz > p[2 * (seg + 1)])
            ++seg;
        double f0 = p[2 * seg], y0 = p[2 * seg + 1];
        double f1 = p[2 * seg + 2], y1 = p[2 * seg + 3];
        double slope = (y1 - y0) / (f1 - f0);
        return (y0 + slope * (f_ghz - f0)) / f_ghz;
      }
    }
    throw std::logic_error("evalGhz: unknown fit function");
}

/** Knot-interpolation "fit": store (f, T f) pairs sorted by f. */
FittedCurve
fitPwlCycles(const std::vector<double> &f_ghz,
             const std::vector<double> &seconds)
{
    std::vector<std::size_t> order(f_ghz.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&f_ghz](std::size_t a, std::size_t b) {
                  return f_ghz[a] < f_ghz[b];
              });

    FittedCurve curve;
    curve.kind = FitFunction::PwlCycles;
    for (std::size_t i : order) {
        curve.params.push_back(f_ghz[i]);
        curve.params.push_back(seconds[i] * f_ghz[i]);
    }
    return curve;
}

/**
 * Func. 2 / stall-model solve: T f is linear in the two parameters;
 * two points give the closed form, more give linear least squares.
 * For QuadOverF the basis is (f^2, 1); for StallOverF it is (f, 1).
 */
FittedCurve
fitLinearFamily(FitFunction kind, const std::vector<double> &f_ghz,
                const std::vector<double> &seconds)
{
    FittedCurve curve;
    curve.kind = kind;
    auto basis = [kind](double f) {
        return kind == FitFunction::QuadOverF ? f * f : f;
    };

    if (f_ghz.size() == 2) {
        double f1 = f_ghz[0], f2 = f_ghz[1];
        double y1 = seconds[0] * f1, y2 = seconds[1] * f2;
        double denom = basis(f1) - basis(f2);
        if (denom == 0.0)
            throw std::invalid_argument("fitCurve: duplicate frequencies");
        double a = (y1 - y2) / denom;
        double c = y1 - a * basis(f1);
        curve.params = {a, c};
        return curve;
    }

    math::Matrix design(f_ghz.size(), 2);
    std::vector<double> rhs(f_ghz.size());
    for (std::size_t i = 0; i < f_ghz.size(); ++i) {
        design(i, 0) = basis(f_ghz[i]);
        design(i, 1) = 1.0;
        rhs[i] = seconds[i] * f_ghz[i];
    }
    curve.params = math::leastSquares(design, rhs);
    return curve;
}

/** LM fits for Func. 1 and Func. 3 (the curve_fit stand-in). */
FittedCurve
fitNonlinear(FitFunction kind, const std::vector<double> &f_ghz,
             const std::vector<double> &seconds)
{
    FittedCurve curve;
    curve.kind = kind;

    math::CurveModel model = [kind](double f, const std::vector<double> &p) {
        return evalGhz(kind, f, p);
    };

    math::CurveFitOptions options;
    std::vector<double> initial;
    if (kind == FitFunction::FullQuadOverF) {
        // Start from the Func. 2 solution with b = 0.
        FittedCurve seed =
            fitLinearFamily(FitFunction::QuadOverF, f_ghz, seconds);
        initial = {seed.params[0], 0.0, seed.params[1]};
    } else {
        // Func. 3: clamp b to [0, 10] as the paper does; seed with a
        // mild exponent.
        double t_mid = seconds[seconds.size() / 2];
        double f_mid = f_ghz[f_ghz.size() / 2];
        initial = {t_mid * f_mid / 2.0, 1.0, t_mid * f_mid / 2.0};
        options.lower_bounds = {-1e12, 0.0, -1e12};
        options.upper_bounds = {1e12, 10.0, 1e12};
    }

    auto result = math::curveFit(model, f_ghz, seconds, initial, options);
    curve.params = result.params;
    return curve;
}

} // namespace

std::string
fitFunctionName(FitFunction kind)
{
    switch (kind) {
      case FitFunction::FullQuadOverF: return "T=(af^2+bf+c)/f";
      case FitFunction::QuadOverF:     return "T=(af^2+c)/f";
      case FitFunction::ExpOverF:      return "T=(ae^bf+c)/f";
      case FitFunction::StallOverF:    return "T=b+c/f (const stall)";
      case FitFunction::PwlCycles:     return "piecewise-linear cycles";
    }
    return "?";
}

int
fitFunctionParams(FitFunction kind)
{
    if (kind == FitFunction::QuadOverF || kind == FitFunction::StallOverF)
        return 2;
    if (kind == FitFunction::PwlCycles)
        return 2; // needs >= 2 knots
    return 3;
}

double
FittedCurve::predictSeconds(double f_mhz) const
{
    return evalGhz(kind, mhzToGhz(f_mhz), params);
}

FittedCurve
fitCurve(FitFunction kind, const std::vector<double> &f_mhz,
         const std::vector<double> &seconds)
{
    if (f_mhz.size() != seconds.size())
        throw std::invalid_argument("fitCurve: size mismatch");
    if (static_cast<int>(f_mhz.size()) < fitFunctionParams(kind))
        throw std::invalid_argument("fitCurve: not enough samples");

    std::vector<double> f_ghz;
    f_ghz.reserve(f_mhz.size());
    for (double f : f_mhz)
        f_ghz.push_back(mhzToGhz(f));

    if (kind == FitFunction::QuadOverF || kind == FitFunction::StallOverF)
        return fitLinearFamily(kind, f_ghz, seconds);
    if (kind == FitFunction::PwlCycles)
        return fitPwlCycles(f_ghz, seconds);
    return fitNonlinear(kind, f_ghz, seconds);
}

} // namespace opdvfs::perf
