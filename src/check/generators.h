/**
 * @file
 * Seeded, size-bounded random-input generators shared by the property
 * suites (tests/prop_*) and the fuzz drivers.
 *
 * Everything is a pure function of the Rng handed in, so a property
 * failure replays from its case seed alone.  Generators stay inside
 * physically plausible ranges: the paper's invariants (convexity,
 * monotonicity, fix-point contraction) are claims about realisable
 * operating points, not about arbitrary float soup — the fuzz drivers
 * (check/fuzz.h) cover the garbage-input side.
 */

#ifndef OPDVFS_CHECK_GENERATORS_H
#define OPDVFS_CHECK_GENERATORS_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "dvfs/preprocess.h"
#include "dvfs/strategy_io.h"
#include "models/workload.h"
#include "net/wire.h"
#include "npu/freq_table.h"
#include "npu/npu_chip.h"
#include "perf/perf_model.h"
#include "power/power_model.h"
#include "trace/profiler.h"

namespace opdvfs::check {

/** Random supported-frequency table: 2..9 points, non-negative V-F slope. */
npu::FreqTableConfig genFreqTableConfig(Rng &rng);

/**
 * Random chip configuration with a bounded thermal/power parameter
 * space chosen so the Sect. 5.4.2 fix point stays a contraction
 * (k * gamma_soc * V well below 1), matching real silicon.
 */
npu::NpuConfig genChipConfig(Rng &rng);

/**
 * Random calibrated power-model constants in the same contraction-safe
 * ranges (for model-level oracles that need no simulator run).
 */
power::CalibratedConstants genConstants(Rng &rng);

/** Random per-operator activity factors. */
power::OpPowerModel genOpPower(Rng &rng);

/**
 * Hidden ground truth of one synthetic operator: duration decomposes
 * into a frequency-invariant part and a core-cycle part, so its exact
 * time at any frequency is known in closed form:
 *
 *     T(f) = const_seconds + cycle_seconds_ghz / f_ghz
 */
struct SyntheticOp
{
    std::uint64_t id = 0;
    std::string type;
    npu::OpCategory category = npu::OpCategory::Compute;
    /** Drives the profiled pipeline ratios (core vs uncore bound). */
    bool sensitive = true;
    double const_seconds = 0.0;
    double cycle_seconds_ghz = 0.0;
    double alpha_aicore = 0.0;
    double alpha_soc = 0.0;

    /** Exact duration at @p mhz, seconds. */
    double durationAt(double mhz) const;
};

/** A synthetic operator stream with closed-form timing. */
struct SyntheticWorkload
{
    std::vector<SyntheticOp> ops;

    /** Noise-free profiled records at @p mhz, contiguous timeline. */
    std::vector<trace::OpRecord> recordsAt(double mhz) const;
};

/** Random synthetic op stream of [min_ops, max_ops] operators. */
SyntheticWorkload genSyntheticWorkload(Rng &rng, int min_ops, int max_ops);

/**
 * A complete tiny optimisation problem: stages from preprocessing,
 * per-operator perf models fitted on two noise-free profiles, random
 * power constants and activity factors.  Small enough (bounded stages
 * x frequencies) for exhaustive strategy enumeration.
 */
struct TinyProblem
{
    SyntheticWorkload workload;
    npu::FreqTableConfig freq;
    power::CalibratedConstants constants;
    std::vector<dvfs::Stage> stages;
    perf::PerfModelRepository perf;
    std::unordered_map<std::uint64_t, power::OpPowerModel> op_power;
    double perf_loss_target = 0.02;
};

/**
 * Generate a tiny problem with at most @p max_stages candidate stages
 * and at most @p max_freqs table frequencies.
 */
TinyProblem genTinyProblem(Rng &rng, int max_stages, int max_freqs);

/**
 * Random preprocessable record stream: contiguous, time-ordered,
 * mixing frequency-sensitive/insensitive compute with AICPU,
 * communication and idle records.
 */
std::vector<trace::OpRecord> genRecordStream(Rng &rng, int min_ops,
                                             int max_ops);

/** Random valid strategy against @p table (always validates clean). */
dvfs::Strategy genStrategy(Rng &rng, const npu::FreqTable &table);

/** Random real workload via OpFactory (for simulator-backed oracles). */
models::Workload genWorkload(Rng &rng, const npu::MemorySystem &memory,
                             int min_ops, int max_ops);

/**
 * One valid wire frame: a framed request (sometimes carrying a
 * deadline) or a framed response covering every status — including
 * Busy frames with each RejectReason and a retry_after_ms hint.
 * Shared by the wire fuzz corpus and prop_net's chaos-split decode
 * oracle, so both harnesses exercise the same frame population.
 */
std::string genWireFrame(Rng &rng, const net::WireLimits &limits);

// --- printers (counterexample literals) --------------------------------

std::string show(const npu::FreqTableConfig &config);
std::string show(const npu::NpuConfig &config);
std::string show(const power::CalibratedConstants &constants);
std::string show(const SyntheticWorkload &workload);
std::string show(const TinyProblem &problem);
std::string show(const std::vector<trace::OpRecord> &records);
std::string show(const dvfs::Strategy &strategy);
std::string show(const models::Workload &workload);

// --- shrinking helpers -------------------------------------------------

/**
 * Candidate smaller vectors: both halves, then (for short vectors)
 * every all-but-one subsequence.
 */
template <typename T>
std::vector<std::vector<T>>
shrinkVector(const std::vector<T> &v)
{
    std::vector<std::vector<T>> out;
    if (v.size() <= 1)
        return out;
    std::size_t half = v.size() / 2;
    out.emplace_back(v.begin(), v.begin() + half);
    out.emplace_back(v.begin() + half, v.end());
    if (v.size() <= 32) {
        for (std::size_t skip = 0; skip < v.size(); ++skip) {
            std::vector<T> smaller;
            smaller.reserve(v.size() - 1);
            for (std::size_t i = 0; i < v.size(); ++i) {
                if (i != skip)
                    smaller.push_back(v[i]);
            }
            out.push_back(std::move(smaller));
        }
    }
    return out;
}

/** Shrink a synthetic workload by dropping operators (ids re-packed). */
std::vector<SyntheticWorkload> shrinkWorkload(const SyntheticWorkload &w);

/** Shrink a strategy by dropping stages and triggers. */
std::vector<dvfs::Strategy> shrinkStrategy(const dvfs::Strategy &s);

} // namespace opdvfs::check

#endif // OPDVFS_CHECK_GENERATORS_H
