#include "check/prop.h"

#include <cstdlib>
#include <fstream>

namespace opdvfs::check {

namespace {

/** Parse a non-negative integer env var; @p fallback when unset/bad. */
long long
envLong(const char *name, long long fallback)
{
    const char *text = std::getenv(name);
    if (!text || !*text)
        return fallback;
    char *end = nullptr;
    long long value = std::strtoll(text, &end, 0);
    if (end == text || *end != '\0' || value < 0)
        return fallback;
    return value;
}

} // namespace

PropConfig
PropConfig::fromEnv()
{
    PropConfig config;
    config.cases = static_cast<int>(
        envLong("OPDVFS_PROP_CASES", config.cases));
    config.seed = static_cast<std::uint64_t>(
        envLong("OPDVFS_PROP_SEED", static_cast<long long>(config.seed)));
    config.only_case =
        static_cast<int>(envLong("OPDVFS_PROP_CASE", -1));
    if (const char *dir = std::getenv("OPDVFS_PROP_ARTIFACT_DIR"))
        config.artifact_dir = dir;
    return config;
}

std::uint64_t
caseSeed(std::uint64_t base_seed, int case_index)
{
    // splitmix64: a distinct, well-mixed stream per (base, index) so
    // neighbouring cases share no generator state.
    std::uint64_t z = base_seed
        + 0x9e3779b97f4a7c15ULL
            * (static_cast<std::uint64_t>(case_index) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::string
PropResult::report() const
{
    return detail::formatReport(*this);
}

namespace detail {

std::string
formatReport(const PropResult &result)
{
    std::ostringstream os;
    if (result.passed) {
        os << "property '" << result.property << "' passed "
           << result.cases_run << " cases (seed " << result.base_seed
           << ")";
        return os.str();
    }
    os << "property '" << result.property << "' FAILED at case "
       << result.failing_case << " (case seed " << result.failing_seed
       << ")\n"
       << "replay: OPDVFS_PROP_SEED=" << result.base_seed
       << " OPDVFS_PROP_CASE=" << result.failing_case
       << " <this test binary>\n"
       << "shrunk counterexample (" << result.shrink_steps
       << " shrink steps):\n"
       << result.counterexample << "\n"
       << "oracle: " << result.failure;
    return os.str();
}

void
writeArtifact(const PropConfig &config, const PropResult &result)
{
    if (config.artifact_dir.empty())
        return;
    // Property names are short identifiers; sanitise to be safe.
    std::string name = result.property;
    for (char &c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
            || (c >= '0' && c <= '9') || c == '-' || c == '_';
        if (!ok)
            c = '_';
    }
    std::ofstream os(config.artifact_dir + "/" + name + ".counterexample");
    if (!os)
        return;
    os << formatReport(result) << "\n";
}

} // namespace detail

} // namespace opdvfs::check
