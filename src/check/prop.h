/**
 * @file
 * A small deterministic property-based testing engine.
 *
 * A property is (generator, oracle): the generator builds a random
 * input from a seeded Rng, the oracle returns std::nullopt when the
 * invariant holds and a failure message when it does not.  The engine
 * runs a configurable number of cases, each under a seed derived
 * deterministically from a base seed and the case index, so every
 * failure is replayable from two integers.  On failure it greedily
 * shrinks the input through a caller-supplied shrinker to a minimal
 * counterexample and prints both the replay command and the literal.
 *
 * Environment knobs (read by PropConfig::fromEnv):
 *
 *   OPDVFS_PROP_CASES         cases per property (default 1000)
 *   OPDVFS_PROP_SEED          base seed (default 20250807)
 *   OPDVFS_PROP_CASE          run exactly this one case (replay)
 *   OPDVFS_PROP_ARTIFACT_DIR  write shrunk counterexamples here
 */

#ifndef OPDVFS_CHECK_PROP_H
#define OPDVFS_CHECK_PROP_H

#include <cstdint>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"

namespace opdvfs::check {

/** Engine configuration; fromEnv() is the normal entry point. */
struct PropConfig
{
    /** Randomized cases per property. */
    int cases = 1000;
    /** Base seed; case i runs under caseSeed(seed, i). */
    std::uint64_t seed = 20250807;
    /** Replay exactly this case index when >= 0. */
    int only_case = -1;
    /** Upper bound on accepted shrink steps. */
    int max_shrink_steps = 10000;
    /** When non-empty, failing properties dump artifacts here. */
    std::string artifact_dir;

    /** Defaults overridden by the OPDVFS_PROP_* environment. */
    static PropConfig fromEnv();
};

/** Deterministic per-case seed (splitmix64 over base ^ index). */
std::uint64_t caseSeed(std::uint64_t base_seed, int case_index);

/** Outcome of one property run. */
struct PropResult
{
    bool passed = true;
    std::string property;
    int cases_run = 0;
    std::uint64_t base_seed = 0;
    /** Failing case index; -1 when passed. */
    int failing_case = -1;
    /** Seed the failing case ran under. */
    std::uint64_t failing_seed = 0;
    /** Oracle message for the shrunk counterexample. */
    std::string failure;
    /** Printed literal of the shrunk counterexample. */
    std::string counterexample;
    /** Shrink steps accepted while minimising. */
    int shrink_steps = 0;

    /** Human-readable failure report with the replay recipe. */
    std::string report() const;
};

/** Implementation helpers shared by all Property<T> instantiations. */
namespace detail {
/** Assemble the failure report text. */
std::string formatReport(const PropResult &result);
/** Best-effort artifact dump (ignored when dir is empty/unwritable). */
void writeArtifact(const PropConfig &config, const PropResult &result);
} // namespace detail

/**
 * One property: generator + oracle, with optional shrinker and
 * printer.  All callbacks must be deterministic functions of their
 * inputs; the engine provides the only randomness via the Rng.
 */
template <typename T>
class Property
{
  public:
    using Gen = std::function<T(Rng &)>;
    /** nullopt = invariant holds; string = failure message. */
    using Oracle = std::function<std::optional<std::string>(const T &)>;
    /** Strictly-smaller candidate inputs to try during shrinking. */
    using Shrink = std::function<std::vector<T>(const T &)>;
    using Print = std::function<std::string(const T &)>;

    Property(std::string name, Gen gen, Oracle oracle)
        : name_(std::move(name)), gen_(std::move(gen)),
          oracle_(std::move(oracle))
    {}

    Property &withShrinker(Shrink shrink)
    {
        shrink_ = std::move(shrink);
        return *this;
    }

    Property &withPrinter(Print print)
    {
        print_ = std::move(print);
        return *this;
    }

    /** Run under @p config (default: environment-derived). */
    PropResult check(const PropConfig &config = PropConfig::fromEnv()) const
    {
        PropResult result;
        result.property = name_;
        result.base_seed = config.seed;

        int first = config.only_case >= 0 ? config.only_case : 0;
        int last = config.only_case >= 0 ? config.only_case + 1
                                         : config.cases;
        for (int i = first; i < last; ++i) {
            std::uint64_t seed = caseSeed(config.seed, i);
            Rng rng(seed);
            T input = gen_(rng);
            ++result.cases_run;
            std::optional<std::string> failure = oracle_(input);
            if (!failure)
                continue;

            result.passed = false;
            result.failing_case = i;
            result.failing_seed = seed;
            shrinkToMinimal(config, input, *failure, result);
            result.counterexample = print_ ? print_(input) : "<no printer>";
            detail::writeArtifact(config, result);
            return result;
        }
        return result;
    }

  private:
    /** Greedy shrink: repeatedly take the first still-failing candidate. */
    void shrinkToMinimal(const PropConfig &config, T &input,
                         std::string &failure, PropResult &result) const
    {
        if (!shrink_)
            { result.failure = failure; return; }
        bool progressed = true;
        while (progressed && result.shrink_steps < config.max_shrink_steps) {
            progressed = false;
            for (T &candidate : shrink_(input)) {
                std::optional<std::string> f = oracle_(candidate);
                if (f) {
                    input = std::move(candidate);
                    failure = std::move(*f);
                    ++result.shrink_steps;
                    progressed = true;
                    break;
                }
            }
        }
        result.failure = failure;
    }

    std::string name_;
    Gen gen_;
    Oracle oracle_;
    Shrink shrink_;
    Print print_;
};

/**
 * gtest glue: assert that a property holds, printing the replay
 * recipe and the shrunk counterexample on failure.
 */
#define OPDVFS_CHECK_PROP(property_expr)                                    \
    do {                                                                    \
        const auto opdvfs_prop_result = (property_expr).check();            \
        EXPECT_TRUE(opdvfs_prop_result.passed)                              \
            << opdvfs_prop_result.report();                                 \
    } while (0)

} // namespace opdvfs::check

#endif // OPDVFS_CHECK_PROP_H
