/**
 * @file
 * Paper-derived invariant oracles.
 *
 * Each oracle takes one generated input and returns std::nullopt when
 * the invariant holds, or a human-readable violation message.  They
 * are plain deterministic functions, shared between the property
 * suites (tests/prop_*), the fuzz drivers (check/fuzz.h) and any unit
 * test that wants to pin a regression counterexample.
 *
 * The invariants and where they come from:
 *
 *  - checkPerfCurveShape     Eqs. 1-8: op time T(f) positive, finite,
 *                            non-increasing in f; cycles f*T(f) convex.
 *  - checkFitRecovery        two noise-free profiles recover the
 *                            synthetic ground truth T(f) exactly.
 *  - checkPowerInvariants    Eqs. 11-15: power positive, SoC >= AICore,
 *                            monotone along the V-F curve.
 *  - checkThermalFixPoint    Sect. 5.4.2: the dT fix point converges,
 *                            is consistent (dT ~= k * Psoc) and
 *                            deterministic.
 *  - checkThermalRelaxation  first-order RC: monotone approach to
 *                            equilibrium, exact step composition,
 *                            idempotence at the fix point.
 *  - checkPreprocessInvariants  Sect. 6.2: stages partition the
 *                            timeline, ops partition the stream, no
 *                            stage under the FAI (single-stage output
 *                            excepted), majority-vote stage kind.
 *  - checkGaOptimality       Eq. 17 scoring: the GA never scores above
 *                            the exhaustive optimum on tiny instances,
 *                            and reaches it.
 *  - checkStrategyRoundTrip  save -> load -> save is byte-stable.
 *  - checkModelVsSimulator   the analytical models track the cycle
 *                            simulator within the paper's error bands
 *                            (1.96% time, 4.62% power).
 *  - checkServiceCacheEquivalence  exact hits return the cold result;
 *                            epoch-advanced warm starts never score
 *                            below their donor.
 */

#ifndef OPDVFS_CHECK_ORACLES_H
#define OPDVFS_CHECK_ORACLES_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/generators.h"
#include "dvfs/preprocess.h"
#include "dvfs/strategy_io.h"
#include "models/workload.h"
#include "npu/freq_table.h"
#include "npu/thermal.h"
#include "perf/perf_model.h"
#include "power/power_model.h"

namespace opdvfs::check {

/** Paper accuracy bands (Sect. 7.2 / 7.3 means). */
inline constexpr double kPerfErrorBand = 0.0196;
inline constexpr double kPowerErrorBand = 0.0462;

/** T(f) finite/positive/non-increasing; cycles f*T(f) convex. */
std::optional<std::string>
checkPerfCurveShape(const perf::OpPerfModel &model,
                    const npu::FreqTable &table);

/**
 * Fit two-point noise-free profiles of @p workload against the table
 * of @p freq and check every fitted model: exact recovery of the
 * synthetic ground truth plus the curve-shape invariants.
 */
std::optional<std::string>
checkFitRecovery(const SyntheticWorkload &workload,
                 const npu::FreqTableConfig &freq);

/** Power positivity, SoC dominance, monotonicity along the V-F curve. */
std::optional<std::string>
checkPowerInvariants(const power::PowerModel &model,
                     const power::OpPowerModel &op);

/** Fix-point convergence, consistency and determinism at every f. */
std::optional<std::string>
checkThermalFixPoint(const power::PowerModel &model,
                     const power::OpPowerModel &op);

/** RC relaxation: monotone, composable, idempotent at equilibrium. */
std::optional<std::string>
checkThermalRelaxation(const npu::ThermalConfig &config,
                       double p_soc_watts);

/** Timeline/stream partition, FAI floor, majority-vote stage kind. */
std::optional<std::string>
checkPreprocessInvariants(const std::vector<trace::OpRecord> &records,
                          const dvfs::PreprocessOptions &options);

/** GA score vs exhaustive enumeration on a tiny instance. */
std::optional<std::string> checkGaOptimality(const TinyProblem &problem);

/** save -> load -> save byte stability (+ device validation). */
std::optional<std::string>
checkStrategyRoundTrip(const dvfs::Strategy &strategy,
                       const npu::FreqTable *table);

/**
 * Differential oracle: profile @p workload noise-free on the shared
 * differential chip at the table bottom / middle / top, fit the
 * analytical models, and compare their predictions at a held-out
 * frequency against the simulator's measurement — mean per-operator
 * time within the 1.96% band; SoC power (calibrated from the endpoint
 * runs) within the 4.62% band at mid-table.
 */
std::optional<std::string>
checkModelVsSimulator(const models::Workload &workload,
                      std::uint64_t seed);

/**
 * Service oracle on the shared differential chip: a repeated request
 * is an exact hit byte-identical to the cold answer (modulo the
 * provenance token); after advanceModelEpoch() the same request is
 * recomputed as a warm start with similarity 1.0 and never scores
 * below the donor.
 */
std::optional<std::string>
checkServiceCacheEquivalence(const models::Workload &workload,
                             std::uint64_t seed);

/**
 * The chip the differential oracles run against: default device with
 * a short thermal time constant so a sub-second warm-up reaches
 * thermal steady state.  Offline calibration runs once per process.
 */
const npu::NpuConfig &differentialChip();
const power::CalibratedConstants &differentialConstants();

} // namespace opdvfs::check

#endif // OPDVFS_CHECK_ORACLES_H
