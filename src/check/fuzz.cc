#include "check/fuzz.h"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "check/generators.h"
#include "dvfs/strategy_io.h"
#include "net/wire.h"
#include "npu/memory_system.h"
#include "npu/npu_chip.h"
#include "serve/cache_store.h"
#include "serve/fingerprint.h"
#include "tune/corpus.h"

namespace opdvfs::check {

namespace {

/** Printable dump of a fuzz buffer (non-ASCII bytes escaped). */
std::string
escapeBuffer(const std::uint8_t *data, std::size_t size)
{
    std::ostringstream os;
    std::size_t limit = std::min<std::size_t>(size, 2048);
    for (std::size_t i = 0; i < limit; ++i) {
        std::uint8_t byte = data[i];
        if (byte == '\n' || byte == '\t'
            || (byte >= 0x20 && byte < 0x7f)) {
            os << static_cast<char>(byte);
        } else {
            static const char hex[] = "0123456789abcdef";
            os << "\\x" << hex[byte >> 4] << hex[byte & 0xf];
        }
    }
    if (limit < size)
        os << "... (" << size - limit << " more bytes)";
    return os.str();
}

std::uint64_t
bufferSeed(const std::uint8_t *data, std::size_t size)
{
    // FNV-1a over the buffer: a deterministic seed for derived inputs.
    std::uint64_t h = 1469598103934665603ULL;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace

std::optional<std::string>
fuzzStrategyIoOne(const std::uint8_t *data, std::size_t size)
{
    std::string text(reinterpret_cast<const char *>(data), size);

    dvfs::Strategy loaded;
    try {
        std::istringstream is(text);
        loaded = dvfs::loadStrategy(is);
    } catch (const std::invalid_argument &) {
        return std::nullopt; // clean rejection is the expected path
    } catch (const std::exception &error) {
        return "loadStrategy threw a non-invalid_argument exception: "
            + std::string(error.what());
    } catch (...) {
        return std::string("loadStrategy threw a non-standard exception");
    }

    // The loader accepted the bytes: the parsed strategy must be
    // internally consistent and survive save -> load -> save.
    if (loaded.stages.size() != loaded.mhz_per_stage.size())
        return std::string("accepted strategy has mismatched stage and "
                           "frequency vectors");
    std::string first;
    try {
        std::ostringstream os;
        dvfs::saveStrategy(loaded, os);
        first = os.str();
    } catch (const std::exception &error) {
        return "accepted strategy fails to save: "
            + std::string(error.what());
    }
    dvfs::Strategy reloaded;
    try {
        std::istringstream is(first);
        reloaded = dvfs::loadStrategy(is);
    } catch (const std::exception &error) {
        return "re-saved strategy fails to load: "
            + std::string(error.what());
    }
    std::ostringstream second;
    dvfs::saveStrategy(reloaded, second);
    if (first != second.str())
        return std::string("save -> load -> save is not byte-stable");

    // Determinism: parsing the same bytes twice gives the same text.
    std::istringstream again_is(text);
    dvfs::Strategy again = dvfs::loadStrategy(again_is);
    std::ostringstream again_os;
    dvfs::saveStrategy(again, again_os);
    if (again_os.str() != first)
        return std::string("loadStrategy is not deterministic");
    return std::nullopt;
}

std::optional<std::string>
fuzzFingerprintOne(const std::uint8_t *data, std::size_t size)
{
    // The buffer drives a deterministic request: same bytes, same
    // workload, same parameters.
    std::uint64_t seed = bufferSeed(data, size);
    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);
    Rng rng(seed);
    models::Workload workload = genWorkload(rng, memory, 1, 12);
    double loss_target = 0.005 + 0.095 * (seed % 1000) / 1000.0;
    std::uint64_t ga_seed = seed ^ 0x5bd1e995;

    serve::Fingerprint fp = serve::fingerprintRequest(workload, chip,
                                                      loss_target, ga_seed);
    for (double feature : fp.features) {
        if (!std::isfinite(feature))
            return std::string("non-finite fingerprint feature");
    }
    if (serve::fingerprintSimilarity(fp, fp) != 1.0)
        return std::string("self-similarity is not exactly 1.0");

    serve::Fingerprint fp2 = serve::fingerprintRequest(workload, chip,
                                                       loss_target, ga_seed);
    if (fp2.digest != fp.digest || fp2.features != fp.features)
        return std::string("fingerprint is not deterministic");

    // The workload *name* is presentation, not identity.
    models::Workload renamed = workload;
    renamed.name = workload.name + "-renamed";
    serve::Fingerprint fp3 = serve::fingerprintRequest(renamed, chip,
                                                       loss_target, ga_seed);
    if (fp3.digest != fp.digest)
        return std::string("workload name leaks into the digest");

    // The GA seed is identity (bit-reproducible service) but must not
    // move the similarity features (warm-start donors ignore it).
    serve::Fingerprint fp4 = serve::fingerprintRequest(
        workload, chip, loss_target, ga_seed + 1);
    if (fp4.digest == fp.digest)
        return std::string("GA seed does not enter the digest");
    if (fp4.features != fp.features)
        return std::string("GA seed moved the similarity features");
    return std::nullopt;
}

namespace {

/** Tight caps: the fuzzer exercises validation, not allocation. */
net::WireLimits
wireFuzzLimits()
{
    net::WireLimits limits;
    limits.max_frame_bytes = 64u << 10;
    limits.max_ops = 512;
    limits.max_strategy_bytes = 32u << 10;
    return limits;
}

std::optional<std::string>
checkRequestPayload(std::string_view payload,
                    const net::WireLimits &limits)
{
    net::WireRequest decoded;
    try {
        decoded = net::decodeRequest(payload, limits);
    } catch (const std::invalid_argument &) {
        return std::nullopt; // clean rejection is the expected path
    } catch (const std::exception &error) {
        return "decodeRequest threw a non-invalid_argument exception: "
            + std::string(error.what());
    } catch (...) {
        return std::string(
            "decodeRequest threw a non-standard exception");
    }

    // Accepted requests re-encode byte-identically: the codec
    // transmits exactly the canonical field stream, nothing else.
    std::string encoded;
    try {
        encoded = net::encodeRequest(decoded, limits);
    } catch (const std::exception &error) {
        return "accepted request fails to re-encode: "
            + std::string(error.what());
    }
    if (encoded != payload)
        return std::string(
            "request decode -> encode is not byte-identical");
    net::WireRequest again = net::decodeRequest(payload, limits);
    if (net::encodeRequest(again, limits) != encoded)
        return std::string("decodeRequest is not deterministic");
    return std::nullopt;
}

std::optional<std::string>
checkResponsePayload(std::string_view payload,
                     const net::WireLimits &limits)
{
    net::WireResponse decoded;
    try {
        decoded = net::decodeResponse(payload, limits);
    } catch (const std::invalid_argument &) {
        return std::nullopt;
    } catch (const std::exception &error) {
        return "decodeResponse threw a non-invalid_argument exception: "
            + std::string(error.what());
    } catch (...) {
        return std::string(
            "decodeResponse threw a non-standard exception");
    }

    // The embedded strategy text is normalised by its load -> save
    // round trip, so responses promise encode -> decode -> encode
    // stability rather than strict byte identity.
    std::string first;
    try {
        first = net::encodeResponse(decoded, limits);
    } catch (const std::exception &error) {
        return "accepted response fails to re-encode: "
            + std::string(error.what());
    }
    net::WireResponse reloaded;
    try {
        reloaded = net::decodeResponse(first, limits);
    } catch (const std::exception &error) {
        return "re-encoded response fails to decode: "
            + std::string(error.what());
    }
    if (net::encodeResponse(reloaded, limits) != first)
        return std::string(
            "response encode -> decode -> encode is not byte-stable");
    return std::nullopt;
}

} // namespace

std::optional<std::string>
fuzzWireOne(const std::uint8_t *data, std::size_t size)
{
    const net::WireLimits limits = wireFuzzLimits();
    std::string_view stream(reinterpret_cast<const char *>(data), size);

    // Walk the stream frame by frame, exactly as the server's read
    // loop does; a peeled frame always consumes at least its header,
    // so the walk terminates.
    while (!stream.empty()) {
        std::size_t consumed = 0;
        std::optional<net::FrameView> frame;
        try {
            frame = net::peelFrame(stream, &consumed, limits);
        } catch (const std::invalid_argument &) {
            return std::nullopt; // clean rejection
        } catch (const std::exception &error) {
            return "peelFrame threw a non-invalid_argument exception: "
                + std::string(error.what());
        } catch (...) {
            return std::string("peelFrame threw a non-standard exception");
        }
        if (!frame)
            return std::nullopt; // incomplete tail: wait for more bytes
        std::optional<std::string> failure =
            frame->type == net::MsgType::Request
                ? checkRequestPayload(frame->payload, limits)
                : checkResponsePayload(frame->payload, limits);
        if (failure)
            return failure;
        stream.remove_prefix(consumed);
    }
    return std::nullopt;
}

std::optional<std::string>
fuzzCacheWalOne(const std::uint8_t *data, std::size_t size)
{
    std::string_view buffer(reinterpret_cast<const char *>(data), size);
    serve::WalReplay replay;
    try {
        replay = serve::replayWalBuffer(buffer);
    } catch (const std::exception &error) {
        return "replayWalBuffer threw (recover-or-truncate violated): "
            + std::string(error.what());
    } catch (...) {
        return std::string("replayWalBuffer threw a non-standard "
                           "exception");
    }
    if (replay.valid_bytes > size)
        return std::string("valid prefix longer than the buffer");
    if (replay.truncated_tail != (replay.valid_bytes != size))
        return std::string(
            "truncated_tail inconsistent with the valid prefix");

    // Determinism: replaying the same bytes finds the same prefix.
    serve::WalReplay again = serve::replayWalBuffer(buffer);
    if (again.valid_bytes != replay.valid_bytes
        || again.entries.size() != replay.entries.size())
        return std::string("replay is not deterministic");

    // Every recovered entry must be re-loggable, and its record must
    // replay back byte-stably — nothing semi-corrupt may be recovered.
    for (const serve::CacheEntry &entry : replay.entries) {
        std::string record;
        try {
            record = serve::encodeWalRecord(entry);
        } catch (const std::exception &error) {
            return "recovered entry fails to re-encode: "
                + std::string(error.what());
        }
        serve::WalReplay one = serve::replayWalBuffer(record);
        if (one.entries.size() != 1 || one.truncated_tail)
            return std::string(
                "re-encoded record does not replay cleanly");
        if (one.entries[0].fingerprint.digest != entry.fingerprint.digest)
            return std::string(
                "re-encoded record replays a different digest");
        if (serve::encodeWalRecord(one.entries[0]) != record)
            return std::string(
                "encode -> replay -> encode is not byte-stable");
    }
    return std::nullopt;
}

namespace {

/** Mutate a valid strategy file into a near-valid buffer. */
std::vector<std::uint8_t>
mutatedStrategyBuffer(Rng &rng)
{
    npu::FreqTable table(genFreqTableConfig(rng));
    dvfs::Strategy strategy = genStrategy(rng, table);
    std::ostringstream os;
    dvfs::saveStrategy(strategy, os);
    std::string text = os.str();

    int mutations = static_cast<int>(rng.uniformInt(0, 8));
    for (int m = 0; m < mutations && !text.empty(); ++m) {
        switch (rng.uniformInt(0, 4)) {
        case 0: // flip one byte
            text[rng.index(text.size())] =
                static_cast<char>(rng.uniformInt(0, 255));
            break;
        case 1: // truncate
            text.resize(rng.index(text.size() + 1));
            break;
        case 2: { // duplicate a line
            std::size_t from = rng.index(text.size());
            std::size_t line_start = text.rfind('\n', from);
            line_start = line_start == std::string::npos ? 0 : line_start + 1;
            std::size_t line_end = text.find('\n', from);
            line_end = line_end == std::string::npos ? text.size()
                                                     : line_end + 1;
            text.insert(line_start,
                        text.substr(line_start, line_end - line_start));
            break;
        }
        case 3: // insert a random byte
            text.insert(text.begin()
                            + static_cast<std::ptrdiff_t>(
                                rng.index(text.size() + 1)),
                        static_cast<char>(rng.uniformInt(0, 255)));
            break;
        default: { // delete a short span
            std::size_t at = rng.index(text.size());
            std::size_t len = std::min<std::size_t>(
                static_cast<std::size_t>(rng.uniformInt(1, 12)),
                text.size() - at);
            text.erase(at, len);
            break;
        }
        }
    }
    return {text.begin(), text.end()};
}

/** Lines assembled from the format's own vocabulary. */
std::vector<std::uint8_t>
tokenSoupBuffer(Rng &rng)
{
    static const char *tokens[] = {
        "strategy", "v1",      "counts",  "meta",    "score",
        "provenance", "stage", "trigger", "initial", "crc32",
        "hfc",      "lfc",     "cold",    "0",       "1",
        "-1",       "1800",    "1e308",   "nan",     "inf",
        "999999999999999999999999", "#",  "deadbeef",
    };
    std::ostringstream os;
    if (rng.chance(0.7))
        os << "strategy v1\n";
    int lines = static_cast<int>(rng.uniformInt(0, 12));
    for (int l = 0; l < lines; ++l) {
        int words = static_cast<int>(rng.uniformInt(1, 6));
        for (int w = 0; w < words; ++w) {
            if (w)
                os << ' ';
            os << tokens[rng.index(sizeof(tokens) / sizeof(tokens[0]))];
        }
        os << '\n';
    }
    std::string text = os.str();
    return {text.begin(), text.end()};
}

std::vector<std::uint8_t>
randomBuffer(Rng &rng)
{
    std::vector<std::uint8_t> buffer(
        static_cast<std::size_t>(rng.uniformInt(0, 400)));
    for (std::uint8_t &byte : buffer)
        byte = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
    return buffer;
}

/** Valid frame(s), then byte-level mutations. */
std::vector<std::uint8_t>
mutatedWireBuffer(Rng &rng, const net::WireLimits &limits)
{
    std::string bytes = genWireFrame(rng, limits);
    if (rng.chance(0.2))
        bytes += genWireFrame(rng, limits);

    int mutations = static_cast<int>(rng.uniformInt(0, 6));
    for (int m = 0; m < mutations && !bytes.empty(); ++m) {
        switch (rng.uniformInt(0, 3)) {
        case 0: // flip one byte (header, CRC or payload alike)
            bytes[rng.index(bytes.size())] =
                static_cast<char>(rng.uniformInt(0, 255));
            break;
        case 1: // truncate
            bytes.resize(rng.index(bytes.size() + 1));
            break;
        case 2: // insert a random byte
            bytes.insert(bytes.begin()
                             + static_cast<std::ptrdiff_t>(
                                 rng.index(bytes.size() + 1)),
                         static_cast<char>(rng.uniformInt(0, 255)));
            break;
        default: { // delete a short span
            std::size_t at = rng.index(bytes.size());
            std::size_t len = std::min<std::size_t>(
                static_cast<std::size_t>(rng.uniformInt(1, 12)),
                bytes.size() - at);
            bytes.erase(at, len);
            break;
        }
        }
    }
    return {bytes.begin(), bytes.end()};
}

/**
 * Valid frame(s) put through exactly the mutations net::ChaosProxy
 * injects into a live stream: a single bit flip at one byte offset
 * (its corruption fault) and/or a cut at an exact offset (its
 * mid-frame reset).  Deliberately narrower than mutatedWireBuffer so
 * the decoder states the chaos tests drive are also fuzz-covered.
 */
std::vector<std::uint8_t>
chaosWireBuffer(Rng &rng, const net::WireLimits &limits)
{
    std::string bytes = genWireFrame(rng, limits);
    if (rng.chance(0.25))
        bytes += genWireFrame(rng, limits);
    if (!bytes.empty() && rng.chance(0.6)) {
        std::size_t at = rng.index(bytes.size());
        bytes[at] = static_cast<char>(
            static_cast<unsigned char>(bytes[at])
            ^ (1u << rng.index(8)));
    }
    if (!bytes.empty() && rng.chance(0.5))
        bytes.resize(rng.index(bytes.size() + 1));
    return {bytes.begin(), bytes.end()};
}

} // namespace

std::optional<std::string>
runSeededFuzz(FuzzTarget target, std::uint64_t seed, int iterations,
              FuzzStats *stats)
{
    for (int i = 0; i < iterations; ++i) {
        Rng rng(seed + static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL);
        std::vector<std::uint8_t> buffer;
        double kind = rng.uniform(0.0, 1.0);
        if (kind < 0.5)
            buffer = mutatedStrategyBuffer(rng);
        else if (kind < 0.8)
            buffer = tokenSoupBuffer(rng);
        else
            buffer = randomBuffer(rng);

        if (stats)
            ++stats->executed;
        std::optional<std::string> failure =
            target(buffer.data(), buffer.size());
        if (failure) {
            std::ostringstream os;
            os << "fuzz iteration " << i << " (seed " << seed
               << ") failed: " << *failure << "\nbuffer ("
               << buffer.size() << " bytes):\n"
               << escapeBuffer(buffer.data(), buffer.size());
            return os.str();
        }
        if (stats) {
            // Re-run cheaply to classify accept/reject for the stats.
            std::string text(buffer.begin(), buffer.end());
            std::istringstream is(text);
            try {
                dvfs::loadStrategy(is);
                ++stats->accepted;
            } catch (...) {
                ++stats->rejected;
            }
        }
    }
    return std::nullopt;
}

std::optional<std::string>
runSeededWireFuzz(std::uint64_t seed, int iterations, FuzzStats *stats)
{
    const net::WireLimits limits = wireFuzzLimits();
    for (int i = 0; i < iterations; ++i) {
        Rng rng(seed
                + static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL);
        std::vector<std::uint8_t> buffer;
        double kind = rng.uniform(0.0, 1.0);
        if (kind < 0.3) { // pristine frames must always be accepted
            std::string bytes = genWireFrame(rng, limits);
            buffer.assign(bytes.begin(), bytes.end());
        } else if (kind < 0.7) {
            buffer = mutatedWireBuffer(rng, limits);
        } else if (kind < 0.85) {
            buffer = chaosWireBuffer(rng, limits);
        } else {
            buffer = randomBuffer(rng);
        }

        if (stats)
            ++stats->executed;
        std::optional<std::string> failure =
            fuzzWireOne(buffer.data(), buffer.size());
        if (failure) {
            std::ostringstream os;
            os << "wire fuzz iteration " << i << " (seed " << seed
               << ") failed: " << *failure << "\nbuffer ("
               << buffer.size() << " bytes):\n"
               << escapeBuffer(buffer.data(), buffer.size());
            return os.str();
        }
        if (stats) {
            // Classify the leading frame for the corpus-balance stats.
            std::string_view view(
                reinterpret_cast<const char *>(buffer.data()),
                buffer.size());
            try {
                std::size_t consumed = 0;
                auto frame = net::peelFrame(view, &consumed, limits);
                if (frame) {
                    if (frame->type == net::MsgType::Request)
                        net::decodeRequest(frame->payload, limits);
                    else
                        net::decodeResponse(frame->payload, limits);
                    ++stats->accepted;
                } else {
                    ++stats->rejected; // incomplete: not servable
                }
            } catch (...) {
                ++stats->rejected;
            }
        }
    }
    return std::nullopt;
}

namespace {

/** Random but encodable cache entry (the WAL corpus element). */
serve::CacheEntry
genCacheEntry(Rng &rng)
{
    serve::CacheEntry entry;
    entry.fingerprint.digest =
        (static_cast<std::uint64_t>(rng.uniformInt(0, 0x7FFFFFFF)) << 32)
        | static_cast<std::uint64_t>(rng.uniformInt(0, 0x7FFFFFFF));
    int features = static_cast<int>(rng.uniformInt(1, 8));
    for (int f = 0; f < features; ++f)
        entry.fingerprint.features.push_back(rng.uniform(0.0, 1.0));
    entry.fingerprint.model_epoch =
        static_cast<std::uint64_t>(rng.uniformInt(0, 12));
    npu::FreqTable table(genFreqTableConfig(rng));
    entry.strategy = genStrategy(rng, table);
    for (double mhz : entry.strategy.mhz_per_stage)
        entry.ga.best_mhz.push_back(mhz);
    entry.ga.best_score = rng.uniform(0.0, 2.0);
    entry.perf_loss_target = rng.uniform(0.005, 0.2);
    entry.warm_start_only = rng.chance(0.3);
    return entry;
}

/** A pristine WAL image of 1..3 valid records. */
std::string
genWalImage(Rng &rng, std::vector<std::uint64_t> *digests)
{
    std::string image;
    int records = static_cast<int>(rng.uniformInt(1, 3));
    for (int r = 0; r < records; ++r) {
        serve::CacheEntry entry = genCacheEntry(rng);
        if (digests)
            digests->push_back(entry.fingerprint.digest);
        image += serve::encodeWalRecord(entry);
    }
    return image;
}

/** The crash-shaped mutations a WAL actually suffers: torn tails
 *  (truncation), bit flips (bad sectors) and dropped spans. */
std::string
mutatedWalImage(Rng &rng, std::vector<std::uint64_t> *digests)
{
    std::string image = genWalImage(rng, digests);
    int mutations = static_cast<int>(rng.uniformInt(1, 4));
    for (int m = 0; m < mutations && !image.empty(); ++m) {
        switch (rng.uniformInt(0, 2)) {
        case 0: { // flip one bit
            std::size_t at = rng.index(image.size());
            image[at] = static_cast<char>(
                static_cast<unsigned char>(image[at])
                ^ (1u << rng.index(8)));
            break;
        }
        case 1: // torn tail
            image.resize(rng.index(image.size() + 1));
            break;
        default: { // delete a span
            std::size_t at = rng.index(image.size());
            std::size_t len = std::min<std::size_t>(
                static_cast<std::size_t>(rng.uniformInt(1, 24)),
                image.size() - at);
            image.erase(at, len);
            break;
        }
        }
    }
    return image;
}

} // namespace

std::optional<std::string>
runSeededWalFuzz(std::uint64_t seed, int iterations, FuzzStats *stats)
{
    for (int i = 0; i < iterations; ++i) {
        Rng rng(seed
                + static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL);
        std::vector<std::uint8_t> buffer;
        std::vector<std::uint64_t> digests;
        bool pristine = false;
        bool mutated = false;
        double kind = rng.uniform(0.0, 1.0);
        if (kind < 0.3) {
            pristine = true;
            std::string image = genWalImage(rng, &digests);
            buffer.assign(image.begin(), image.end());
        } else if (kind < 0.8) {
            mutated = true;
            std::string image = mutatedWalImage(rng, &digests);
            buffer.assign(image.begin(), image.end());
        } else {
            buffer = randomBuffer(rng);
        }

        if (stats)
            ++stats->executed;
        std::optional<std::string> failure =
            fuzzCacheWalOne(buffer.data(), buffer.size());
        std::string_view view(reinterpret_cast<const char *>(buffer.data()),
                              buffer.size());
        serve::WalReplay replay;
        if (!failure)
            replay = serve::replayWalBuffer(view);
        if (!failure && pristine
            && (replay.truncated_tail
                || replay.entries.size() != digests.size()))
            failure = "a pristine WAL image did not replay in full";
        if (!failure && mutated) {
            // Replay never resynchronises past damage, so whatever it
            // recovers must be a prefix of the original record set.
            if (replay.entries.size() > digests.size()) {
                failure = "replay recovered more entries than were "
                          "logged";
            } else {
                for (std::size_t at = 0; at < replay.entries.size(); ++at)
                    if (replay.entries[at].fingerprint.digest
                        != digests[at]) {
                        failure = "recovered entries are not a prefix "
                                  "of the logged sequence";
                        break;
                    }
            }
        }
        if (failure) {
            std::ostringstream os;
            os << "wal fuzz iteration " << i << " (seed " << seed
               << ") failed: " << *failure << "\nbuffer ("
               << buffer.size() << " bytes):\n"
               << escapeBuffer(buffer.data(), buffer.size());
            return os.str();
        }
        if (stats) {
            if (replay.truncated_tail)
                ++stats->rejected;
            else
                ++stats->accepted;
        }
    }
    return std::nullopt;
}

std::optional<std::string>
fuzzTuneCorpusOne(const std::uint8_t *data, std::size_t size)
{
    std::string bytes(reinterpret_cast<const char *>(data), size);

    std::vector<tune::Observation> corpus;
    try {
        corpus = tune::decodeCorpus(bytes);
    } catch (const std::invalid_argument &) {
        return std::nullopt; // strict rejection is the expected path
    } catch (const std::exception &error) {
        return "decodeCorpus threw a non-invalid_argument exception: "
            + std::string(error.what());
    } catch (...) {
        return std::string("decodeCorpus threw a non-standard exception");
    }

    // Accepted: every observation must re-encode, and the rebuilt
    // image must decode back to the same observations, byte-stably.
    std::string rebuilt = tune::corpusHeader();
    try {
        for (const tune::Observation &observation : corpus)
            rebuilt += tune::encodeObservation(observation);
    } catch (const std::exception &error) {
        return "accepted observation fails to re-encode: "
            + std::string(error.what());
    }
    std::vector<tune::Observation> again;
    try {
        again = tune::decodeCorpus(rebuilt);
    } catch (const std::exception &error) {
        return "re-encoded corpus fails to decode: "
            + std::string(error.what());
    }
    if (again.size() != corpus.size())
        return std::string("re-encoded corpus changes the record count");
    for (std::size_t at = 0; at < corpus.size(); ++at) {
        if (again[at].size() != corpus[at].size())
            return std::string("re-encoded corpus changes a row count");
        for (std::size_t row = 0; row < corpus[at].size(); ++row) {
            // The loader rejects non-finite values, so == is exact.
            if (again[at][row].features != corpus[at][row].features
                || again[at][row].target_mhz
                       != corpus[at][row].target_mhz)
                return std::string(
                    "re-encoded corpus changes a sample");
        }
    }
    std::string stable = tune::corpusHeader();
    for (const tune::Observation &observation : again)
        stable += tune::encodeObservation(observation);
    if (stable != rebuilt)
        return std::string(
            "encode -> decode -> encode is not byte-stable");

    // Determinism: decoding the same bytes twice gives the same image.
    std::vector<tune::Observation> third = tune::decodeCorpus(bytes);
    if (third.size() != corpus.size())
        return std::string("decodeCorpus is not deterministic");
    return std::nullopt;
}

namespace {

/** A pristine corpus image of 1..4 valid observations. */
std::string
genCorpusImage(Rng &rng, std::size_t *records)
{
    std::string image = tune::corpusHeader();
    int count = static_cast<int>(rng.uniformInt(1, 4));
    if (records)
        *records = static_cast<std::size_t>(count);
    for (int r = 0; r < count; ++r) {
        tune::Observation observation;
        int rows = static_cast<int>(rng.uniformInt(1, 6));
        int features = static_cast<int>(rng.uniformInt(1, 40));
        for (int row = 0; row < rows; ++row) {
            tune::StageSample sample;
            for (int f = 0; f < features; ++f)
                sample.features.push_back(rng.uniform(-4.0, 4.0));
            sample.target_mhz = rng.uniform(200.0, 2000.0);
            observation.push_back(std::move(sample));
        }
        image += tune::encodeObservation(observation);
    }
    return image;
}

/** Bit flips, torn tails, dropped spans and spliced records. */
std::string
mutatedCorpusImage(Rng &rng)
{
    std::string image = genCorpusImage(rng, nullptr);
    int mutations = static_cast<int>(rng.uniformInt(1, 4));
    for (int m = 0; m < mutations && !image.empty(); ++m) {
        switch (rng.uniformInt(0, 3)) {
        case 0: { // flip one bit
            std::size_t at = rng.index(image.size());
            image[at] = static_cast<char>(
                static_cast<unsigned char>(image[at])
                ^ (1u << rng.index(8)));
            break;
        }
        case 1: // torn tail
            image.resize(rng.index(image.size() + 1));
            break;
        case 2: { // splice a random length/CRC header mid-stream
            std::size_t at = rng.index(image.size() + 1);
            for (int b = 0; b < 8; ++b)
                image.insert(image.begin()
                                 + static_cast<std::ptrdiff_t>(at),
                             static_cast<char>(rng.uniformInt(0, 255)));
            break;
        }
        default: { // delete a span
            std::size_t at = rng.index(image.size());
            std::size_t len = std::min<std::size_t>(
                static_cast<std::size_t>(rng.uniformInt(1, 24)),
                image.size() - at);
            image.erase(at, len);
            break;
        }
        }
    }
    return image;
}

} // namespace

std::optional<std::string>
runSeededCorpusFuzz(std::uint64_t seed, int iterations, FuzzStats *stats)
{
    for (int i = 0; i < iterations; ++i) {
        Rng rng(seed
                + static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL);
        std::vector<std::uint8_t> buffer;
        bool pristine = false;
        std::size_t records = 0;
        double kind = rng.uniform(0.0, 1.0);
        if (kind < 0.3) {
            pristine = true;
            std::string image = genCorpusImage(rng, &records);
            buffer.assign(image.begin(), image.end());
        } else if (kind < 0.8) {
            std::string image = mutatedCorpusImage(rng);
            buffer.assign(image.begin(), image.end());
        } else {
            buffer = randomBuffer(rng);
        }

        if (stats)
            ++stats->executed;
        std::optional<std::string> failure =
            fuzzTuneCorpusOne(buffer.data(), buffer.size());
        if (!failure && pristine) {
            // Strictness cuts both ways: a clean image must load.
            std::string image(buffer.begin(), buffer.end());
            if (tune::decodeCorpus(image).size() != records)
                failure = "a pristine corpus image did not load in "
                          "full";
        }
        if (failure) {
            std::ostringstream os;
            os << "corpus fuzz iteration " << i << " (seed " << seed
               << ") failed: " << *failure << "\nbuffer ("
               << buffer.size() << " bytes):\n"
               << escapeBuffer(buffer.data(), buffer.size());
            return os.str();
        }
        if (stats) {
            std::string image(buffer.begin(), buffer.end());
            try {
                tune::decodeCorpus(image);
                ++stats->accepted;
            } catch (...) {
                ++stats->rejected;
            }
        }
    }
    return std::nullopt;
}

} // namespace opdvfs::check
