/**
 * @file
 * Fuzz targets over the library's byte-level entry points, plus a
 * seeded fallback driver that runs them under plain ctest.
 *
 * Each target takes an arbitrary byte buffer and returns std::nullopt
 * when the library behaved acceptably (parsed cleanly, or rejected the
 * input with std::invalid_argument), and a failure message for every
 * crash-class misbehaviour: a foreign exception type, an accepted
 * input that does not survive a save/load round trip, or a
 * non-deterministic result.
 *
 * The same functions back the libFuzzer entry points in fuzz/ (built
 * with -DOPDVFS_BUILD_FUZZERS=ON under clang) and the seeded-random
 * driver below, so every finding reproduces in both harnesses.
 */

#ifndef OPDVFS_CHECK_FUZZ_H
#define OPDVFS_CHECK_FUZZ_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace opdvfs::check {

/**
 * Feed @p data to dvfs::loadStrategy.  Accepted inputs must round-trip
 * byte-stably and reload deterministically; rejected inputs must throw
 * std::invalid_argument and nothing else.
 */
std::optional<std::string> fuzzStrategyIoOne(const std::uint8_t *data,
                                             std::size_t size);

/**
 * Derive a workload/request from @p data and fingerprint it: the
 * digest must be deterministic, self-similarity exactly 1.0, features
 * finite, and the workload *name* must not enter the digest.
 */
std::optional<std::string> fuzzFingerprintOne(const std::uint8_t *data,
                                              std::size_t size);

/**
 * Feed @p data to the wire-protocol decoder (net::peelFrame +
 * payload codecs) as one byte stream.  Malformed bytes must be
 * rejected with WireError (an std::invalid_argument) and nothing
 * else — never a crash, hang or over-allocation; accepted request
 * payloads must re-encode byte-identically and accepted response
 * payloads must be encode -> decode -> encode stable.
 */
std::optional<std::string> fuzzWireOne(const std::uint8_t *data,
                                       std::size_t size);

/**
 * Feed @p data to serve::replayWalBuffer as a cache write-ahead-log
 * image.  Replay must never throw — a torn or corrupt tail ends it
 * with `truncated_tail` set and `valid_bytes` at the last good record
 * boundary (never past the buffer) — must be deterministic, and every
 * recovered entry must re-encode into a record that replays
 * byte-stably.
 */
std::optional<std::string> fuzzCacheWalOne(const std::uint8_t *data,
                                           std::size_t size);

/**
 * Feed @p data to tune::decodeCorpus as a surrogate-training-corpus
 * image.  The loader is strict (a corrupt corpus poisons every later
 * prediction): corruption must be rejected with std::invalid_argument
 * and nothing else, and an accepted corpus must re-encode into bytes
 * that decode to the same observations, stably and deterministically.
 */
std::optional<std::string> fuzzTuneCorpusOne(const std::uint8_t *data,
                                             std::size_t size);

/** Tallies from one seeded fuzz run. */
struct FuzzStats
{
    int executed = 0;
    /** Inputs the target parsed/processed successfully. */
    int accepted = 0;
    /** Inputs rejected with std::invalid_argument (strategy target). */
    int rejected = 0;
};

/** A fuzz target: bytes in, failure message out. */
using FuzzTarget = std::optional<std::string> (*)(const std::uint8_t *,
                                                  std::size_t);

/**
 * Seeded fallback driver: @p iterations buffers — mutated valid
 * strategy files, structured token soup and raw random bytes — fed to
 * @p target.  Returns the first failure, annotated with the iteration
 * and an escaped dump of the offending buffer.
 */
std::optional<std::string> runSeededFuzz(FuzzTarget target,
                                         std::uint64_t seed,
                                         int iterations,
                                         FuzzStats *stats = nullptr);

/**
 * Seeded driver for the wire target: valid request/response frames
 * (sometimes several concatenated), mutated frames (bit flips,
 * truncations, header splices), chaos-mutated frames (the single-bit
 * corruptions and mid-frame cuts net::ChaosProxy injects into live
 * streams) and raw random bytes.  `accepted` counts buffers whose
 * leading frame peeled and decoded; `rejected` counts everything the
 * decoder refused.
 */
std::optional<std::string> runSeededWireFuzz(std::uint64_t seed,
                                             int iterations,
                                             FuzzStats *stats = nullptr);

/**
 * Seeded driver for the WAL target: pristine logs of valid records
 * (which must replay in full), crash-mutated logs (bit flips,
 * truncations, deletions — recovered entries must be a digest-prefix
 * of the original log) and raw random bytes.  `accepted` counts
 * buffers that replayed without truncation.
 */
std::optional<std::string> runSeededWalFuzz(std::uint64_t seed,
                                            int iterations,
                                            FuzzStats *stats = nullptr);

/**
 * Seeded driver for the tune-corpus target: pristine corpora of valid
 * observations (which must be accepted in full), mutated corpora (bit
 * flips, truncations, record splices) and raw random bytes.
 * `accepted` counts buffers the loader parsed; `rejected` counts the
 * rest.
 */
std::optional<std::string> runSeededCorpusFuzz(std::uint64_t seed,
                                               int iterations,
                                               FuzzStats *stats = nullptr);

} // namespace opdvfs::check

#endif // OPDVFS_CHECK_FUZZ_H
