#include "check/oracles.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "dvfs/evaluator.h"
#include "dvfs/genetic.h"
#include "math/piecewise_linear.h"
#include "power/offline_calibration.h"
#include "power/online_calibration.h"
#include "serve/service.h"
#include "trace/workload_runner.h"

namespace opdvfs::check {

namespace {

/** Failure message builder with full float precision. */
class Fail
{
  public:
    Fail() { os_.precision(17); }

    template <typename T>
    Fail &
    operator<<(const T &value)
    {
        os_ << value;
        return *this;
    }

    operator std::optional<std::string>() const { return os_.str(); }

  private:
    std::ostringstream os_;
};

bool
closeRel(double a, double b, double rel)
{
    return std::abs(a - b) <= rel * std::max(std::abs(a), std::abs(b))
        + 1e-300;
}

} // namespace

std::optional<std::string>
checkPerfCurveShape(const perf::OpPerfModel &model,
                    const npu::FreqTable &table)
{
    const std::vector<double> freqs = table.frequenciesMhz();
    std::vector<double> seconds;
    std::vector<double> cycles; // in seconds * GHz
    seconds.reserve(freqs.size());
    cycles.reserve(freqs.size());
    for (double f : freqs) {
        double t = model.predictSeconds(f);
        if (!std::isfinite(t))
            return Fail() << "op " << model.op_id << ": T(" << f
                          << ") is not finite";
        if (t <= 0.0)
            return Fail() << "op " << model.op_id << ": T(" << f
                          << ") = " << t << " is not positive";
        seconds.push_back(t);
        cycles.push_back(t * f / 1000.0);
    }

    // Cycle(f) = f * T(f) never decreases with frequency: a faster
    // core cannot need fewer cycles for the same work (Eqs. 5-8).
    for (std::size_t i = 1; i < freqs.size(); ++i) {
        if (cycles[i] < cycles[i - 1] * (1.0 - 1e-9) - 1e-15) {
            return Fail() << "op " << model.op_id << ": cycles decrease "
                          << cycles[i - 1] << " -> " << cycles[i]
                          << " from " << freqs[i - 1] << " to " << freqs[i]
                          << " MHz";
        }
    }

    // Cycle(f) is convex (sums and maxima of affine terms).
    if (!math::isConvexSamples(freqs, cycles, 1e-7)) {
        return Fail() << "op " << model.op_id
                      << ": cycle curve is not convex over the table";
    }

    // No operating point is slower than the slowest frequency: T is
    // convex with T(f_min) interpolating the slowest measurement.
    for (std::size_t i = 1; i < freqs.size(); ++i) {
        if (seconds[i] > seconds[0] * (1.0 + 1e-9) + 1e-15) {
            return Fail() << "op " << model.op_id << ": T(" << freqs[i]
                          << ") = " << seconds[i] << " exceeds T(f_min) = "
                          << seconds[0];
        }
    }
    return std::nullopt;
}

std::optional<std::string>
checkFitRecovery(const SyntheticWorkload &workload,
                 const npu::FreqTableConfig &freq)
{
    if (workload.ops.empty())
        return std::nullopt;
    npu::FreqTable table(freq);

    // Two noise-free profiles at the table extremes.
    perf::PerfModelRepository repo;
    repo.addProfile(table.minMhz(), workload.recordsAt(table.minMhz()));
    repo.addProfile(table.maxMhz(), workload.recordsAt(table.maxMhz()));

    // The synthetic ground truth T(f) = const + cycles/f is exactly
    // the StallOverF family, so its two-point fit must recover every
    // operator's true duration at *every* table frequency.
    perf::PerfBuildOptions stall;
    stall.kind = perf::FitFunction::StallOverF;
    repo.fitAll(stall);
    for (const SyntheticOp &op : workload.ops) {
        const perf::OpPerfModel *model = repo.find(op.id);
        if (!model)
            return Fail() << "op " << op.id << ": no fitted model";
        for (double f : table.frequenciesMhz()) {
            double truth = op.durationAt(f);
            double predicted = model->predictSeconds(f);
            if (!closeRel(predicted, truth, 1e-6)) {
                return Fail()
                    << "op " << op.id << " (" << op.type
                    << "): StallOverF fit predicts " << predicted
                    << " s at " << f << " MHz, ground truth " << truth;
            }
        }
        if (auto failure = checkPerfCurveShape(*model, table))
            return Fail() << "StallOverF: " << *failure;
    }

    // The production family (QuadOverF) must interpolate the profiled
    // points exactly (closed-form two-point solve) and keep the curve
    // shape between them.
    perf::PerfBuildOptions quad;
    quad.kind = perf::FitFunction::QuadOverF;
    repo.fitAll(quad);
    for (const SyntheticOp &op : workload.ops) {
        const perf::OpPerfModel *model = repo.find(op.id);
        if (!model)
            return Fail() << "op " << op.id << ": no fitted model";
        for (double f : {table.minMhz(), table.maxMhz()}) {
            double truth = op.durationAt(f);
            double predicted = model->predictSeconds(f);
            if (!closeRel(predicted, truth, 1e-6)) {
                return Fail()
                    << "op " << op.id << " (" << op.type
                    << "): QuadOverF fit misses its own fit point: "
                    << predicted << " s at " << f << " MHz, measured "
                    << truth;
            }
        }
        if (auto failure = checkPerfCurveShape(*model, table))
            return Fail() << "QuadOverF: " << *failure;
    }
    return std::nullopt;
}

std::optional<std::string>
checkPowerInvariants(const power::PowerModel &model,
                     const power::OpPowerModel &op)
{
    const npu::FreqTable &table = model.table();
    double prev_aicore = 0.0;
    double prev_soc = 0.0;
    double prev_x = -1.0;
    for (double f : table.frequenciesMhz()) {
        power::PowerPrediction p = model.predict(op, f);
        if (!std::isfinite(p.aicore_watts) || !std::isfinite(p.soc_watts)
            || !std::isfinite(p.delta_t)) {
            return Fail() << "non-finite prediction at " << f << " MHz";
        }
        if (p.aicore_watts <= 0.0)
            return Fail() << "AICore power " << p.aicore_watts << " at "
                          << f << " MHz is not positive";
        if (p.soc_watts < p.aicore_watts) {
            return Fail() << "SoC power " << p.soc_watts
                          << " below AICore power " << p.aicore_watts
                          << " at " << f << " MHz";
        }
        if (p.delta_t < 0.0)
            return Fail() << "negative temperature rise " << p.delta_t
                          << " at " << f << " MHz";

        // Dynamic power scales with f V^2 and V never falls with f,
        // so total power is monotone along the V-F curve (Eq. 11).
        double volts = table.voltageFor(f);
        double x = f * volts * volts;
        if (x < prev_x * (1.0 - 1e-12))
            return Fail() << "f V^2 not monotone along the table at " << f
                          << " MHz";
        if (p.aicore_watts < prev_aicore * (1.0 - 1e-9)) {
            return Fail() << "AICore power falls from " << prev_aicore
                          << " to " << p.aicore_watts << " at " << f
                          << " MHz";
        }
        if (p.soc_watts < prev_soc * (1.0 - 1e-9)) {
            return Fail() << "SoC power falls from " << prev_soc << " to "
                          << p.soc_watts << " at " << f << " MHz";
        }
        prev_aicore = p.aicore_watts;
        prev_soc = p.soc_watts;
        prev_x = x;
    }
    return std::nullopt;
}

std::optional<std::string>
checkThermalFixPoint(const power::PowerModel &model,
                     const power::OpPowerModel &op)
{
    const power::CalibratedConstants &constants = model.constants();
    for (double f : model.table().frequenciesMhz()) {
        power::PowerPrediction p = model.predict(op, f);
        if (p.iterations < 1 || p.iterations > 16) {
            return Fail() << "fix point used " << p.iterations
                          << " iterations at " << f << " MHz";
        }
        // Converged means the Eq. 15 residual is inside the stopping
        // threshold: dT tracks k * Psoc to better than 0.01 K * q.
        double residual =
            std::abs(constants.k_per_watt * p.soc_watts - p.delta_t);
        if (residual > 0.01) {
            return Fail() << "fix-point residual |k Psoc - dT| = "
                          << residual << " K at " << f
                          << " MHz (iterations " << p.iterations << ")";
        }
        // The prediction is a pure function: evaluating again must
        // reproduce the fix point bit for bit.
        power::PowerPrediction q = model.predict(op, f);
        if (q.soc_watts != p.soc_watts || q.aicore_watts != p.aicore_watts
            || q.delta_t != p.delta_t || q.iterations != p.iterations) {
            return Fail() << "fix point is not deterministic at " << f
                          << " MHz";
        }
    }
    return std::nullopt;
}

std::optional<std::string>
checkThermalRelaxation(const npu::ThermalConfig &config,
                       double p_soc_watts)
{
    npu::ThermalModel model(config);
    double equilibrium = model.equilibrium(p_soc_watts);
    if (!std::isfinite(equilibrium))
        return Fail() << "non-finite equilibrium";
    if (equilibrium < config.ambient_celsius - 1e-9) {
        return Fail() << "equilibrium " << equilibrium
                      << " below ambient " << config.ambient_celsius
                      << " under " << p_soc_watts << " W";
    }

    // Monotone approach without overshoot.
    double step = config.time_constant_s / 2.0;
    double previous = model.temperature();
    for (int i = 0; i < 8; ++i) {
        model.advance(step, p_soc_watts);
        double now = model.temperature();
        if (now < previous - 1e-9)
            return Fail() << "temperature fell " << previous << " -> "
                          << now << " while heating";
        if (now > equilibrium + 1e-9)
            return Fail() << "temperature " << now
                          << " overshot equilibrium " << equilibrium;
        previous = now;
    }

    // The update is the exact first-order solution, so two half steps
    // compose to one full step.
    npu::ThermalModel halves(config);
    npu::ThermalModel whole(config);
    halves.advance(step, p_soc_watts);
    halves.advance(step, p_soc_watts);
    whole.advance(2.0 * step, p_soc_watts);
    if (!closeRel(halves.temperature() - config.ambient_celsius + 1.0,
                  whole.temperature() - config.ambient_celsius + 1.0,
                  1e-9)) {
        return Fail() << "step composition broken: two half steps give "
                      << halves.temperature() << ", one full step "
                      << whole.temperature();
    }

    // Idempotence at the fix point: from (numerical) equilibrium,
    // advancing further does not move the temperature.
    npu::ThermalModel settled(config);
    settled.advance(100.0 * config.time_constant_s, p_soc_watts);
    double at_equilibrium = settled.temperature();
    settled.advance(config.time_constant_s, p_soc_watts);
    if (std::abs(settled.temperature() - at_equilibrium) > 1e-6) {
        return Fail() << "equilibrium not idempotent: " << at_equilibrium
                      << " -> " << settled.temperature();
    }
    return std::nullopt;
}

std::optional<std::string>
checkPreprocessInvariants(const std::vector<trace::OpRecord> &records,
                          const dvfs::PreprocessOptions &options)
{
    if (records.empty())
        return std::nullopt;
    dvfs::PreprocessResult result = dvfs::preprocess(records, options);

    if (result.bottlenecks.size() != records.size()) {
        return Fail() << "bottlenecks " << result.bottlenecks.size()
                      << " != records " << records.size();
    }
    if (result.stages.empty())
        return Fail() << "no stages from " << records.size() << " records";
    if (result.lfcCount() + result.hfcCount() != result.stages.size())
        return Fail() << "LFC + HFC counts do not add up";

    // Stages partition the profiled timeline without gaps or overlap
    // (the generated streams are contiguous).
    Tick cursor = records.front().start;
    for (std::size_t s = 0; s < result.stages.size(); ++s) {
        const dvfs::Stage &stage = result.stages[s];
        if (stage.duration <= 0)
            return Fail() << "stage " << s << " has non-positive duration";
        if (stage.start != cursor) {
            return Fail() << "stage " << s << " starts at " << stage.start
                          << ", expected " << cursor
                          << " (gap or overlap)";
        }
        cursor = stage.start + stage.duration;
    }
    if (cursor != records.back().end) {
        return Fail() << "stages end at " << cursor
                      << ", records end at " << records.back().end;
    }

    // Operators partition the stream in order.
    std::size_t next_record = 0;
    for (std::size_t s = 0; s < result.stages.size(); ++s) {
        const dvfs::Stage &stage = result.stages[s];
        if (stage.op_ids.empty())
            return Fail() << "stage " << s << " holds no operators";
        if (stage.first_op != next_record) {
            return Fail() << "stage " << s << " first_op " << stage.first_op
                          << ", expected " << next_record;
        }
        for (std::uint64_t op_id : stage.op_ids) {
            if (next_record >= records.size())
                return Fail() << "stages hold more ops than records";
            if (records[next_record].op_id != op_id) {
                return Fail() << "stage " << s << " lists op " << op_id
                              << " where the stream has op "
                              << records[next_record].op_id;
            }
            ++next_record;
        }
    }
    if (next_record != records.size()) {
        return Fail() << "stages cover " << next_record << " of "
                      << records.size() << " records";
    }

    // FAI floor (Sect. 6.2 step 4): merging leaves no stage shorter
    // than the adjustment interval, except a single-stage result made
    // of one short iteration.  Re-running the merge on its own output
    // therefore changes nothing (idempotence).
    for (std::size_t s = 0; s < result.stages.size(); ++s) {
        if (result.stages[s].duration < options.fai
            && result.stages.size() > 1) {
            return Fail() << "stage " << s << " duration "
                          << result.stages[s].duration
                          << " is under the FAI " << options.fai;
        }
    }

    for (std::size_t s = 0; s < result.stages.size(); ++s) {
        const dvfs::Stage &stage = result.stages[s];
        // Majority vote: the merged kind follows the dominant time.
        bool expect_high =
            stage.sensitive_seconds >= stage.insensitive_seconds;
        if (stage.high_frequency != expect_high) {
            return Fail() << "stage " << s << " kind "
                          << (stage.high_frequency ? "hfc" : "lfc")
                          << " contradicts sensitive/insensitive split "
                          << stage.sensitive_seconds << " / "
                          << stage.insensitive_seconds;
        }
    }

    // Determinism: preprocessing is a pure function of its input.
    dvfs::PreprocessResult again = dvfs::preprocess(records, options);
    if (again.stages.size() != result.stages.size())
        return Fail() << "preprocess is not deterministic (stage count)";
    for (std::size_t s = 0; s < result.stages.size(); ++s) {
        if (again.stages[s].start != result.stages[s].start
            || again.stages[s].duration != result.stages[s].duration
            || again.stages[s].high_frequency
                != result.stages[s].high_frequency
            || again.stages[s].op_ids != result.stages[s].op_ids) {
            return Fail() << "preprocess is not deterministic (stage " << s
                          << ")";
        }
    }
    return std::nullopt;
}

std::optional<std::string>
checkGaOptimality(const TinyProblem &problem)
{
    npu::FreqTable table(problem.freq);
    power::PowerModel power_model(problem.constants, table);
    dvfs::StageEvaluator evaluator(problem.stages, problem.perf,
                                   power_model, problem.op_power, table);
    const std::size_t stages = evaluator.stageCount();
    const std::size_t freqs = evaluator.freqCount();
    if (stages == 0)
        return Fail() << "tiny problem produced no stages";

    dvfs::StrategyEvaluation baseline = evaluator.evaluateBaseline();
    double per_lower_bound = 1e-6 / baseline.seconds
        * (1.0 - problem.perf_loss_target);

    // Exhaustive enumeration: the ground-truth optimum.
    std::vector<std::uint8_t> genome(stages, 0);
    double best_exhaustive = -1.0;
    while (true) {
        double score = dvfs::strategyScore(evaluator.evaluate(genome),
                                           per_lower_bound);
        best_exhaustive = std::max(best_exhaustive, score);
        std::size_t digit = 0;
        while (digit < stages) {
            if (++genome[digit] < freqs)
                break;
            genome[digit] = 0;
            ++digit;
        }
        if (digit == stages)
            break;
    }

    dvfs::GaOptions options;
    options.population = 24;
    options.generations = 32;
    options.refine_sweeps = 4;
    options.perf_loss_target = problem.perf_loss_target;
    options.seed = 11;
    dvfs::GaResult ga =
        dvfs::searchStrategy(evaluator, problem.stages, options);

    // Soundness: the GA can never beat the true optimum.
    if (ga.best_score > best_exhaustive * (1.0 + 1e-9) + 1e-12) {
        return Fail() << "GA score " << ga.best_score
                      << " exceeds the exhaustive optimum "
                      << best_exhaustive;
    }
    // Completeness: on tiny instances the search budget covers the
    // whole genome space many times over, so it finds the optimum.
    if (ga.best_score < best_exhaustive * (1.0 - 1e-9) - 1e-12) {
        return Fail() << "GA score " << ga.best_score
                      << " misses the exhaustive optimum "
                      << best_exhaustive << " (" << stages << " stages x "
                      << freqs << " freqs)";
    }

    // Reported artefacts are consistent: the best genome re-evaluates
    // to the reported score, and the history never regresses.
    double rescored = dvfs::strategyScore(evaluator.evaluate(ga.best_genome),
                                          per_lower_bound);
    if (rescored != ga.best_score) {
        return Fail() << "best genome rescores to " << rescored
                      << ", reported " << ga.best_score;
    }
    if (ga.best_genome.size() != stages || ga.best_mhz.size() != stages)
        return Fail() << "best genome/frequency shape mismatch";
    for (std::size_t s = 0; s < stages; ++s) {
        if (ga.best_mhz[s] != evaluator.frequenciesMhz()[ga.best_genome[s]])
            return Fail() << "best_mhz[" << s << "] does not match genome";
    }
    for (std::size_t g = 1; g < ga.score_history.size(); ++g) {
        if (ga.score_history[g] < ga.score_history[g - 1]) {
            return Fail() << "score history regresses at generation " << g;
        }
    }
    if (ga.best_score < ga.pre_refine_score)
        return Fail() << "refinement lowered the score";
    return std::nullopt;
}

std::optional<std::string>
checkStrategyRoundTrip(const dvfs::Strategy &strategy,
                       const npu::FreqTable *table)
{
    std::ostringstream first;
    dvfs::saveStrategy(strategy, first);

    dvfs::Strategy loaded;
    try {
        std::istringstream is(first.str());
        loaded = dvfs::loadStrategy(is, table);
    } catch (const std::exception &error) {
        return Fail() << "saved strategy fails to load: " << error.what();
    }

    if (loaded.stages.size() != strategy.stages.size()
        || loaded.mhz_per_stage != strategy.mhz_per_stage
        || loaded.plan.triggers.size() != strategy.plan.triggers.size()
        || loaded.plan.initial_mhz != strategy.plan.initial_mhz
        || loaded.meta.has_value() != strategy.meta.has_value()) {
        return Fail() << "loaded strategy differs from the saved one";
    }

    std::ostringstream second;
    dvfs::saveStrategy(loaded, second);
    if (first.str() != second.str()) {
        return Fail() << "save -> load -> save is not byte-stable:\n"
                      << "first:\n" << first.str() << "second:\n"
                      << second.str();
    }
    return std::nullopt;
}

const npu::NpuConfig &
differentialChip()
{
    static const npu::NpuConfig chip = [] {
        npu::NpuConfig config;
        // Short package time constant: thermal steady state inside a
        // sub-second warm-up, so each differential case stays cheap
        // while the equilibrium (what the models predict) is exactly
        // the stock device's — the fixed point does not depend on how
        // fast the exponential approaches it.
        config.thermal.time_constant_s = 0.02;
        return config;
    }();
    return chip;
}

const power::CalibratedConstants &
differentialConstants()
{
    static const power::CalibratedConstants constants =
        power::calibrateOffline(differentialChip());
    return constants;
}

namespace {

trace::RunOptions
noiseFreeRun(double mhz, std::uint64_t seed)
{
    trace::RunOptions options;
    options.initial_mhz = mhz;
    // 7.5 thermal time constants on the differential chip: the die is
    // within e^-7.5 (~0.05%) of steady state when measurement starts.
    options.warmup_seconds = 0.15;
    options.profiler_noise.duration_sigma = 0.0;
    options.profiler_noise.ratio_sigma = 0.0;
    options.sampler_noise.power_sigma = 0.0;
    options.sampler_noise.temperature_step = 0.0;
    options.seed = seed;
    return options;
}

} // namespace

std::optional<std::string>
checkModelVsSimulator(const models::Workload &workload, std::uint64_t seed)
{
    if (workload.iteration.empty())
        return std::nullopt;
    const npu::NpuConfig &chip = differentialChip();
    npu::FreqTable table(chip.freq);
    trace::WorkloadRunner runner(chip);

    // Profile noise-free at the paper's three fit points (table
    // bottom, middle, top), validate at a held-out frequency between
    // the middle and the top.  Two fit points are not enough here: a
    // quadratic-over-f curve pinned only at the endpoints undershoots
    // constant-time operators by up to (f1+f2-2*sqrt(f1*f2))/(f1+f2)
    // (~4.2% for 1000/1800 MHz) in the middle of the range, which is
    // an artefact of the fit family, not a model/simulator mismatch.
    std::vector<double> freqs = table.frequenciesMhz();
    std::size_t mid_index = freqs.size() / 2;
    std::size_t held_index = (mid_index + freqs.size() - 1) / 2;
    if (held_index <= mid_index || held_index + 1 >= freqs.size())
        return std::nullopt; // table too small for a held-out point
    double f_mid = freqs[mid_index];
    double f_held = freqs[held_index];

    trace::RunResult low =
        runner.run(workload, noiseFreeRun(1000.0, seed));
    trace::RunResult high =
        runner.run(workload, noiseFreeRun(1800.0, seed + 1));
    trace::RunResult mid =
        runner.run(workload, noiseFreeRun(f_mid, seed + 2));
    trace::RunResult held =
        runner.run(workload, noiseFreeRun(f_held, seed + 3));

    perf::PerfModelRepository repo;
    repo.addProfile(1000.0, low.records);
    repo.addProfile(f_mid, mid.records);
    repo.addProfile(1800.0, high.records);
    repo.fitAll();

    std::vector<perf::PerfError> errors =
        repo.evaluate(f_held, held.records);
    if (!errors.empty()) {
        double sum = 0.0;
        for (const perf::PerfError &e : errors)
            sum += e.relative_error;
        double mean = sum / static_cast<double>(errors.size());
        if (mean > kPerfErrorBand) {
            return Fail() << "mean per-op time error " << mean << " at "
                          << f_held << " MHz exceeds the paper band "
                          << kPerfErrorBand << " (" << errors.size()
                          << " ops)";
        }
    }

    // Power: calibrate alpha from the endpoint runs (Sect. 7.3
    // protocol), predict the middle frequency, compare with the
    // simulator's energy-counter average.  Mid-table is where the
    // interpolation is tightest; near the top of the table leakage
    // feedback drifts the aggregate-alpha prediction out of band.
    power::PowerModel model(differentialConstants(), table);
    power::OpPowerModel alpha =
        power::OnlinePowerCalibrator::calibrateWorkloadAggregate(
            model, {{1000.0, &low}, {1800.0, &high}});
    power::PowerPrediction predicted = model.predict(alpha, f_mid);
    if (mid.soc_avg_w > 0.0) {
        double error = std::abs(predicted.soc_watts - mid.soc_avg_w)
            / mid.soc_avg_w;
        if (error > kPowerErrorBand) {
            return Fail() << "SoC power error " << error << " at " << f_mid
                          << " MHz exceeds the paper band "
                          << kPowerErrorBand << " (predicted "
                          << predicted.soc_watts << " W, measured "
                          << mid.soc_avg_w << " W)";
        }
    }
    return std::nullopt;
}

std::optional<std::string>
checkServiceCacheEquivalence(const models::Workload &workload,
                             std::uint64_t seed)
{
    if (workload.iteration.empty())
        return std::nullopt;

    serve::ServiceOptions options;
    options.pipeline.chip = differentialChip();
    options.pipeline.constants = differentialConstants();
    options.pipeline.warmup_seconds = 0.1;
    options.pipeline.ga.population = 16;
    options.pipeline.ga.generations = 9;
    options.pipeline.ga.refine_sweeps = 2;
    options.workers = 1;
    options.parallel_fitness = false;

    serve::StrategyService service(options);
    serve::StrategyRequest request;
    request.workload = workload;
    request.seed = seed;

    serve::StrategyResponse cold = service.submit(request).get();
    if (cold.provenance != serve::Provenance::Cold) {
        return Fail() << "first request served as "
                      << serve::provenanceToken(cold.provenance);
    }
    if (!cold.strategy.meta)
        return Fail() << "cold response carries no meta";

    // Identical request: an exact hit returning the cached strategy
    // byte for byte (only the provenance token may differ).
    serve::StrategyResponse hit = service.submit(request).get();
    if (hit.provenance != serve::Provenance::ExactHit) {
        return Fail() << "repeated request served as "
                      << serve::provenanceToken(hit.provenance)
                      << ", expected exact-hit";
    }
    if (hit.ga.best_score != cold.ga.best_score) {
        return Fail() << "exact hit rescored: " << hit.ga.best_score
                      << " vs cold " << cold.ga.best_score;
    }
    dvfs::Strategy cold_strategy = cold.strategy;
    dvfs::Strategy hit_strategy = hit.strategy;
    if (cold_strategy.meta && hit_strategy.meta)
        hit_strategy.meta->provenance = cold_strategy.meta->provenance;
    std::ostringstream cold_text, hit_text;
    dvfs::saveStrategy(cold_strategy, cold_text);
    dvfs::saveStrategy(hit_strategy, hit_text);
    if (cold_text.str() != hit_text.str()) {
        return Fail() << "exact hit differs from the cold strategy:\n"
                      << "cold:\n" << cold_text.str() << "hit:\n"
                      << hit_text.str();
    }

    // After a model epoch advance the same digest is stale: it must be
    // recomputed as a warm start seeded by the old answer (similarity
    // 1.0 by construction) and can only match or beat the donor.
    service.advanceModelEpoch();
    serve::StrategyResponse warm = service.submit(request).get();
    if (warm.provenance != serve::Provenance::WarmStart) {
        return Fail() << "post-epoch request served as "
                      << serve::provenanceToken(warm.provenance)
                      << ", expected warm-start";
    }
    if (warm.similarity != 1.0) {
        return Fail() << "stale-donor warm start reports similarity "
                      << warm.similarity << ", expected 1.0";
    }
    if (warm.ga.best_score < cold.ga.best_score * (1.0 - 1e-12)) {
        return Fail() << "warm start scored " << warm.ga.best_score
                      << ", below its donor " << cold.ga.best_score;
    }
    if (warm.fingerprint.digest != cold.fingerprint.digest)
        return Fail() << "digest changed across model epochs";

    npu::FreqTable table(options.pipeline.chip.freq);
    for (const serve::StrategyResponse *response : {&cold, &hit, &warm}) {
        try {
            dvfs::validateStrategy(response->strategy, table);
        } catch (const std::exception &error) {
            return Fail() << serve::provenanceToken(response->provenance)
                          << " strategy fails device validation: "
                          << error.what();
        }
    }
    return std::nullopt;
}

} // namespace opdvfs::check
