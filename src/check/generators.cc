#include "check/generators.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "npu/memory_system.h"
#include "ops/op_factory.h"

namespace opdvfs::check {

namespace {

/** Round to three significant-ish decimals so literals stay readable. */
double
pick(Rng &rng, double lo, double hi)
{
    return rng.uniform(lo, hi);
}

trace::OpRecord
recordFor(const SyntheticOp &op, Tick start, double mhz)
{
    trace::OpRecord r;
    r.op_id = op.id;
    r.type = op.type;
    r.category = op.category;
    r.start = start;
    double seconds = op.durationAt(mhz);
    r.end = start + std::max<Tick>(secondsToTicks(seconds), 1);
    r.duration_s = seconds;
    r.f_mhz = mhz;
    if (op.category == npu::OpCategory::Compute) {
        // Ratio sums above 1 so classification lands on the dominant
        // pipe (core bound vs uncore bound), as in the unit tests.
        if (op.sensitive) {
            r.ratios.cube = 0.95;
            r.ratios.mte2 = 0.30;
        } else {
            r.ratios.mte2 = 0.95;
            r.ratios.vector = 0.30;
        }
    }
    return r;
}

} // namespace

npu::FreqTableConfig
genFreqTableConfig(Rng &rng)
{
    npu::FreqTableConfig config;
    config.step_mhz = static_cast<double>(rng.uniformInt(1, 8)) * 25.0;
    config.min_mhz = static_cast<double>(rng.uniformInt(16, 60)) * 25.0;
    int extra_points = static_cast<int>(rng.uniformInt(1, 8));
    config.max_mhz = config.min_mhz + config.step_mhz * extra_points;
    // Knee anywhere in (or just outside) the range: all-flat and
    // all-linear voltage curves are both legal firmware shapes.
    config.knee_mhz = pick(rng, config.min_mhz - config.step_mhz,
                           config.max_mhz + config.step_mhz);
    config.base_volts = pick(rng, 0.55, 0.9);
    config.volts_per_mhz = pick(rng, 0.0, 0.8e-3);
    return config;
}

npu::NpuConfig
genChipConfig(Rng &rng)
{
    npu::NpuConfig config;
    config.freq = genFreqTableConfig(rng);
    config.initial_mhz = config.freq.max_mhz;

    config.aicore_power.beta = pick(rng, 1.0e-9, 8.0e-9);
    config.aicore_power.theta = pick(rng, 2.0, 15.0);
    config.aicore_power.gamma = pick(rng, 0.05, 0.3);

    config.uncore_power.idle_watts = pick(rng, 60.0, 180.0);
    config.uncore_power.active_watts = pick(rng, 20.0, 90.0);
    config.uncore_power.gamma = pick(rng, 0.3, 1.6);
    config.uncore_power.dynamic_fraction = pick(rng, 0.2, 0.8);

    config.thermal.ambient_celsius = pick(rng, 15.0, 40.0);
    // k * gamma_soc * V stays well under 1: the fix point contracts.
    config.thermal.k_per_watt = pick(rng, 0.05, 0.22);
    config.thermal.time_constant_s = pick(rng, 2.0, 16.0);
    return config;
}

power::CalibratedConstants
genConstants(Rng &rng)
{
    power::CalibratedConstants constants;
    constants.beta_aicore = pick(rng, 1.0e-9, 8.0e-9);
    constants.theta_aicore = pick(rng, 2.0, 15.0);
    constants.beta_soc = constants.beta_aicore + pick(rng, 0.0, 4.0e-9);
    constants.theta_soc = pick(rng, 80.0, 220.0);
    constants.gamma_aicore = pick(rng, 0.05, 0.3);
    constants.gamma_soc = constants.gamma_aicore + pick(rng, 0.2, 1.6);
    constants.k_per_watt = pick(rng, 0.05, 0.22);
    constants.ambient_c = pick(rng, 15.0, 40.0);
    return constants;
}

power::OpPowerModel
genOpPower(Rng &rng)
{
    power::OpPowerModel op;
    op.alpha_aicore = pick(rng, 0.0, 5.0e-10);
    op.alpha_soc = op.alpha_aicore + pick(rng, 0.0, 3.0e-10);
    return op;
}

double
SyntheticOp::durationAt(double mhz) const
{
    if (category != npu::OpCategory::Compute)
        return const_seconds;
    return const_seconds + cycle_seconds_ghz / (mhz / 1000.0);
}

std::vector<trace::OpRecord>
SyntheticWorkload::recordsAt(double mhz) const
{
    std::vector<trace::OpRecord> records;
    records.reserve(ops.size());
    Tick t = 0;
    for (const SyntheticOp &op : ops) {
        records.push_back(recordFor(op, t, mhz));
        t = records.back().end;
    }
    return records;
}

SyntheticWorkload
genSyntheticWorkload(Rng &rng, int min_ops, int max_ops)
{
    SyntheticWorkload workload;
    int count = static_cast<int>(rng.uniformInt(min_ops, max_ops));
    workload.ops.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        SyntheticOp op;
        op.id = static_cast<std::uint64_t>(i);
        double kind = rng.uniform(0.0, 1.0);
        if (kind < 0.70) {
            op.category = npu::OpCategory::Compute;
            op.sensitive = rng.chance(0.6);
            op.type = op.sensitive ? "PropCore" : "PropUncore";
            op.const_seconds = pick(rng, 20e-6, 2e-3);
            // Sensitive ops owe most of their time to core cycles;
            // insensitive (Ld/St-bound) ops keep a small cycle part.
            op.cycle_seconds_ghz = op.sensitive ? pick(rng, 0.5e-3, 8e-3)
                                                : pick(rng, 0.0, 0.2e-3);
        } else if (kind < 0.82) {
            op.category = npu::OpCategory::Aicpu;
            op.type = "PropAicpu";
            op.const_seconds = pick(rng, 0.2e-3, 4e-3);
        } else if (kind < 0.92) {
            op.category = npu::OpCategory::Communication;
            op.type = "PropAllReduce";
            op.const_seconds = pick(rng, 0.2e-3, 6e-3);
        } else {
            op.category = npu::OpCategory::Idle;
            op.type = "PropIdle";
            op.const_seconds = pick(rng, 0.1e-3, 3e-3);
        }
        op.alpha_aicore = pick(rng, 0.0, 5.0e-10);
        op.alpha_soc = op.alpha_aicore + pick(rng, 0.0, 3.0e-10);
        workload.ops.push_back(std::move(op));
    }
    return workload;
}

TinyProblem
genTinyProblem(Rng &rng, int max_stages, int max_freqs)
{
    TinyProblem problem;

    // A small table: 2..max_freqs points.
    problem.freq = genFreqTableConfig(rng);
    int points = static_cast<int>(
        rng.uniformInt(2, std::max(2, max_freqs)));
    problem.freq.max_mhz =
        problem.freq.min_mhz + problem.freq.step_mhz * (points - 1);

    problem.constants = genConstants(rng);
    problem.perf_loss_target = pick(rng, 0.005, 0.08);

    npu::FreqTable table(problem.freq);
    double f_max = table.maxMhz();

    // Alternate sensitivity runs; a tiny FAI keeps every run its own
    // stage, so the stage count is exactly the run count.
    int stage_target =
        static_cast<int>(rng.uniformInt(1, std::max(1, max_stages)));
    std::uint64_t id = 0;
    for (int s = 0; s < stage_target; ++s) {
        int ops_in_stage = static_cast<int>(rng.uniformInt(1, 3));
        bool sensitive = s % 2 == 0;
        for (int o = 0; o < ops_in_stage; ++o) {
            SyntheticOp op;
            op.id = id++;
            op.category = npu::OpCategory::Compute;
            op.sensitive = sensitive;
            op.type = sensitive ? "PropCore" : "PropUncore";
            op.const_seconds = pick(rng, 0.2e-3, 2e-3);
            op.cycle_seconds_ghz = sensitive ? pick(rng, 1e-3, 8e-3)
                                             : pick(rng, 0.0, 0.2e-3);
            op.alpha_aicore = pick(rng, 0.0, 5.0e-10);
            op.alpha_soc = op.alpha_aicore + pick(rng, 0.0, 3.0e-10);
            problem.workload.ops.push_back(std::move(op));
        }
    }

    dvfs::PreprocessOptions prep;
    prep.fai = kTicksPerUs;
    problem.stages =
        dvfs::preprocess(problem.workload.recordsAt(f_max), prep).stages;

    // Two-point noise-free profiles; QuadOverF recovers the synthetic
    // T(f) = const + cycles/f exactly (a = const, c = cycles term).
    problem.perf.addProfile(table.minMhz(),
                            problem.workload.recordsAt(table.minMhz()));
    problem.perf.addProfile(f_max, problem.workload.recordsAt(f_max));
    perf::PerfBuildOptions perf_options;
    perf_options.kind = perf::FitFunction::QuadOverF;
    problem.perf.fitAll(perf_options);

    for (const SyntheticOp &op : problem.workload.ops) {
        power::OpPowerModel pw;
        pw.alpha_aicore = op.alpha_aicore;
        pw.alpha_soc = op.alpha_soc;
        problem.op_power.emplace(op.id, pw);
    }
    return problem;
}

std::vector<trace::OpRecord>
genRecordStream(Rng &rng, int min_ops, int max_ops)
{
    SyntheticWorkload workload = genSyntheticWorkload(rng, min_ops, max_ops);
    return workload.recordsAt(1800.0);
}

dvfs::Strategy
genStrategy(Rng &rng, const npu::FreqTable &table)
{
    std::vector<double> freqs = table.frequenciesMhz();
    dvfs::Strategy strategy;
    int stages = static_cast<int>(rng.uniformInt(1, 8));
    Tick t = static_cast<Tick>(rng.uniformInt(0, 4)) * kTicksPerMs;
    for (int s = 0; s < stages; ++s) {
        dvfs::Stage stage;
        stage.start = t;
        stage.duration =
            static_cast<Tick>(rng.uniformInt(1, 50)) * kTicksPerMs;
        stage.high_frequency = rng.chance(0.5);
        t = stage.start + stage.duration;
        // Occasional gap between stages (merged-out idle tails).
        if (rng.chance(0.3))
            t += static_cast<Tick>(rng.uniformInt(1, 5)) * kTicksPerMs;
        strategy.stages.push_back(std::move(stage));
        strategy.mhz_per_stage.push_back(freqs[rng.index(freqs.size())]);
    }
    strategy.plan.initial_mhz = freqs[rng.index(freqs.size())];
    int triggers = static_cast<int>(rng.uniformInt(0, 6));
    for (int i = 0; i < triggers; ++i) {
        trace::SetFreqTrigger trigger;
        trigger.after_op_index = static_cast<std::size_t>(
            rng.uniformInt(0, 200));
        trigger.mhz = freqs[rng.index(freqs.size())];
        strategy.plan.triggers.push_back(trigger);
    }
    if (rng.chance(0.5)) {
        dvfs::StrategyMeta meta;
        meta.score = rng.uniform(0.0, 50.0);
        meta.pre_refine_score = rng.uniform(0.0, meta.score + 1e-12);
        meta.converged_at = static_cast<int>(rng.uniformInt(0, 600));
        meta.generations = static_cast<int>(rng.uniformInt(0, 600));
        const char *tokens[] = {"cold", "warm-start", "exact-hit",
                                "unknown"};
        meta.provenance = tokens[rng.index(4)];
        meta.fingerprint = static_cast<std::uint64_t>(
            rng.uniformInt(0, std::numeric_limits<std::int64_t>::max()));
        strategy.meta = std::move(meta);
    }
    return strategy;
}

models::Workload
genWorkload(Rng &rng, const npu::MemorySystem &memory, int min_ops,
            int max_ops)
{
    ops::OpFactory factory(memory, rng.fork());
    models::Workload workload;
    workload.name = "prop-workload";
    int count = static_cast<int>(rng.uniformInt(min_ops, max_ops));
    for (int i = 0; i < count; ++i) {
        double kind = rng.uniform(0.0, 1.0);
        if (kind < 0.35) {
            workload.iteration.push_back(factory.matMul(
                static_cast<int>(rng.uniformInt(2, 12)) * 64,
                static_cast<int>(rng.uniformInt(2, 12)) * 64,
                static_cast<int>(rng.uniformInt(2, 12)) * 64));
        } else if (kind < 0.55) {
            workload.iteration.push_back(
                factory.add(rng.uniformInt(1, 48) * (1 << 18)));
        } else if (kind < 0.70) {
            workload.iteration.push_back(
                factory.gelu(rng.uniformInt(1, 48) * (1 << 18)));
        } else if (kind < 0.80) {
            workload.iteration.push_back(factory.layerNorm(
                rng.uniformInt(64, 512), rng.uniformInt(256, 2048)));
        } else if (kind < 0.90) {
            workload.iteration.push_back(
                factory.allReduce(rng.uniformInt(1, 64) * (1 << 20)));
        } else {
            workload.iteration.push_back(
                factory.aicpu("PropAicpu", rng.uniform(0.2e-3, 2e-3)));
        }
    }
    return workload;
}

std::string
genWireFrame(Rng &rng, const net::WireLimits &limits)
{
    if (rng.chance(0.5)) {
        net::WireRequest request;
        npu::NpuConfig chip;
        npu::MemorySystem memory(chip.memory);
        request.chip = chip;
        request.workload = genWorkload(rng, memory, 1, 8);
        request.perf_loss_target = rng.uniform(0.005, 0.5);
        request.seed = static_cast<std::uint64_t>(
            rng.uniformInt(0, 1LL << 40));
        request.use_cache = rng.chance(0.5);
        request.allow_warm_start = rng.chance(0.5);
        if (rng.chance(0.4))
            request.deadline_ms = static_cast<std::uint32_t>(
                rng.uniformInt(1, 600000));
        return net::frameRequest(request, limits);
    }
    net::WireResponse response;
    switch (rng.uniformInt(0, 3)) {
    case 0: {
        response.status = net::Status::Ok;
        npu::FreqTable table(genFreqTableConfig(rng));
        response.strategy = genStrategy(rng, table);
        response.best_score = rng.uniform(0.0, 1.0);
        response.provenance =
            static_cast<serve::Provenance>(rng.uniformInt(0, 3));
        response.similarity = rng.uniform(0.0, 1.0);
        response.generations_run =
            static_cast<std::uint32_t>(rng.uniformInt(0, 200));
        response.generations_saved =
            static_cast<std::uint32_t>(rng.uniformInt(0, 200));
        response.service_seconds = rng.uniform(0.0, 10.0);
        response.fingerprint_digest = static_cast<std::uint64_t>(
            rng.uniformInt(0, 1LL << 50));
        response.model_epoch =
            static_cast<std::uint64_t>(rng.uniformInt(0, 40));
        break;
    }
    case 1:
        response.status = net::Status::Busy;
        response.reject = static_cast<serve::RejectReason>(
            rng.uniformInt(1, 4)); // every rejecting reason
        response.message = "net: admission rejected";
        if (rng.chance(0.7))
            response.retry_after_ms = static_cast<std::uint32_t>(
                rng.uniformInt(0, 60000));
        break;
    case 2:
        response.status = net::Status::Malformed;
        response.message = "wire: truncated u64";
        break;
    default:
        response.status = rng.chance(0.5) ? net::Status::ChipMismatch
                                          : net::Status::Internal;
        response.message = "net: request failed";
        break;
    }
    return net::frameResponse(response, limits);
}

// --- printers ----------------------------------------------------------

std::string
show(const npu::FreqTableConfig &config)
{
    std::ostringstream os;
    os.precision(17);
    os << "FreqTableConfig{min=" << config.min_mhz
       << ", max=" << config.max_mhz << ", step=" << config.step_mhz
       << ", knee=" << config.knee_mhz << ", base_volts="
       << config.base_volts << ", volts_per_mhz=" << config.volts_per_mhz
       << "}";
    return os.str();
}

std::string
show(const npu::NpuConfig &config)
{
    std::ostringstream os;
    os.precision(17);
    os << "NpuConfig{freq=" << show(config.freq)
       << ",\n  aicore{beta=" << config.aicore_power.beta
       << ", theta=" << config.aicore_power.theta
       << ", gamma=" << config.aicore_power.gamma << "}"
       << ",\n  uncore{idle=" << config.uncore_power.idle_watts
       << ", active=" << config.uncore_power.active_watts
       << ", gamma=" << config.uncore_power.gamma
       << ", dyn_frac=" << config.uncore_power.dynamic_fraction << "}"
       << ",\n  thermal{ambient=" << config.thermal.ambient_celsius
       << ", k=" << config.thermal.k_per_watt
       << ", tau=" << config.thermal.time_constant_s << "}}";
    return os.str();
}

std::string
show(const power::CalibratedConstants &constants)
{
    std::ostringstream os;
    os.precision(17);
    os << "CalibratedConstants{beta_aicore=" << constants.beta_aicore
       << ", theta_aicore=" << constants.theta_aicore
       << ", beta_soc=" << constants.beta_soc
       << ", theta_soc=" << constants.theta_soc
       << ", gamma_aicore=" << constants.gamma_aicore
       << ", gamma_soc=" << constants.gamma_soc
       << ", k=" << constants.k_per_watt
       << ", ambient=" << constants.ambient_c << "}";
    return os.str();
}

std::string
show(const SyntheticWorkload &workload)
{
    std::ostringstream os;
    os.precision(17);
    os << "SyntheticWorkload{" << workload.ops.size() << " ops:\n";
    for (const SyntheticOp &op : workload.ops) {
        os << "  {id=" << op.id << ", type=" << op.type
           << ", category=" << static_cast<int>(op.category)
           << ", sensitive=" << op.sensitive
           << ", const_s=" << op.const_seconds
           << ", cycle_s_ghz=" << op.cycle_seconds_ghz
           << ", alpha_aicore=" << op.alpha_aicore
           << ", alpha_soc=" << op.alpha_soc << "}\n";
    }
    os << "}";
    return os.str();
}

std::string
show(const TinyProblem &problem)
{
    std::ostringstream os;
    os.precision(17);
    os << "TinyProblem{freq=" << show(problem.freq)
       << ",\n constants=" << show(problem.constants)
       << ",\n loss_target=" << problem.perf_loss_target
       << ",\n stages=" << problem.stages.size()
       << ",\n workload=" << show(problem.workload) << "}";
    return os.str();
}

std::string
show(const std::vector<trace::OpRecord> &records)
{
    std::ostringstream os;
    os.precision(17);
    os << "Records{" << records.size() << ":\n";
    for (const trace::OpRecord &r : records) {
        os << "  {id=" << r.op_id << ", type=" << r.type
           << ", category=" << static_cast<int>(r.category)
           << ", start=" << r.start << ", end=" << r.end
           << ", cube=" << r.ratios.cube << ", vector=" << r.ratios.vector
           << ", mte2=" << r.ratios.mte2 << "}\n";
    }
    os << "}";
    return os.str();
}

std::string
show(const dvfs::Strategy &strategy)
{
    // The text format *is* the literal: paste into a file to replay.
    std::ostringstream os;
    dvfs::saveStrategy(strategy, os);
    return os.str();
}

std::string
show(const models::Workload &workload)
{
    std::ostringstream os;
    os.precision(17);
    os << "Workload{" << workload.name << ", " << workload.opCount()
       << " ops:\n";
    for (const ops::Op &op : workload.iteration) {
        os << "  {id=" << op.id << ", type=" << op.type
           << ", category=" << static_cast<int>(op.hw.category)
           << ", n=" << op.hw.n << ", core_cycles=" << op.hw.core_cycles
           << ", ld=" << op.hw.ld_volume_bytes
           << ", st=" << op.hw.st_volume_bytes
           << ", fixed_s=" << op.hw.fixed_seconds << "}\n";
    }
    os << "}";
    return os.str();
}

// --- shrinkers ---------------------------------------------------------

std::vector<SyntheticWorkload>
shrinkWorkload(const SyntheticWorkload &w)
{
    std::vector<SyntheticWorkload> out;
    for (std::vector<SyntheticOp> &ops : shrinkVector(w.ops)) {
        SyntheticWorkload smaller;
        smaller.ops = std::move(ops);
        for (std::size_t i = 0; i < smaller.ops.size(); ++i)
            smaller.ops[i].id = i;
        out.push_back(std::move(smaller));
    }
    return out;
}

std::vector<dvfs::Strategy>
shrinkStrategy(const dvfs::Strategy &s)
{
    std::vector<dvfs::Strategy> out;
    // Fewer triggers first: cheaper counterexamples to read.
    for (auto &triggers : shrinkVector(s.plan.triggers)) {
        dvfs::Strategy smaller = s;
        smaller.plan.triggers = std::move(triggers);
        out.push_back(std::move(smaller));
    }
    if (s.stages.size() > 1) {
        for (std::size_t skip = 0; skip < s.stages.size(); ++skip) {
            dvfs::Strategy smaller = s;
            smaller.stages.erase(smaller.stages.begin()
                                 + static_cast<std::ptrdiff_t>(skip));
            smaller.mhz_per_stage.erase(
                smaller.mhz_per_stage.begin()
                + static_cast<std::ptrdiff_t>(skip));
            out.push_back(std::move(smaller));
        }
    }
    if (s.meta) {
        dvfs::Strategy smaller = s;
        smaller.meta.reset();
        out.push_back(std::move(smaller));
    }
    return out;
}

} // namespace opdvfs::check
