/**
 * @file
 * Lookup of all built-in workloads by name, plus the model sets the
 * paper's experiments use (seven models for the performance-model
 * study, Sect. 7.2; the power-model subjects, Sect. 7.3).
 */

#ifndef OPDVFS_MODELS_MODEL_ZOO_H
#define OPDVFS_MODELS_MODEL_ZOO_H

#include <cstdint>
#include <string>
#include <vector>

#include "models/workload.h"
#include "npu/memory_system.h"

namespace opdvfs::models {

/** All built-in workload names. */
std::vector<std::string> workloadNames();

/**
 * Build the named workload.
 * @throws std::invalid_argument for unknown names.
 */
Workload buildWorkload(const std::string &name,
                       const npu::MemorySystem &memory, std::uint64_t seed);

/** The seven models of the performance-model study (Sect. 7.2). */
std::vector<std::string> perfStudyModels();

/** The workloads of the power-model study (Sect. 7.3). */
std::vector<std::string> powerStudyModels();

} // namespace opdvfs::models

#endif // OPDVFS_MODELS_MODEL_ZOO_H
