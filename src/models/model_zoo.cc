#include "models/model_zoo.h"

#include <stdexcept>

#include "models/cnn.h"
#include "models/transformer.h"
#include "ops/op_factory.h"

namespace opdvfs::models {

namespace {

/**
 * A micro-workload of one operator type repeated back-to-back, as used
 * for the standalone Softmax / Tanh subjects of the power-model study.
 */
Workload
buildOperatorLoop(const npu::MemorySystem &memory, const std::string &name,
                  std::uint64_t seed)
{
    Workload workload;
    workload.name = name;
    ops::OpFactory factory(memory, Rng(seed));
    const int repeats = 400;
    for (int i = 0; i < repeats; ++i) {
        if (name == "Softmax-op")
            workload.iteration.push_back(factory.softmax(16384, 1024));
        else if (name == "Tanh-op")
            workload.iteration.push_back(
                factory.gelu(16 * 1024 * 1024)); // tanh-class vector op
        else
            throw std::invalid_argument("unknown operator loop: " + name);
    }
    return workload;
}

} // namespace

std::vector<std::string>
workloadNames()
{
    return {"GPT3",     "BERT",      "ResNet50",        "ResNet152",
            "Vit_base", "Deit_small", "VGG19",          "AlexNet",
            "ShuffleNetV2Plus", "Llama2-infer", "Softmax-op", "Tanh-op"};
}

Workload
buildWorkload(const std::string &name, const npu::MemorySystem &memory,
              std::uint64_t seed)
{
    if (name == "GPT3")
        return buildGpt3(memory, seed);
    if (name == "BERT")
        return buildBert(memory, seed);
    if (name == "ResNet50")
        return buildResnet50(memory, seed);
    if (name == "ResNet152")
        return buildResnet152(memory, seed);
    if (name == "Vit_base")
        return buildVitBase(memory, seed);
    if (name == "Deit_small")
        return buildDeitSmall(memory, seed);
    if (name == "VGG19")
        return buildVgg19(memory, seed);
    if (name == "AlexNet")
        return buildAlexnet(memory, seed);
    if (name == "ShuffleNetV2Plus")
        return buildShufflenetV2Plus(memory, seed);
    if (name == "Llama2-infer")
        return buildLlama2Inference(memory, seed);
    if (name == "Softmax-op" || name == "Tanh-op")
        return buildOperatorLoop(memory, name, seed);
    throw std::invalid_argument("unknown workload: " + name);
}

std::vector<std::string>
perfStudyModels()
{
    // The seven models of Sect. 7.2.
    return {"ResNet50", "Vit_base", "BERT",  "Deit_small",
            "AlexNet",  "ShuffleNetV2Plus", "VGG19"};
}

std::vector<std::string>
powerStudyModels()
{
    // The seven validation subjects of Sect. 7.3.
    return {"GPT3",  "BERT",       "VGG19",   "ResNet50",
            "Vit_base", "Softmax-op", "Tanh-op"};
}

} // namespace opdvfs::models
