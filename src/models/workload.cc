#include "models/workload.h"

namespace opdvfs::models {

std::size_t
Workload::countCategory(npu::OpCategory category) const
{
    std::size_t count = 0;
    for (const auto &op : iteration) {
        if (op.hw.category == category)
            ++count;
    }
    return count;
}

double
Workload::insensitiveSeconds() const
{
    double total = 0.0;
    for (const auto &op : iteration) {
        if (op.hw.category != npu::OpCategory::Compute)
            total += op.hw.fixed_seconds;
    }
    return total;
}

} // namespace opdvfs::models
