#include "models/workload.h"

#include <stdexcept>

namespace opdvfs::models {

std::size_t
Workload::countCategory(npu::OpCategory category) const
{
    std::size_t count = 0;
    for (const auto &op : iteration) {
        if (op.hw.category == category)
            ++count;
    }
    return count;
}

double
Workload::insensitiveSeconds() const
{
    double total = 0.0;
    for (const auto &op : iteration) {
        if (op.hw.category != npu::OpCategory::Compute)
            total += op.hw.fixed_seconds;
    }
    return total;
}

void
visitWorkloadFields(const Workload &workload,
                    const WorkloadFieldVisitor &visitor)
{
    if (!visitor.string_field || !visitor.number_field)
        throw std::invalid_argument("visitWorkloadFields: visitor callbacks "
                                    "must both be set");
    for (const auto &op : workload.iteration) {
        visitor.string_field(op.type);
        const npu::HwOpParams &hw = op.hw;
        visitor.number_field(static_cast<double>(hw.category));
        visitor.number_field(static_cast<double>(hw.scenario));
        visitor.number_field(static_cast<double>(hw.core_pipe));
        visitor.number_field(static_cast<double>(hw.n));
        visitor.number_field(hw.core_cycles);
        visitor.number_field(hw.ld_volume_bytes);
        visitor.number_field(hw.ld_l2_hit);
        visitor.number_field(hw.st_volume_bytes);
        visitor.number_field(hw.st_l2_hit);
        visitor.number_field(hw.t0_seconds);
        visitor.number_field(hw.overhead_seconds);
        visitor.number_field(hw.fixed_seconds);
        visitor.number_field(hw.comm_bytes);
        visitor.number_field(hw.alpha_core);
        visitor.number_field(hw.uncore_activity);
    }
}

} // namespace opdvfs::models
