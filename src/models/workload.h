/**
 * @file
 * A workload: one training (or inference) iteration's operator
 * sequence.  Long-lived AI jobs repeat the same iteration, so a policy
 * optimised on one iteration applies to all subsequent ones (Sect. 6).
 */

#ifndef OPDVFS_MODELS_WORKLOAD_H
#define OPDVFS_MODELS_WORKLOAD_H

#include <cstddef>
#include <string>

#include "ops/op.h"

namespace opdvfs::models {

/** A named per-iteration operator sequence. */
struct Workload
{
    std::string name;
    ops::OpSequence iteration;

    /** Number of operators per iteration. */
    std::size_t opCount() const { return iteration.size(); }

    /** Count of operators in the given category. */
    std::size_t countCategory(npu::OpCategory category) const;

    /** Sum of fixed durations of non-Compute operators, seconds. */
    double insensitiveSeconds() const;
};

} // namespace opdvfs::models

#endif // OPDVFS_MODELS_WORKLOAD_H
