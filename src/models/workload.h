/**
 * @file
 * A workload: one training (or inference) iteration's operator
 * sequence.  Long-lived AI jobs repeat the same iteration, so a policy
 * optimised on one iteration applies to all subsequent ones (Sect. 6).
 */

#ifndef OPDVFS_MODELS_WORKLOAD_H
#define OPDVFS_MODELS_WORKLOAD_H

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

#include "ops/op.h"

namespace opdvfs::models {

/** A named per-iteration operator sequence. */
struct Workload
{
    std::string name;
    ops::OpSequence iteration;

    /** Number of operators per iteration. */
    std::size_t opCount() const { return iteration.size(); }

    /** Count of operators in the given category. */
    std::size_t countCategory(npu::OpCategory category) const;

    /** Sum of fixed durations of non-Compute operators, seconds. */
    double insensitiveSeconds() const;
};

/**
 * Receiver for the canonical field stream of a workload.  Fields are
 * visited in a fixed, documented order so two equal workloads always
 * produce the same stream (the strategy-service fingerprint hashes
 * it).  Both callbacks must be set.
 */
struct WorkloadFieldVisitor
{
    std::function<void(std::string_view)> string_field;
    std::function<void(double)> number_field;
};

/**
 * Visit every strategy-relevant field of @p workload in iteration
 * order: per op the type name, then category/scenario/pipe (as their
 * numeric codes) and all HwOpParams scalars.  The workload *name* and
 * the (positional) op ids are deliberately excluded: two workloads
 * with identical operator content are the same optimisation problem
 * regardless of how they are labelled.
 */
void visitWorkloadFields(const Workload &workload,
                         const WorkloadFieldVisitor &visitor);

} // namespace opdvfs::models

#endif // OPDVFS_MODELS_WORKLOAD_H
