/**
 * @file
 * Transformer-family workload builders: GPT-3 (tensor-parallel slice),
 * BERT-large, ViT-base, DeiT-small training iterations, and a
 * host-bound Llama2 decode iteration for the inference study
 * (Sect. 8.4).
 *
 * Sequences are synthetic but structurally faithful: per-layer
 * attention/MLP matmuls sized from the model dimensions, the
 * surrounding normalisation/activation/elementwise operators,
 * tensor/data-parallel collectives, AICPU bookkeeping operators, and
 * scheduling gaps.
 */

#ifndef OPDVFS_MODELS_TRANSFORMER_H
#define OPDVFS_MODELS_TRANSFORMER_H

#include <cstdint>

#include "models/workload.h"
#include "npu/memory_system.h"
#include "ops/op_factory.h"

namespace opdvfs::models {

/** Dimensions of one transformer training job on one device. */
struct TransformerConfig
{
    std::string name = "Transformer";
    int layers = 12;
    int hidden = 768;
    int heads = 12;
    int seq = 512;
    /** Per-device micro-batch in sequences. */
    int batch = 1;
    /** FFN expansion factor. */
    int ffn_mult = 4;
    /** Tensor-parallel group size (1 = none). */
    int tensor_parallel = 1;
    /** Gradient-accumulation micro-batches per iteration. */
    int micro_batches = 1;
    /** Emit per-layer tensor-parallel all-reduces. */
    bool tp_allreduce = false;
    /** Emit bucketed data-parallel gradient all-reduce at the end. */
    bool grad_allreduce = true;
    /** Emit pipeline-parallel bubble idles after backward layers. */
    bool pipeline_bubbles = false;
};

/** Build one training iteration for @p config. */
Workload buildTransformerTraining(const npu::MemorySystem &memory,
                                  const TransformerConfig &config,
                                  std::uint64_t seed);

/** GPT-3 (175B-class) tensor-parallel slice; ~18k ops, ~11 s. */
Workload buildGpt3(const npu::MemorySystem &memory, std::uint64_t seed);

/** BERT-large pretraining iteration. */
Workload buildBert(const npu::MemorySystem &memory, std::uint64_t seed);

/** ViT-base training iteration. */
Workload buildVitBase(const npu::MemorySystem &memory, std::uint64_t seed);

/** DeiT-small training iteration. */
Workload buildDeitSmall(const npu::MemorySystem &memory, std::uint64_t seed);

/**
 * Llama2 decode iteration: small per-token kernels separated by
 * host-dispatch idle gaps, reproducing the host-bound behaviour that
 * lets Sect. 8.4 drop the whole-run frequency cheaply.
 */
Workload buildLlama2Inference(const npu::MemorySystem &memory,
                              std::uint64_t seed);

} // namespace opdvfs::models

#endif // OPDVFS_MODELS_TRANSFORMER_H
