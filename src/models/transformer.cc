#include "models/transformer.h"

#include <algorithm>

namespace opdvfs::models {

namespace {

/** Emits the per-layer operator patterns of a transformer iteration. */
class TransformerEmitter
{
  public:
    TransformerEmitter(const npu::MemorySystem &memory,
                       const TransformerConfig &config, std::uint64_t seed)
        : config_(config),
          rng_(seed),
          factory_(memory, Rng(seed + 0x9e3779b97f4a7c15ULL))
    {}

    Workload
    build()
    {
        Workload workload;
        workload.name = config_.name;

        for (int mb = 0; mb < config_.micro_batches; ++mb) {
            emitEmbedding();
            for (int layer = 0; layer < config_.layers; ++layer)
                emitForwardLayer();
            emitLossHead();
            for (int layer = 0; layer < config_.layers; ++layer)
                emitBackwardLayer();
            maybeIdle(100e-6, 400e-6, 0.8);
        }
        emitOptimizer();
        if (config_.grad_allreduce)
            emitGradAllReduce();
        // Host-side book-keeping between iterations.
        push(factory_.aicpu("GetNext", 300e-6));
        push(factory_.idle(rng_.uniform(200e-6, 800e-6)));

        workload.iteration = std::move(sequence_);
        return workload;
    }

  private:
    void push(ops::Op op) { sequence_.push_back(std::move(op)); }

    void
    maybeIdle(double lo, double hi, double probability)
    {
        if (rng_.chance(probability))
            push(factory_.idle(rng_.uniform(lo, hi)));
    }

    std::int64_t tokens() const
    {
        return static_cast<std::int64_t>(config_.batch) * config_.seq;
    }
    std::int64_t actElems() const { return tokens() * config_.hidden; }
    int headsPerDevice() const
    {
        return std::max(1, config_.heads / config_.tensor_parallel);
    }
    int headDim() const { return config_.hidden / config_.heads; }
    std::int64_t attnElems() const
    {
        return static_cast<std::int64_t>(config_.batch) * headsPerDevice()
            * config_.seq * config_.seq;
    }
    /** Bytes of one activation tensor (fp16), for TP all-reduce. */
    std::int64_t
    activationBytes() const
    {
        return 2 * actElems();
    }

    void
    emitEmbedding()
    {
        // Token + position embedding gather and dropout.
        push(factory_.transpose(actElems()));
        push(factory_.add(actElems()));
        push(factory_.dropout(actElems()));
        maybeIdle(20e-6, 80e-6, 0.4);
    }

    void
    emitForwardLayer()
    {
        const int t = static_cast<int>(tokens());
        const int h = config_.hidden;
        const int tp = config_.tensor_parallel;
        const int ffn = h * config_.ffn_mult / tp;
        const int qkv_out = 3 * h / tp;
        const int bmm_batch = config_.batch * headsPerDevice();

        push(factory_.layerNorm(tokens(), h));
        push(factory_.matMul(t, h, qkv_out));
        push(factory_.add(tokens() * qkv_out)); // bias
        push(factory_.batchMatMul(bmm_batch, config_.seq, headDim(),
                                  config_.seq));
        push(factory_.softmax(
            static_cast<std::int64_t>(bmm_batch) * config_.seq,
            config_.seq));
        push(factory_.dropout(attnElems()));
        push(factory_.batchMatMul(bmm_batch, config_.seq, config_.seq,
                                  headDim()));
        push(factory_.matMul(t, h / tp, h)); // output projection
        push(factory_.add(actElems()));      // bias
        if (config_.tp_allreduce)
            push(factory_.allReduce(activationBytes()));
        push(factory_.add(actElems())); // residual
        push(factory_.layerNorm(tokens(), h));
        push(factory_.matMul(t, h, ffn));
        push(factory_.add(tokens() * ffn)); // bias
        push(factory_.gelu(tokens() * ffn));
        push(factory_.matMul(t, ffn, h));
        push(factory_.add(actElems())); // bias
        if (config_.tp_allreduce)
            push(factory_.allReduce(activationBytes()));
        push(factory_.dropout(actElems()));
        push(factory_.add(actElems())); // residual
        if (rng_.chance(0.3))
            push(factory_.tinyScalarOp("Shape"));
        maybeIdle(20e-6, 100e-6, 0.3);
    }

    void
    emitLossHead()
    {
        push(factory_.layerNorm(tokens(), config_.hidden));
        push(factory_.matMul(static_cast<int>(tokens()), config_.hidden,
                             4096 / config_.tensor_parallel));
        push(factory_.softmax(tokens(), 4096 / config_.tensor_parallel));
        push(factory_.reduceMean(tokens(), 1));
        push(factory_.aicpu("LossScale", 60e-6));
    }

    void
    emitBackwardLayer()
    {
        const int t = static_cast<int>(tokens());
        const int h = config_.hidden;
        const int tp = config_.tensor_parallel;
        const int ffn = h * config_.ffn_mult / tp;
        const int qkv_out = 3 * h / tp;
        const int bmm_batch = config_.batch * headsPerDevice();

        // MLP backward: dgrad + wgrad per matmul.
        push(factory_.add(actElems())); // residual grad accumulate
        push(factory_.matMul(t, h, ffn));             // dgrad FF2
        push(factory_.matMul(ffn, t, h));             // wgrad FF2
        push(factory_.gelu(tokens() * ffn));          // gelu backward
        push(factory_.matMul(t, ffn, h));             // dgrad FF1
        push(factory_.matMul(h, t, ffn));             // wgrad FF1
        if (config_.tp_allreduce)
            push(factory_.allReduce(activationBytes()));
        push(factory_.layerNorm(tokens(), h)); // ln backward
        push(factory_.add(actElems()));

        // Attention backward.
        push(factory_.matMul(t, h, h / tp));          // dgrad proj
        push(factory_.matMul(h / tp, t, h));          // wgrad proj
        push(factory_.batchMatMul(bmm_batch, config_.seq, headDim(),
                                  config_.seq));
        push(factory_.batchMatMul(bmm_batch, config_.seq, config_.seq,
                                  headDim()));
        push(factory_.dropout(attnElems()));
        push(factory_.softmax(
            static_cast<std::int64_t>(bmm_batch) * config_.seq,
            config_.seq));
        push(factory_.batchMatMul(bmm_batch, config_.seq, headDim(),
                                  config_.seq));
        push(factory_.matMul(t, qkv_out, h));         // dgrad QKV
        push(factory_.matMul(h, t, qkv_out));         // wgrad QKV
        if (config_.tp_allreduce)
            push(factory_.allReduce(activationBytes()));
        push(factory_.layerNorm(tokens(), h));
        push(factory_.add(actElems()));
        if (rng_.chance(0.3))
            push(factory_.tinyScalarOp("ZerosLike"));
        maybeIdle(20e-6, 100e-6, 0.3);
        // Pipeline-parallel bubble: downstream stage not yet ready.
        if (config_.pipeline_bubbles)
            maybeIdle(0.8e-3, 3e-3, 0.35);
    }

    void
    emitOptimizer()
    {
        // Fused Adam over each layer's parameter block.
        const double h = config_.hidden;
        const std::int64_t layer_params = static_cast<std::int64_t>(
            (4.0 * h * h + 2.0 * config_.ffn_mult * h * h)
            / config_.tensor_parallel);
        for (int layer = 0; layer < config_.layers; ++layer) {
            push(factory_.realDiv(layer_params)); // grad unscale
            push(factory_.add(layer_params));     // moment update
            push(factory_.add(layer_params));     // weight update
            if (rng_.chance(0.2))
                push(factory_.aicpu("AdamHost", 40e-6));
        }
    }

    void
    emitGradAllReduce()
    {
        const double h = config_.hidden;
        double grad_bytes = 2.0
            * (4.0 * h * h + 2.0 * config_.ffn_mult * h * h)
            * config_.layers / config_.tensor_parallel;
        const double bucket = 5.0e7;
        int buckets = std::max(1, static_cast<int>(grad_bytes / bucket));
        for (int i = 0; i < buckets; ++i)
            push(factory_.allReduce(static_cast<std::int64_t>(bucket)));
    }

    TransformerConfig config_;
    Rng rng_;
    ops::OpFactory factory_;
    ops::OpSequence sequence_;
};

} // namespace

Workload
buildTransformerTraining(const npu::MemorySystem &memory,
                         const TransformerConfig &config, std::uint64_t seed)
{
    return TransformerEmitter(memory, config, seed).build();
}

Workload
buildGpt3(const npu::MemorySystem &memory, std::uint64_t seed)
{
    TransformerConfig config;
    config.name = "GPT3";
    config.layers = 96;
    config.hidden = 12288;
    config.heads = 96;
    config.seq = 2048;
    config.batch = 2;
    config.ffn_mult = 4;
    config.tensor_parallel = 8;
    config.micro_batches = 5;
    config.pipeline_bubbles = true;
    config.tp_allreduce = true;
    config.grad_allreduce = false;
    return buildTransformerTraining(memory, config, seed);
}

Workload
buildBert(const npu::MemorySystem &memory, std::uint64_t seed)
{
    TransformerConfig config;
    config.name = "BERT";
    config.layers = 24;
    config.hidden = 1024;
    config.heads = 16;
    config.seq = 512;
    config.batch = 32;
    config.micro_batches = 2;
    config.tp_allreduce = false;
    config.grad_allreduce = true;
    return buildTransformerTraining(memory, config, seed);
}

Workload
buildVitBase(const npu::MemorySystem &memory, std::uint64_t seed)
{
    TransformerConfig config;
    config.name = "Vit_base";
    config.layers = 12;
    config.hidden = 768;
    config.heads = 12;
    config.seq = 197;
    config.batch = 64;
    config.micro_batches = 1;
    config.grad_allreduce = true;
    return buildTransformerTraining(memory, config, seed);
}

Workload
buildDeitSmall(const npu::MemorySystem &memory, std::uint64_t seed)
{
    TransformerConfig config;
    config.name = "Deit_small";
    config.layers = 12;
    config.hidden = 384;
    config.heads = 6;
    config.seq = 197;
    config.batch = 64;
    config.micro_batches = 1;
    config.grad_allreduce = true;
    return buildTransformerTraining(memory, config, seed);
}

Workload
buildLlama2Inference(const npu::MemorySystem &memory, std::uint64_t seed)
{
    Workload workload;
    workload.name = "Llama2-infer";
    Rng rng(seed);
    ops::OpFactory factory(memory, Rng(seed + 0x51ed270b7a04e2d7ULL));

    const int layers = 32;
    const int hidden = 4096;
    const int batch = 8;
    const int decode_tokens = 16;

    for (int tok = 0; tok < decode_tokens; ++tok) {
        for (int layer = 0; layer < layers; ++layer) {
            // Decode-phase kernels are small and weight-bandwidth
            // bound; the host dispatches slower than the NPU executes,
            // so nearly every operator is preceded by an idle gap.
            auto gap = [&] {
                workload.iteration.push_back(
                    factory.idle(rng.uniform(20e-6, 70e-6)));
            };
            gap();
            workload.iteration.push_back(
                factory.layerNorm(batch, hidden));
            gap();
            workload.iteration.push_back(
                factory.matMul(batch, hidden, 3 * hidden));
            gap();
            workload.iteration.push_back(
                factory.batchMatMul(batch * 32, 1, 128, 512));
            gap();
            workload.iteration.push_back(
                factory.softmax(batch * 32, 512));
            gap();
            workload.iteration.push_back(
                factory.matMul(batch, hidden, hidden));
            gap();
            workload.iteration.push_back(
                factory.matMul(batch, hidden, 11008));
            gap();
            workload.iteration.push_back(
                factory.gelu(static_cast<std::int64_t>(batch) * 11008));
            gap();
            workload.iteration.push_back(
                factory.matMul(batch, 11008, hidden));
            gap();
            workload.iteration.push_back(
                factory.add(static_cast<std::int64_t>(batch) * hidden));
        }
        workload.iteration.push_back(factory.aicpu("Sampling", 150e-6));
        workload.iteration.push_back(
            factory.idle(rng.uniform(100e-6, 300e-6)));
    }
    return workload;
}

} // namespace opdvfs::models
