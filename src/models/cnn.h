/**
 * @file
 * CNN-family workload builders: ResNet-50/152, VGG-19, AlexNet, and
 * ShuffleNetV2Plus training iterations.
 *
 * ResNets and VGG are cube-unit heavy (large convolutions) with
 * interleaved batch-norm/ReLU memory traffic; ShuffleNetV2Plus is a
 * sea of thousands of small operators, matching the operator-count and
 * tiny-op statistics the paper reports for it (4,343 operators,
 * Sect. 4.3 / 7.2).
 */

#ifndef OPDVFS_MODELS_CNN_H
#define OPDVFS_MODELS_CNN_H

#include <cstdint>

#include "models/workload.h"
#include "npu/memory_system.h"

namespace opdvfs::models {

/** ResNet-50 training iteration (batch 256). */
Workload buildResnet50(const npu::MemorySystem &memory, std::uint64_t seed);

/** ResNet-152 training iteration (batch 256). */
Workload buildResnet152(const npu::MemorySystem &memory, std::uint64_t seed);

/** VGG-19 training iteration (batch 128). */
Workload buildVgg19(const npu::MemorySystem &memory, std::uint64_t seed);

/** AlexNet training iteration (batch 256). */
Workload buildAlexnet(const npu::MemorySystem &memory, std::uint64_t seed);

/** ShuffleNetV2Plus training iteration; thousands of small ops. */
Workload buildShufflenetV2Plus(const npu::MemorySystem &memory,
                               std::uint64_t seed);

} // namespace opdvfs::models

#endif // OPDVFS_MODELS_CNN_H
