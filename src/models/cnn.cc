#include "models/cnn.h"

#include <vector>

#include "ops/op_factory.h"

namespace opdvfs::models {

namespace {

/** One convolution stage of a CNN. */
struct ConvSpec
{
    int in_ch;
    int out_ch;
    int h;
    int w;
    int kernel;
    /** Repeats of this spec (e.g. residual blocks per stage). */
    int repeat = 1;
};

/** Shared CNN iteration emitter. */
class CnnEmitter
{
  public:
    CnnEmitter(const npu::MemorySystem &memory, std::string name, int batch,
               std::uint64_t seed)
        : name_(std::move(name)),
          batch_(batch),
          rng_(seed),
          factory_(memory, Rng(seed + 0xa24baed4963ee407ULL))
    {}

    /** Conv + BN + ReLU (+ residual add for @p residual). */
    void
    convBnRelu(const ConvSpec &spec, bool residual)
    {
        std::int64_t elems = static_cast<std::int64_t>(batch_)
            * spec.out_ch * spec.h * spec.w;
        push(factory_.conv2d(batch_, spec.in_ch, spec.out_ch, spec.h,
                             spec.w, spec.kernel));
        // Production CNN kernels fuse most of the BN/ReLU traffic into
        // the convolution epilogue; only the statistics update and a
        // trimmed activation pass remain as standalone bandwidth ops.
        push(factory_.bnTrainingUpdate(elems / 3));
        push(factory_.relu(elems / 3));
        if (residual)
            push(factory_.add(elems));
        if (rng_.chance(0.15))
            push(factory_.tinyScalarOp("Shape"));
    }

    /** Forward pass over all specs, repeating stages. */
    void
    forward(const std::vector<ConvSpec> &specs)
    {
        for (const auto &spec : specs) {
            for (int r = 0; r < spec.repeat; ++r)
                convBnRelu(spec, spec.repeat > 1);
        }
    }

    /**
     * Backward pass: for each conv, a data-grad and a weight-grad
     * convolution plus the BN/ReLU backward traffic.
     */
    void
    backward(const std::vector<ConvSpec> &specs)
    {
        for (auto it = specs.rbegin(); it != specs.rend(); ++it) {
            for (int r = 0; r < it->repeat; ++r) {
                std::int64_t elems = static_cast<std::int64_t>(batch_)
                    * it->out_ch * it->h * it->w;
                push(factory_.relu(elems));
                push(factory_.bnTrainingUpdate(elems));
                push(factory_.conv2d(batch_, it->out_ch, it->in_ch, it->h,
                                     it->w, it->kernel)); // dgrad
                push(factory_.conv2d(batch_, it->in_ch, it->out_ch, it->h,
                                     it->w, it->kernel)); // wgrad
                if (rng_.chance(0.1))
                    push(factory_.idle(rng_.uniform(10e-6, 60e-6)));
            }
        }
    }

    /** Classifier head: FC layers as matmuls. */
    void
    head(int features, int classes)
    {
        push(factory_.reduceMean(
            static_cast<std::int64_t>(batch_) * features * 49, batch_));
        push(factory_.matMul(batch_, features, classes));
        push(factory_.softmax(batch_, classes));
        push(factory_.aicpu("LossScale", 50e-6));
    }

    /** Fused-Adam style optimizer over @p param_count parameters. */
    void
    optimizer(std::int64_t param_count, int groups)
    {
        std::int64_t per = param_count / groups;
        for (int g = 0; g < groups; ++g) {
            push(factory_.realDiv(per));
            push(factory_.add(per));
            push(factory_.add(per));
        }
    }

    /** Bucketed data-parallel gradient all-reduce. */
    void
    gradAllReduce(std::int64_t param_count)
    {
        double bytes = 2.0 * static_cast<double>(param_count);
        int buckets = std::max(1, static_cast<int>(bytes / 5.0e7));
        for (int b = 0; b < buckets; ++b)
            push(factory_.allReduce(static_cast<std::int64_t>(5.0e7)));
    }

    void
    dataLoading()
    {
        push(factory_.aicpu("GetNext", 400e-6));
        push(factory_.idle(rng_.uniform(200e-6, 600e-6)));
    }

    void push(ops::Op op) { sequence_.push_back(std::move(op)); }

    Workload
    take()
    {
        Workload w;
        w.name = name_;
        w.iteration = std::move(sequence_);
        return w;
    }

    ops::OpFactory &factory() { return factory_; }
    Rng &rng() { return rng_; }
    int batch() const { return batch_; }

  private:
    std::string name_;
    int batch_;
    Rng rng_;
    ops::OpFactory factory_;
    ops::OpSequence sequence_;
};

/** Bottleneck-stage specs for a ResNet with the given block counts. */
std::vector<ConvSpec>
resnetSpecs(int b1, int b2, int b3, int b4)
{
    std::vector<ConvSpec> specs;
    specs.push_back({3, 64, 112, 112, 7, 1}); // stem
    auto stage = [&specs](int in_ch, int mid, int hw, int blocks) {
        // Each bottleneck: 1x1 reduce, 3x3, 1x1 expand.
        specs.push_back({in_ch, mid, hw, hw, 1, blocks});
        specs.push_back({mid, mid, hw, hw, 3, blocks});
        specs.push_back({mid, 4 * mid, hw, hw, 1, blocks});
    };
    stage(256, 64, 56, b1);
    stage(512, 128, 28, b2);
    stage(1024, 256, 14, b3);
    stage(2048, 512, 7, b4);
    return specs;
}

Workload
buildResnet(const npu::MemorySystem &memory, const std::string &name,
            int b1, int b2, int b3, int b4, std::uint64_t seed)
{
    CnnEmitter emitter(memory, name, 256, seed);
    auto specs = resnetSpecs(b1, b2, b3, b4);
    std::int64_t params = (name == "ResNet152") ? 60'000'000 : 25'600'000;

    emitter.dataLoading();
    emitter.forward(specs);
    emitter.head(2048, 1000);
    emitter.backward(specs);
    emitter.gradAllReduce(params);
    emitter.optimizer(params, 3 * (b1 + b2 + b3 + b4) + 2);
    return emitter.take();
}

} // namespace

Workload
buildResnet50(const npu::MemorySystem &memory, std::uint64_t seed)
{
    return buildResnet(memory, "ResNet50", 3, 4, 6, 3, seed);
}

Workload
buildResnet152(const npu::MemorySystem &memory, std::uint64_t seed)
{
    return buildResnet(memory, "ResNet152", 3, 8, 36, 3, seed);
}

Workload
buildVgg19(const npu::MemorySystem &memory, std::uint64_t seed)
{
    CnnEmitter emitter(memory, "VGG19", 128, seed);
    std::vector<ConvSpec> specs = {
        {3, 64, 224, 224, 3, 1},   {64, 64, 224, 224, 3, 1},
        {64, 128, 112, 112, 3, 1}, {128, 128, 112, 112, 3, 1},
        {128, 256, 56, 56, 3, 4},  {256, 512, 28, 28, 3, 4},
        {512, 512, 14, 14, 3, 4},
    };
    emitter.dataLoading();
    emitter.forward(specs);
    // FC 4096 head.
    emitter.push(emitter.factory().matMul(128, 512 * 49, 4096));
    emitter.push(emitter.factory().matMul(128, 4096, 4096));
    emitter.head(4096, 1000);
    emitter.backward(specs);
    emitter.push(emitter.factory().matMul(4096, 128, 4096));
    emitter.push(emitter.factory().matMul(128, 4096, 512 * 49));
    emitter.gradAllReduce(143'000'000);
    emitter.optimizer(143'000'000, 19);
    return emitter.take();
}

Workload
buildAlexnet(const npu::MemorySystem &memory, std::uint64_t seed)
{
    CnnEmitter emitter(memory, "AlexNet", 256, seed);
    std::vector<ConvSpec> specs = {
        {3, 96, 55, 55, 11, 1},  {96, 256, 27, 27, 5, 1},
        {256, 384, 13, 13, 3, 1}, {384, 384, 13, 13, 3, 1},
        {384, 256, 13, 13, 3, 1},
    };
    emitter.dataLoading();
    emitter.forward(specs);
    emitter.push(emitter.factory().matMul(256, 256 * 36, 4096));
    emitter.push(emitter.factory().matMul(256, 4096, 4096));
    emitter.head(4096, 1000);
    emitter.backward(specs);
    emitter.gradAllReduce(61'000'000);
    emitter.optimizer(61'000'000, 8);
    return emitter.take();
}

Workload
buildShufflenetV2Plus(const npu::MemorySystem &memory, std::uint64_t seed)
{
    CnnEmitter emitter(memory, "ShuffleNetV2Plus", 256, seed);
    emitter.dataLoading();

    // ShuffleNet blocks are a sea of small kernels: pointwise convs,
    // depthwise convs (bandwidth-bound), channel shuffles, splits and
    // concats.  Two passes (forward + backward at double cost) over
    // ~70 blocks yields the ~4.3k-operator iteration the paper reports.
    auto emitBlock = [&emitter](int ch, int hw, bool backward) {
        auto &f = emitter.factory();
        std::int64_t elems =
            static_cast<std::int64_t>(emitter.batch()) * ch * hw * hw;
        int convs = backward ? 2 : 1;
        for (int c = 0; c < convs; ++c) {
            emitter.push(f.conv2d(emitter.batch(), ch, ch, hw, hw, 1));
            emitter.push(f.bnTrainingUpdate(elems));
            emitter.push(f.relu(elems));
            // Depthwise conv: negligible flops, pure bandwidth.
            emitter.push(f.dropout(elems));
            emitter.push(f.bnTrainingUpdate(elems));
        }
        emitter.push(f.transpose(elems)); // channel shuffle
        emitter.push(f.tinyScalarOp("Split"));
        emitter.push(f.tinyScalarOp("ConcatD"));
        if (emitter.rng().chance(0.2))
            emitter.push(f.tinyScalarOp("StridedSliceD"));
    };

    struct Stage { int ch; int hw; int blocks; };
    const std::vector<Stage> stages = {
        {68, 56, 12}, {168, 28, 48}, {336, 14, 104}, {672, 7, 28},
    };

    for (bool backward : {false, true}) {
        for (const auto &stage : stages) {
            for (int b = 0; b < stage.blocks; ++b)
                emitBlock(stage.ch, stage.hw, backward);
        }
    }
    emitter.head(1280, 1000);
    emitter.gradAllReduce(6'500'000);
    emitter.optimizer(6'500'000, 70);
    return emitter.take();
}

} // namespace opdvfs::models
