/**
 * @file
 * CSV export of profiler records and telemetry samples, for offline
 * inspection of simulated timelines (the stand-in for the CANN
 * profiler's visualised trace, Sect. 7.4).
 */

#ifndef OPDVFS_TRACE_TRACE_EXPORT_H
#define OPDVFS_TRACE_TRACE_EXPORT_H

#include <istream>
#include <ostream>
#include <vector>

#include "trace/power_sampler.h"
#include "trace/profiler.h"

namespace opdvfs::trace {

/** Write operator records as CSV (header + one row per op). */
void exportOpRecordsCsv(const std::vector<OpRecord> &records,
                        std::ostream &os);

/** Write telemetry samples as CSV. */
void exportPowerSamplesCsv(const std::vector<PowerSample> &samples,
                           std::ostream &os);

/**
 * Parse operator records from the CSV produced by
 * exportOpRecordsCsv().  This is the bring-your-own-trace entry point:
 * converted traces from a real profiler can be fed straight into
 * classification, preprocessing and strategy search.
 *
 * @throws std::invalid_argument on malformed input.
 */
std::vector<OpRecord> importOpRecordsCsv(std::istream &is);

} // namespace opdvfs::trace

#endif // OPDVFS_TRACE_TRACE_EXPORT_H
