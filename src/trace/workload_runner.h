/**
 * @file
 * Drives a workload through a freshly instantiated NPU and collects
 * the telemetry the modelling and DVFS stages consume.
 *
 * Implements the Fig. 14 execution mechanism: SetFreq operators run on
 * a dedicated stream, released by sync events recorded on the compute
 * stream after their trigger operators, so a frequency change lands at
 * a chosen point of the operator sequence without blocking compute.
 */

#ifndef OPDVFS_TRACE_WORKLOAD_RUNNER_H
#define OPDVFS_TRACE_WORKLOAD_RUNNER_H

#include <cstdint>
#include <vector>

#include "models/workload.h"
#include "npu/npu_chip.h"
#include "trace/power_sampler.h"
#include "trace/profiler.h"

namespace opdvfs::trace {

/**
 * Dispatch a SetFreq operator when the operator at
 * @p after_op_index completes (the "SetFreq trigger" of Fig. 14).
 */
struct SetFreqTrigger
{
    std::size_t after_op_index = 0;
    double mhz = 0.0;
};

/** Options for one measurement run. */
struct RunOptions
{
    /** Core frequency at iteration start. */
    double initial_mhz = 1800.0;
    /**
     * Repeat the iteration until this much simulated time has passed
     * before measuring, so the die reaches thermal steady state
     * ("once stable training is achieved", Sect. 7.4).
     */
    double warmup_seconds = 0.0;
    /** Telemetry sampling period. */
    Tick sample_period = 50 * kTicksPerMs;
    /** Keep sampling through an idle tail of this many seconds. */
    double cooldown_seconds = 0.0;
    ProfilerNoise profiler_noise;
    SamplerNoise sampler_noise;
    std::uint64_t seed = 1;
};

/** Everything measured over one iteration. */
struct RunResult
{
    /** Wall time of the measured iteration, seconds. */
    double iteration_seconds = 0.0;
    double aicore_energy_j = 0.0;
    double soc_energy_j = 0.0;
    double aicore_avg_w = 0.0;
    double soc_avg_w = 0.0;
    /** Mean sampled die temperature over the iteration. */
    double avg_temperature_c = 0.0;
    /** SetFreq operators executed during the measured iteration. */
    std::uint64_t set_freq_count = 0;
    /** Per-operator records of the measured iteration. */
    std::vector<OpRecord> records;
    /** Telemetry samples (measurement + cooldown tail). */
    std::vector<PowerSample> samples;
};

/** Owns chip construction and the measurement protocol. */
class WorkloadRunner
{
  public:
    explicit WorkloadRunner(npu::NpuConfig config) : config_(config) {}

    /**
     * Run @p workload once (after optional warm-up repetitions) with
     * the given SetFreq triggers applied every iteration.
     */
    RunResult run(const models::Workload &workload,
                  const RunOptions &options,
                  const std::vector<SetFreqTrigger> &triggers = {}) const;

    const npu::NpuConfig &config() const { return config_; }

  private:
    npu::NpuConfig config_;
};

} // namespace opdvfs::trace

#endif // OPDVFS_TRACE_WORKLOAD_RUNNER_H
