#include "trace/workload_runner.h"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>

#include "common/statistics.h"
#include "ops/op_factory.h"
#include "sim/simulator.h"

namespace opdvfs::trace {

namespace {

/** Queue one iteration, attaching SetFreq triggers per Fig. 14. */
void
enqueueIteration(npu::NpuChip &chip, const models::Workload &workload,
                 const std::multimap<std::size_t, double> &triggers)
{
    for (std::size_t i = 0; i < workload.iteration.size(); ++i) {
        const ops::Op &op = workload.iteration[i];
        chip.enqueueOp(op.hw, op.id);

        auto range = triggers.equal_range(i);
        for (auto it = range.first; it != range.second; ++it) {
            auto event = std::make_shared<sim::SyncEvent>();
            chip.computeStream().enqueueRecord(event);
            chip.setFreqStream().enqueueWait(event);
            chip.enqueueSetFreq(it->second);
        }
    }
}

} // namespace

RunResult
WorkloadRunner::run(const models::Workload &workload,
                    const RunOptions &options,
                    const std::vector<SetFreqTrigger> &triggers) const
{
    if (workload.iteration.empty())
        throw std::invalid_argument("WorkloadRunner: empty workload");

    std::multimap<std::size_t, double> trigger_map;
    for (const auto &t : triggers) {
        if (t.after_op_index >= workload.iteration.size())
            throw std::invalid_argument(
                "WorkloadRunner: trigger index out of range");
        trigger_map.emplace(t.after_op_index, t.mhz);
    }

    sim::Simulator simulator;
    npu::NpuConfig chip_config = config_;
    chip_config.initial_mhz = options.initial_mhz;
    npu::NpuChip chip(simulator, chip_config);

    Profiler profiler(chip, options.profiler_noise, options.seed * 7919 + 1);
    profiler.registerSequence(workload.iteration);
    PowerSampler sampler(chip, options.sample_period, options.sampler_noise,
                         options.seed * 104729 + 2);

    // Warm-up repetitions until thermal steady state.
    while (ticksToSeconds(simulator.now()) < options.warmup_seconds) {
        enqueueIteration(chip, workload, trigger_map);
        simulator.run();
    }

    // Measured iteration.
    profiler.clear();
    chip.resetEnergy();
    std::uint64_t set_freq_before = chip.dvfs().setFreqCount();
    sampler.start(/*stop_when_idle=*/true);
    enqueueIteration(chip, workload, trigger_map);
    simulator.run();
    chip.syncAccounting();

    RunResult result;
    result.set_freq_count = chip.dvfs().setFreqCount() - set_freq_before;
    result.records = profiler.records();
    // Read the snapshot taken when the last operator retired, so any
    // telemetry events trailing past the iteration don't dilute the
    // averages with idle time.
    const npu::EnergyCounters &energy = chip.energyAtLastRetire();
    result.aicore_energy_j = energy.aicore_joules;
    result.soc_energy_j = energy.soc_joules;
    result.aicore_avg_w = energy.aicoreAvgWatts();
    result.soc_avg_w = energy.socAvgWatts();

    if (!result.records.empty()) {
        Tick first = result.records.front().start;
        Tick last = 0;
        for (const auto &r : result.records)
            last = std::max(last, r.end);
        result.iteration_seconds = ticksToSeconds(last - first);
    }

    // Optional idle cool-down tail (for gamma calibration traces).
    if (options.cooldown_seconds > 0.0) {
        npu::HwOpParams tail;
        tail.category = npu::OpCategory::Idle;
        tail.fixed_seconds = options.cooldown_seconds;
        sampler.start(/*stop_when_idle=*/true);
        // Id outside the registered sequence: profiler ignores it.
        chip.enqueueOp(tail, workload.iteration.size() + 1'000'000'000ULL);
        simulator.run();
        chip.syncAccounting();
    }

    Tick iteration_end = 0;
    for (const auto &r : result.records)
        iteration_end = std::max(iteration_end, r.end);
    std::vector<double> temps;
    temps.reserve(sampler.samples().size());
    for (const auto &s : sampler.samples()) {
        if (s.tick <= iteration_end)
            temps.push_back(s.temperature_c);
    }
    if (temps.empty()) {
        for (const auto &s : sampler.samples())
            temps.push_back(s.temperature_c);
    }
    result.avg_temperature_c = stats::mean(temps);
    result.samples = sampler.samples();
    return result;
}

} // namespace opdvfs::trace
