/**
 * @file
 * Periodic power/temperature telemetry: the stand-in for Ascend's
 * lpmi_tool (Sect. 6, Sect. 7.3).  Samples the chip's instantaneous
 * SoC power, AICore power and die temperature on a fixed period with
 * measurement noise and quantisation.
 */

#ifndef OPDVFS_TRACE_POWER_SAMPLER_H
#define OPDVFS_TRACE_POWER_SAMPLER_H

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "npu/npu_chip.h"

namespace opdvfs::trace {

/** One telemetry sample. */
struct PowerSample
{
    Tick tick = 0;
    double soc_watts = 0.0;
    double aicore_watts = 0.0;
    double temperature_c = 0.0;
    /** Core frequency at sampling time. */
    double f_mhz = 0.0;
};

/** Sampler noise/quantisation configuration. */
struct SamplerNoise
{
    /** Relative sigma of power readings. */
    double power_sigma = 0.015;
    /** Temperature readings quantise to this step (degC). */
    double temperature_step = 0.5;
};

/** Periodic telemetry sampler driven by the simulator. */
class PowerSampler
{
  public:
    PowerSampler(npu::NpuChip &chip, Tick period, SamplerNoise noise,
                 std::uint64_t seed);

    /**
     * Begin sampling.  The sampler re-arms itself after each sample
     * until stop() is called or, with @p stop_when_idle, until the
     * chip's streams drain.
     */
    void start(bool stop_when_idle = true);

    /** Stop after the next pending sample. */
    void stop() { running_ = false; }

    /** Take one sample immediately. */
    void sampleNow();

    const std::vector<PowerSample> &samples() const { return samples_; }

    void clear() { samples_.clear(); }

  private:
    void scheduleNext();

    npu::NpuChip &chip_;
    Tick period_;
    SamplerNoise noise_;
    Rng rng_;
    bool running_ = false;
    bool stop_when_idle_ = true;
    std::vector<PowerSample> samples_;
};

} // namespace opdvfs::trace

#endif // OPDVFS_TRACE_POWER_SAMPLER_H
