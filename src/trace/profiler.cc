#include "trace/profiler.h"

#include <algorithm>
#include <stdexcept>

#include "npu/aicore_timeline.h"

namespace opdvfs::trace {

Profiler::Profiler(npu::NpuChip &chip, ProfilerNoise noise,
                   std::uint64_t seed)
    : chip_(chip), noise_(noise), rng_(seed)
{
    chip.setObserver(this);
}

void
Profiler::registerSequence(const ops::OpSequence &sequence)
{
    for (const auto &op : sequence)
        metadata_[op.id] = &op;
}

void
Profiler::opStarted(std::uint64_t, Tick)
{
}

void
Profiler::opFinished(std::uint64_t op_id, Tick start, Tick end,
                     double f_mhz_at_end)
{
    auto it = metadata_.find(op_id);
    if (it == metadata_.end())
        return; // Unregistered helper op (e.g. a cool-down idle tail).
    const ops::Op &op = *it->second;

    OpRecord record;
    record.op_id = op_id;
    record.type = op.type;
    record.category = op.hw.category;
    record.start = start;
    record.end = end;
    record.f_mhz = f_mhz_at_end;
    record.duration_s = ticksToSeconds(end - start)
        * rng_.noiseFactor(noise_.duration_sigma);

    if (op.hw.category == npu::OpCategory::Compute) {
        npu::AicoreTimeline timeline(op.hw, chip_.memorySystem());
        npu::PipelineRatios truth = timeline.ratios(f_mhz_at_end);
        auto jitter = [this](double r) {
            if (r <= 0.0)
                return 0.0;
            return std::clamp(r + rng_.gaussian(0.0, noise_.ratio_sigma),
                              0.0, 1.0);
        };
        record.ratios.cube = jitter(truth.cube);
        record.ratios.vector = jitter(truth.vector);
        record.ratios.scalar = jitter(truth.scalar);
        record.ratios.mte1 = jitter(truth.mte1);
        record.ratios.mte2 = jitter(truth.mte2);
        record.ratios.mte3 = jitter(truth.mte3);
    }

    records_.push_back(std::move(record));
}

} // namespace opdvfs::trace
