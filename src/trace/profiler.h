/**
 * @file
 * Operator-level profiler: the stand-in for the CANN profiler the
 * paper uses to collect execution sequences, per-operator timings and
 * pipeline-utilisation ratios (Sect. 6.2 step 1).
 *
 * Records carry realistic measurement noise; downstream model fitting
 * and classification never see the simulator's ground truth directly.
 */

#ifndef OPDVFS_TRACE_PROFILER_H
#define OPDVFS_TRACE_PROFILER_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "npu/npu_chip.h"
#include "ops/op.h"

namespace opdvfs::trace {

/** One profiled operator execution. */
struct OpRecord
{
    /** Operator id: its index within the iteration sequence. */
    std::uint64_t op_id = 0;
    std::string type;
    npu::OpCategory category = npu::OpCategory::Compute;
    Tick start = 0;
    Tick end = 0;
    /** Measured (noisy) duration in seconds. */
    double duration_s = 0.0;
    /** Core frequency when the operator retired. */
    double f_mhz = 0.0;
    /** Measured (noisy) pipeline-utilisation ratios. */
    npu::PipelineRatios ratios;
};

/** Profiler noise configuration. */
struct ProfilerNoise
{
    /** Relative sigma of duration measurements. */
    double duration_sigma = 0.006;
    /** Absolute sigma of pipeline ratios. */
    double ratio_sigma = 0.015;
};

/** Observes a chip and accumulates operator records. */
class Profiler : public npu::NpuChip::OpObserver
{
  public:
    Profiler(npu::NpuChip &chip, ProfilerNoise noise, std::uint64_t seed);

    /** Register the metadata of the ops about to run. */
    void registerSequence(const ops::OpSequence &sequence);

    void opStarted(std::uint64_t op_id, Tick start) override;
    void opFinished(std::uint64_t op_id, Tick start, Tick end,
                    double f_mhz_at_end) override;

    /** All records so far, in completion order. */
    const std::vector<OpRecord> &records() const { return records_; }

    /** Drop accumulated records (e.g. after warm-up). */
    void clear() { records_.clear(); }

  private:
    npu::NpuChip &chip_;
    ProfilerNoise noise_;
    Rng rng_;
    std::unordered_map<std::uint64_t, const ops::Op *> metadata_;
    std::vector<OpRecord> records_;
};

} // namespace opdvfs::trace

#endif // OPDVFS_TRACE_PROFILER_H
