#include "trace/trace_export.h"

#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <string>

namespace opdvfs::trace {

namespace {

const char *
categoryName(npu::OpCategory category)
{
    switch (category) {
      case npu::OpCategory::Compute:       return "Compute";
      case npu::OpCategory::Aicpu:         return "AICPU";
      case npu::OpCategory::Communication: return "Communication";
      case npu::OpCategory::Idle:          return "Idle";
    }
    return "?";
}

} // namespace

void
exportOpRecordsCsv(const std::vector<OpRecord> &records, std::ostream &os)
{
    // Enough digits that import round-trips tick-accurately.
    os << std::setprecision(15);
    os << "op_id,type,category,start_us,end_us,duration_us,f_mhz,"
          "cube,vector,scalar,mte1,mte2,mte3\n";
    for (const auto &r : records) {
        os << r.op_id << "," << r.type << "," << categoryName(r.category)
           << "," << ticksToSeconds(r.start) * 1e6 << ","
           << ticksToSeconds(r.end) * 1e6 << "," << r.duration_s * 1e6
           << "," << r.f_mhz << "," << r.ratios.cube << ","
           << r.ratios.vector << "," << r.ratios.scalar << ","
           << r.ratios.mte1 << "," << r.ratios.mte2 << ","
           << r.ratios.mte3 << "\n";
    }
}

std::vector<OpRecord>
importOpRecordsCsv(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line)
        || line.rfind("op_id,type,category", 0) != 0) {
        throw std::invalid_argument(
            "importOpRecordsCsv: missing or unknown header");
    }

    auto parseCategory = [](const std::string &name) {
        if (name == "Compute")
            return npu::OpCategory::Compute;
        if (name == "AICPU")
            return npu::OpCategory::Aicpu;
        if (name == "Communication")
            return npu::OpCategory::Communication;
        if (name == "Idle")
            return npu::OpCategory::Idle;
        throw std::invalid_argument(
            "importOpRecordsCsv: unknown category '" + name + "'");
    };

    std::vector<OpRecord> records;
    std::size_t line_number = 1;
    while (std::getline(is, line)) {
        ++line_number;
        if (line.empty())
            continue;

        std::vector<std::string> fields;
        std::string field;
        std::istringstream row(line);
        while (std::getline(row, field, ','))
            fields.push_back(field);
        if (fields.size() != 13) {
            throw std::invalid_argument(
                "importOpRecordsCsv: line "
                + std::to_string(line_number) + ": expected 13 fields, got "
                + std::to_string(fields.size()));
        }

        try {
            OpRecord record;
            record.op_id = std::stoull(fields[0]);
            record.type = fields[1];
            record.category = parseCategory(fields[2]);
            record.start = secondsToTicks(std::stod(fields[3]) * 1e-6);
            record.end = secondsToTicks(std::stod(fields[4]) * 1e-6);
            record.duration_s = std::stod(fields[5]) * 1e-6;
            record.f_mhz = std::stod(fields[6]);
            record.ratios.cube = std::stod(fields[7]);
            record.ratios.vector = std::stod(fields[8]);
            record.ratios.scalar = std::stod(fields[9]);
            record.ratios.mte1 = std::stod(fields[10]);
            record.ratios.mte2 = std::stod(fields[11]);
            record.ratios.mte3 = std::stod(fields[12]);
            records.push_back(std::move(record));
        } catch (const std::invalid_argument &) {
            throw std::invalid_argument("importOpRecordsCsv: line "
                                        + std::to_string(line_number)
                                        + ": bad numeric field");
        }
    }
    return records;
}

void
exportPowerSamplesCsv(const std::vector<PowerSample> &samples,
                      std::ostream &os)
{
    os << "time_s,soc_watts,aicore_watts,temperature_c,f_mhz\n";
    for (const auto &s : samples) {
        os << ticksToSeconds(s.tick) << "," << s.soc_watts << ","
           << s.aicore_watts << "," << s.temperature_c << "," << s.f_mhz
           << "\n";
    }
}

} // namespace opdvfs::trace
