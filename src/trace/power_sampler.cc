#include "trace/power_sampler.h"

#include <cmath>
#include <stdexcept>

namespace opdvfs::trace {

PowerSampler::PowerSampler(npu::NpuChip &chip, Tick period,
                           SamplerNoise noise, std::uint64_t seed)
    : chip_(chip), period_(period), noise_(noise), rng_(seed)
{
    if (period <= 0)
        throw std::invalid_argument("PowerSampler: non-positive period");
}

void
PowerSampler::start(bool stop_when_idle)
{
    stop_when_idle_ = stop_when_idle;
    if (running_)
        return;
    running_ = true;
    scheduleNext();
}

void
PowerSampler::sampleNow()
{
    chip_.syncAccounting();

    // Telemetry-channel faults: a blackout loses the sample entirely;
    // a spike corrupts the readings that do come through.
    npu::TelemetryFault fault = npu::TelemetryFault::None;
    if (npu::FaultInjector *injector = chip_.faultInjector()) {
        fault = injector->telemetrySample(chip_.simulator().now());
        if (fault == npu::TelemetryFault::Blackout)
            return;
    }

    PowerSample sample;
    sample.tick = chip_.simulator().now();
    sample.soc_watts =
        chip_.instantSocPower() * rng_.noiseFactor(noise_.power_sigma);
    sample.aicore_watts =
        chip_.instantAicorePower() * rng_.noiseFactor(noise_.power_sigma);
    double t = chip_.temperature();
    if (const npu::FaultInjector *injector = chip_.faultInjector()) {
        // Sensor-aging drift: a slow additive bias on the power
        // readings (the die's true power is unchanged).
        double bias = injector->sensorBiasWatts(sample.tick);
        sample.soc_watts += bias;
        sample.aicore_watts += bias;
    }
    if (fault == npu::TelemetryFault::Spike) {
        const npu::FaultPlan &plan = chip_.faultInjector()->plan();
        sample.soc_watts *= plan.spike_factor;
        sample.aicore_watts *= plan.spike_factor;
        t += plan.spike_temperature_delta;
    }
    if (noise_.temperature_step > 0.0) {
        t = std::round(t / noise_.temperature_step)
            * noise_.temperature_step;
    }
    sample.temperature_c = t;
    sample.f_mhz = chip_.dvfs().currentMhz();
    samples_.push_back(sample);
}

void
PowerSampler::scheduleNext()
{
    chip_.simulator().scheduleIn(period_, [this] {
        if (!running_)
            return;
        sampleNow();
        if (stop_when_idle_ && chip_.idle()) {
            running_ = false;
            return;
        }
        scheduleNext();
    });
}

} // namespace opdvfs::trace
