/**
 * @file
 * Incremental GA fitness: structure-of-arrays per-stage contribution
 * tables plus per-individual cached reduction trees, so a mutated
 * child re-scores only its changed stages against the parent's cache.
 *
 * Bit-exactness under floating-point non-associativity is the crux:
 * naively subtracting a stage's old contribution and adding the new
 * one changes the summation order and so the last ulps.  Instead,
 * every individual's four timeline/power sums (seconds, AICore and
 * SoC energy, voltage-seconds) live in a fixed-shape pairwise
 * reduction tree over stages.  A full build computes every node as
 * left + right; an incremental build copies the parent's tree, writes
 * the dirty leaves, and recomputes exactly the ancestor nodes — each
 * as the same left + right expression over children that are bitwise
 * what a full build would produce.  By induction over tree levels the
 * two paths yield bitwise-identical roots, scores and evaluations
 * (prop_tune.cc pins this under seeded mutation streams).
 *
 * The win: with n stages and d dirty genes, a child costs
 * O(d log n) adds instead of O(n) — and the constant is small because
 * the per-(stage, frequency) cells are a contiguous SoA copied out of
 * the StageEvaluator once at construction.
 */

#ifndef OPDVFS_TUNE_INCREMENTAL_H
#define OPDVFS_TUNE_INCREMENTAL_H

#include <atomic>
#include <cstdint>
#include <vector>

#include "dvfs/evaluator.h"
#include "dvfs/genetic.h"

namespace opdvfs::tune {

/** The four running sums of one reduction-tree node. */
struct StageSums
{
    double seconds = 0.0;
    double aicore_joules_no_t = 0.0;
    double soc_joules_no_t = 0.0;
    double volt_seconds = 0.0;
};

/** Incremental-evaluation counters (monotonic per search). */
struct IncrementalStats
{
    std::uint64_t full_builds = 0;
    std::uint64_t incremental_builds = 0;
    /** Leaves rewritten by incremental builds. */
    std::uint64_t genes_patched = 0;
    /** Leaves an equal number of full builds would have rewritten. */
    std::uint64_t genes_total = 0;
};

/** Cached-prefix fitness backend for dvfs::searchStrategy. */
class IncrementalFitness : public dvfs::FitnessBackend
{
  public:
    /** Copies the evaluator's cell tables; the evaluator may be
     *  discarded afterwards. */
    explicit IncrementalFitness(const dvfs::StageEvaluator &evaluator);

    void
    scoreGeneration(const std::vector<std::vector<std::uint8_t>> &genomes,
                    const std::vector<dvfs::GenomeLineage> &lineage,
                    double perf_lower_bound,
                    const dvfs::ParallelFor &parallel_for,
                    std::vector<double> &scores,
                    std::vector<dvfs::StrategyEvaluation> &evals) override;

    void scoreOne(const std::vector<std::uint8_t> &genome,
                  double perf_lower_bound, double &score,
                  dvfs::StrategyEvaluation &eval) override;

    IncrementalStats stats() const;

    std::size_t stageCount() const { return n_; }
    const std::vector<double> &frequenciesMhz() const { return freqs_; }

  private:
    /** One individual's reduction tree (2m nodes, root at 1). */
    using State = std::vector<StageSums>;

    void buildFull(State &state,
                   const std::vector<std::uint8_t> &genome) const;
    /** Returns the number of unique leaves rewritten. */
    std::size_t patch(State &state,
                      const std::vector<std::uint8_t> &genome,
                      const std::vector<dvfs::GeneSpan> &dirty) const;
    dvfs::StrategyEvaluation evaluateRoot(const State &state) const;

    std::size_t n_ = 0;
    /** Leaf offset: smallest power of two >= n_. */
    std::size_t m_ = 1;
    std::vector<double> freqs_;
    /** SoA cell table, stage-major: cells_[s * freqs + f]. */
    std::vector<StageSums> cells_;
    double gamma_aicore_ = 0.0;
    double gamma_soc_ = 0.0;
    double k_per_watt_ = 0.0;

    /** Trees of the previously scored generation / the one being
     *  scored; swapped after every scoreGeneration. */
    std::vector<State> prev_;
    std::vector<State> next_;

    std::atomic<std::uint64_t> full_builds_{0};
    std::atomic<std::uint64_t> incremental_builds_{0};
    std::atomic<std::uint64_t> genes_patched_{0};
    std::atomic<std::uint64_t> genes_total_{0};
};

} // namespace opdvfs::tune

#endif // OPDVFS_TUNE_INCREMENTAL_H
