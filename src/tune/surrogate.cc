#include "tune/surrogate.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "dvfs/genetic.h"
#include "math/linear_solve.h"
#include "tune/features.h"

namespace opdvfs::tune {

Surrogate::Surrogate(SurrogateOptions options)
    : options_(std::move(options))
{
    if (options_.min_rows == 0)
        options_.min_rows = 1;
    if (options_.refit_interval_rows == 0)
        options_.refit_interval_rows = 1;
    if (options_.max_rows < options_.min_rows)
        options_.max_rows = options_.min_rows;
    if (options_.boost_rounds < 0 || options_.learning_rate <= 0.0
        || options_.ridge_lambda < 0.0 || options_.quantile_cuts < 1)
        throw std::invalid_argument("Surrogate: bad options");
}

std::size_t
Surrogate::loadCorpus()
{
    if (options_.corpus_path.empty())
        return 0;
    std::vector<Observation> corpus = loadCorpusFile(options_.corpus_path);
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Observation &observation : corpus)
        ingestLocked(observation);
    maybeRefitLocked();
    return corpus.size();
}

void
Surrogate::seedCorpus(const std::vector<Observation> &corpus)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Observation &observation : corpus)
        ingestLocked(observation);
    maybeRefitLocked();
}

void
Surrogate::observe(const Observation &observation)
{
    if (observation.empty())
        return;
    if (!options_.corpus_path.empty()) {
        try {
            appendObservationFile(options_.corpus_path, observation);
        } catch (const std::exception &) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++counters_.corpus_write_failures;
        }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ingestLocked(observation);
    maybeRefitLocked();
}

void
Surrogate::ingestLocked(const Observation &observation)
{
    ++counters_.observations;
    for (const StageSample &sample : observation) {
        rows_.push_back(sample);
        ++counters_.rows;
        ++rows_since_fit_;
        while (rows_.size() > options_.max_rows)
            rows_.pop_front();
    }
}

void
Surrogate::maybeRefitLocked()
{
    if (rows_.size() < options_.min_rows)
        return;
    if (model_ && rows_since_fit_ < options_.refit_interval_rows)
        return;
    refitLocked();
}

void
Surrogate::refitLocked()
{
    std::size_t count = rows_.size();
    std::size_t features = rows_.front().features.size();
    for (const StageSample &row : rows_) {
        if (row.features.size() != features)
            throw std::invalid_argument("Surrogate: ragged feature rows");
    }

    auto model = std::make_shared<Model>();
    model->features = features;

    // --- ridge half: global linear trend ----------------------------------
    math::Matrix design(count, features + 1);
    std::vector<double> target(count);
    std::size_t r = 0;
    for (const StageSample &row : rows_) {
        for (std::size_t f = 0; f < features; ++f)
            design(r, f) = row.features[f];
        design(r, features) = 1.0; // bias
        target[r] = row.target_mhz;
        ++r;
    }
    // Ridge normal equations with relative + absolute damping.  Real
    // feature rows routinely contain identically-zero columns (a
    // bottleneck class the fleet never produced) and collinear ones
    // (workload-context features repeat across every row of an
    // observation); relative-only damping leaves that Gram matrix
    // singular, while the absolute term makes it positive definite and
    // pins dead features' weights at zero.
    math::Matrix normal = design.gram();
    std::vector<double> rhs = design.transposeTimes(target);
    for (std::size_t i = 0; i < normal.rows(); ++i) {
        normal(i, i) = normal(i, i) * (1.0 + options_.ridge_lambda)
                       + options_.ridge_lambda;
    }
    model->weights = math::solve(std::move(normal), std::move(rhs));

    // --- boosted stumps on the residuals ----------------------------------
    std::vector<double> residual(count);
    for (std::size_t i = 0; i < count; ++i)
        residual[i] = target[i] - predictRow(*model, rows_[i].features);

    // Deterministic quantile grid per feature, computed once.
    auto cuts = static_cast<std::size_t>(options_.quantile_cuts);
    std::vector<std::vector<double>> thresholds(features);
    std::vector<double> column(count);
    for (std::size_t f = 0; f < features; ++f) {
        for (std::size_t i = 0; i < count; ++i)
            column[i] = rows_[i].features[f];
        std::sort(column.begin(), column.end());
        std::vector<double> &grid = thresholds[f];
        for (std::size_t q = 1; q <= cuts; ++q) {
            double value = column[(count - 1) * q / (cuts + 1)];
            if (grid.empty() || value > grid.back())
                grid.push_back(value);
        }
        // A constant column yields one threshold that splits nothing;
        // the gain scan skips degenerate partitions below.
    }

    double total_sq = 0.0;
    for (double v : residual)
        total_sq += v * v;

    for (int round = 0; round < options_.boost_rounds; ++round) {
        // Find the (feature, threshold) split minimising residual SSE;
        // the scan is index-ordered and only a strictly better gain
        // replaces the incumbent, so fitting is order-deterministic.
        bool found = false;
        std::size_t best_f = 0;
        double best_threshold = 0.0;
        double best_gain = 0.0;
        double best_left = 0.0;
        double best_right = 0.0;
        for (std::size_t f = 0; f < features; ++f) {
            for (double threshold : thresholds[f]) {
                double sum_l = 0.0;
                double sum_r = 0.0;
                std::size_t n_l = 0;
                std::size_t n_r = 0;
                for (std::size_t i = 0; i < count; ++i) {
                    if (rows_[i].features[f] <= threshold) {
                        sum_l += residual[i];
                        ++n_l;
                    } else {
                        sum_r += residual[i];
                        ++n_r;
                    }
                }
                if (n_l == 0 || n_r == 0)
                    continue;
                double gain =
                    sum_l * sum_l / static_cast<double>(n_l)
                    + sum_r * sum_r / static_cast<double>(n_r);
                if (!found || gain > best_gain) {
                    found = true;
                    best_f = f;
                    best_threshold = threshold;
                    best_gain = gain;
                    best_left = sum_l / static_cast<double>(n_l);
                    best_right = sum_r / static_cast<double>(n_r);
                }
            }
        }
        // Stop once no split explains a meaningful residual fraction.
        if (!found || best_gain <= 1e-12 * std::max(total_sq, 1.0))
            break;

        Stump stump;
        stump.feature = best_f;
        stump.threshold = best_threshold;
        stump.left = options_.learning_rate * best_left;
        stump.right = options_.learning_rate * best_right;
        for (std::size_t i = 0; i < count; ++i) {
            residual[i] -= rows_[i].features[best_f] <= best_threshold
                               ? stump.left
                               : stump.right;
        }
        model->stumps.push_back(stump);
    }

    model_ = std::move(model);
    rows_since_fit_ = 0;
    ++counters_.refits;
}

bool
Surrogate::ready() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return model_ != nullptr;
}

double
Surrogate::predictRow(const Model &model,
                      const std::vector<double> &features)
{
    double value = model.weights[model.features]; // bias
    for (std::size_t f = 0; f < model.features; ++f)
        value += model.weights[f] * features[f];
    for (const Stump &stump : model.stumps) {
        value += features[stump.feature] <= stump.threshold ? stump.left
                                                            : stump.right;
    }
    return value;
}

std::vector<double>
Surrogate::predictMhz(const std::vector<StageSample> &rows) const
{
    std::shared_ptr<const Model> model;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        model = model_;
    }
    if (!model)
        throw std::logic_error("Surrogate: no model fitted yet");
    std::vector<double> predicted;
    predicted.reserve(rows.size());
    for (const StageSample &row : rows) {
        if (row.features.size() != model->features)
            throw std::invalid_argument(
                "Surrogate: feature length mismatch");
        predicted.push_back(predictRow(*model, row.features));
    }
    return predicted;
}

SurrogateCounters
Surrogate::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

PredictedStrategy
predictStrategy(const Surrogate &surrogate,
                const std::vector<StageSample> &rows,
                const dvfs::StageEvaluator &evaluator,
                double perf_loss_target)
{
    std::size_t n = evaluator.stageCount();
    if (rows.size() != n)
        throw std::invalid_argument("predictStrategy: row/stage mismatch");

    const std::vector<double> &freqs = evaluator.frequenciesMhz();
    auto max_index = static_cast<std::uint8_t>(freqs.size() - 1);
    std::vector<double> raw = surrogate.predictMhz(rows);

    PredictedStrategy out;
    out.genome.resize(n);
    for (std::size_t s = 0; s < n; ++s) {
        std::size_t best = 0;
        for (std::size_t f = 1; f < freqs.size(); ++f) {
            if (std::abs(freqs[f] - raw[s]) < std::abs(freqs[best] - raw[s]))
                best = f;
        }
        out.genome[s] = static_cast<std::uint8_t>(best);
    }

    out.baseline_eval = evaluator.evaluateBaseline();
    double per_baseline = 1e-6 / out.baseline_eval.seconds;
    double per_lb = per_baseline * (1.0 - perf_loss_target);

    out.eval = evaluator.evaluate(out.genome);
    // Feasibility repair: raise the gene saving the most time per
    // step until the performance bound holds.  The all-max genome is
    // the baseline itself, so the loop always terminates feasible.
    while (1e-6 / out.eval.seconds < per_lb) {
        std::size_t pick = n;
        double best_gain = -std::numeric_limits<double>::infinity();
        for (std::size_t s = 0; s < n; ++s) {
            if (out.genome[s] >= max_index)
                continue;
            double gain =
                evaluator.cellAt(s, out.genome[s]).seconds
                - evaluator.cellAt(s, out.genome[s] + 1u).seconds;
            if (pick == n || gain > best_gain) {
                pick = s;
                best_gain = gain;
            }
        }
        if (pick == n)
            break; // already all-max: nothing left to raise
        ++out.genome[pick];
        ++out.repair_steps;
        out.eval = evaluator.evaluate(out.genome);
    }

    out.score = dvfs::strategyScore(out.eval, per_lb);
    out.mhz.reserve(n);
    for (std::uint8_t gene : out.genome)
        out.mhz.push_back(freqs[gene]);
    return out;
}

} // namespace opdvfs::tune
