#include "tune/corpus.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/crc32.h"

namespace opdvfs::tune {

namespace {

constexpr char kMagic[4] = {'O', 'T', 'C', '1'};

void
putU32(std::string &out, std::uint32_t value)
{
    for (int byte = 0; byte < 4; ++byte)
        out.push_back(static_cast<char>((value >> (8 * byte)) & 0xffu));
}

void
putDouble(std::string &out, double value)
{
    auto bits = std::bit_cast<std::uint64_t>(value);
    for (int byte = 0; byte < 8; ++byte)
        out.push_back(static_cast<char>((bits >> (8 * byte)) & 0xffu));
}

class Reader
{
  public:
    Reader(const std::string &bytes, std::size_t offset)
        : bytes_(bytes), offset_(offset)
    {}

    std::size_t offset() const { return offset_; }
    std::size_t remaining() const { return bytes_.size() - offset_; }

    std::uint32_t
    u32()
    {
        if (remaining() < 4)
            throw std::invalid_argument("corpus: truncated record");
        std::uint32_t value = 0;
        for (int byte = 0; byte < 4; ++byte)
            value |= static_cast<std::uint32_t>(
                         static_cast<unsigned char>(bytes_[offset_ + byte]))
                     << (8 * byte);
        offset_ += 4;
        return value;
    }

    double
    number()
    {
        if (remaining() < 8)
            throw std::invalid_argument("corpus: truncated record");
        std::uint64_t bits = 0;
        for (int byte = 0; byte < 8; ++byte)
            bits |= static_cast<std::uint64_t>(
                        static_cast<unsigned char>(bytes_[offset_ + byte]))
                    << (8 * byte);
        offset_ += 8;
        return std::bit_cast<double>(bits);
    }

  private:
    const std::string &bytes_;
    std::size_t offset_;
};

Observation
decodePayload(const std::string &payload)
{
    Reader reader(payload, 0);
    std::uint32_t rows = reader.u32();
    std::uint32_t features = reader.u32();
    if (rows == 0 || rows > kMaxCorpusRowsPerRecord)
        throw std::invalid_argument("corpus: row count outside caps");
    if (features == 0 || features > kMaxCorpusFeatures)
        throw std::invalid_argument("corpus: feature count outside caps");
    // Exact-size check up front so a forged header cannot drive a
    // large allocation before the shortfall is noticed.
    std::size_t need = static_cast<std::size_t>(rows)
                       * (static_cast<std::size_t>(features) + 1) * 8;
    if (reader.remaining() != need)
        throw std::invalid_argument("corpus: payload size mismatch");

    Observation observation;
    observation.reserve(rows);
    for (std::uint32_t r = 0; r < rows; ++r) {
        StageSample sample;
        sample.features.reserve(features);
        for (std::uint32_t f = 0; f < features; ++f) {
            double value = reader.number();
            if (!std::isfinite(value))
                throw std::invalid_argument("corpus: non-finite feature");
            sample.features.push_back(value);
        }
        sample.target_mhz = reader.number();
        if (!std::isfinite(sample.target_mhz) || sample.target_mhz <= 0.0)
            throw std::invalid_argument("corpus: bad target frequency");
        observation.push_back(std::move(sample));
    }
    return observation;
}

} // namespace

std::string
corpusHeader()
{
    return std::string(kMagic, sizeof(kMagic));
}

std::string
encodeObservation(const Observation &observation)
{
    if (observation.empty())
        throw std::invalid_argument("corpus: empty observation");
    std::size_t features = observation.front().features.size();
    if (features == 0 || features > kMaxCorpusFeatures)
        throw std::invalid_argument("corpus: feature count outside caps");
    if (observation.size() > kMaxCorpusRowsPerRecord)
        throw std::invalid_argument("corpus: row count outside caps");

    std::string payload;
    putU32(payload, static_cast<std::uint32_t>(observation.size()));
    putU32(payload, static_cast<std::uint32_t>(features));
    for (const StageSample &sample : observation) {
        if (sample.features.size() != features)
            throw std::invalid_argument("corpus: ragged feature rows");
        for (double value : sample.features) {
            if (!std::isfinite(value))
                throw std::invalid_argument("corpus: non-finite feature");
            putDouble(payload, value);
        }
        if (!std::isfinite(sample.target_mhz) || sample.target_mhz <= 0.0)
            throw std::invalid_argument("corpus: bad target frequency");
        putDouble(payload, sample.target_mhz);
    }

    std::string record;
    putU32(record, static_cast<std::uint32_t>(payload.size()));
    putU32(record, crc32(payload));
    record += payload;
    return record;
}

std::vector<Observation>
decodeCorpus(const std::string &bytes)
{
    if (bytes.size() < sizeof(kMagic)
        || std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        throw std::invalid_argument("corpus: bad magic");

    std::vector<Observation> corpus;
    std::size_t offset = sizeof(kMagic);
    while (offset < bytes.size()) {
        Reader reader(bytes, offset);
        std::uint32_t length = reader.u32();
        std::uint32_t declared_crc = reader.u32();
        constexpr std::size_t kMaxPayload =
            8 + static_cast<std::size_t>(kMaxCorpusRowsPerRecord)
                    * (static_cast<std::size_t>(kMaxCorpusFeatures) + 1) * 8;
        if (length > kMaxPayload)
            throw std::invalid_argument("corpus: record over caps");
        if (reader.remaining() < length)
            throw std::invalid_argument("corpus: truncated record");
        std::string payload = bytes.substr(reader.offset(), length);
        if (crc32(payload) != declared_crc)
            throw std::invalid_argument("corpus: CRC mismatch");
        corpus.push_back(decodePayload(payload));
        offset = reader.offset() + length;
    }
    return corpus;
}

void
appendObservationFile(const std::string &path,
                      const Observation &observation)
{
    std::string record = encodeObservation(observation);
    bool fresh = false;
    {
        std::ifstream probe(path, std::ios::binary);
        fresh = !probe.good();
    }
    std::ofstream os(path, std::ios::binary | std::ios::app);
    if (!os)
        throw std::runtime_error("corpus: cannot open " + path);
    if (fresh)
        os << corpusHeader();
    os.write(record.data(),
             static_cast<std::streamsize>(record.size()));
    os.flush();
    if (!os)
        throw std::runtime_error("corpus: write failed on " + path);
}

std::vector<Observation>
loadCorpusFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return {};
    std::ostringstream buffer;
    buffer << is.rdbuf();
    return decodeCorpus(buffer.str());
}

} // namespace opdvfs::tune
