/**
 * @file
 * The surrogate training corpus: per-stage feature rows paired with
 * the frequency the genetic search settled on, appended by the
 * strategy service every time a full search finishes.
 *
 * On disk the corpus is a binary append-only record stream:
 *
 *   bytes 0..3   magic "OTC1"
 *   then, per observation (one finished GA run):
 *     u32  payload length
 *     u32  CRC-32 of the payload
 *     payload:
 *       u32  row count
 *       u32  features per row
 *       per row: features-per-row doubles, then the target MHz double
 *
 * All integers are little-endian; doubles are IEEE bit patterns.
 * Appending a record is a single O_APPEND-style write, so a crash
 * tears at most the final record.  Loading is strict: a bad magic,
 * a truncated record, a CRC mismatch, an oversized declaration or a
 * non-finite value all throw std::invalid_argument — the surrogate
 * must never train on corrupted history (unlike the cache WAL, which
 * tolerates a torn tail, a corpus poisons every later prediction, so
 * the whole file is rejected and the caller starts fresh).
 */

#ifndef OPDVFS_TUNE_CORPUS_H
#define OPDVFS_TUNE_CORPUS_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace opdvfs::tune {

/** One stage of one solved workload: features and the GA's answer. */
struct StageSample
{
    /** Normalised stage + workload-context features (fixed length). */
    std::vector<double> features;
    /** The per-stage frequency the finished search chose, MHz. */
    double target_mhz = 0.0;
};

/** One corpus record: every stage row of one finished search. */
using Observation = std::vector<StageSample>;

/** Hard caps the loader enforces before allocating. */
inline constexpr std::uint32_t kMaxCorpusRowsPerRecord = 1u << 16;
inline constexpr std::uint32_t kMaxCorpusFeatures = 256;

/** Serialise one observation as a corpus record (length + CRC). */
std::string encodeObservation(const Observation &observation);

/**
 * Parse a whole corpus image (magic + records).
 * @throws std::invalid_argument on any corruption: bad magic,
 *         truncated record, CRC mismatch, cap violation, row shape
 *         mismatch or non-finite value.
 */
std::vector<Observation> decodeCorpus(const std::string &bytes);

/** The 4-byte corpus magic. */
std::string corpusHeader();

/**
 * Append @p observation to the corpus file at @p path, writing the
 * magic first when the file does not yet exist.
 * @throws std::runtime_error on I/O failure.
 */
void appendObservationFile(const std::string &path,
                           const Observation &observation);

/**
 * Load a corpus file.  A missing file returns an empty corpus (a
 * fresh service has no history); a corrupt one throws.
 */
std::vector<Observation> loadCorpusFile(const std::string &path);

} // namespace opdvfs::tune

#endif // OPDVFS_TUNE_CORPUS_H
