/**
 * @file
 * The surrogate pre-ranker: a deterministic linear + gradient-boosted
 * ensemble mapping static stage features to a near-optimal per-stage
 * frequency, trained online from finished GA runs.
 *
 * Model = ridge regression over the feature row (the global trend:
 * loss target, sensitivity, bottleneck mix push frequency up or down)
 * plus boosted regression stumps on the residuals (the non-linear
 * corrections: e.g. "memory-bound stages of byte-heavy workloads drop
 * two bins").  Both halves are exactly reproducible: the ridge solve
 * is a fixed-pivot Gaussian elimination and every stump is chosen by
 * a full deterministic scan with index-ordered tie-breaking, so the
 * same corpus always yields the same model and the same predictions —
 * a property test pins this.
 *
 * Training rows are per *stage*, not per workload, which makes the
 * model independent of stage count: a 9-stage workload contributes 9
 * rows and predicting a 40-stage workload just evaluates 40 rows.
 *
 * Thread-safety: observe()/refit() serialise on a mutex; predictions
 * read an immutable snapshot through a shared_ptr, so serving threads
 * never block on training.
 */

#ifndef OPDVFS_TUNE_SURROGATE_H
#define OPDVFS_TUNE_SURROGATE_H

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dvfs/evaluator.h"
#include "tune/corpus.h"

namespace opdvfs::tune {

/** Training/serving knobs. */
struct SurrogateOptions
{
    /** Stage rows required before the first model is fitted. */
    std::size_t min_rows = 64;
    /** Refit after this many new rows since the last fit. */
    std::size_t refit_interval_rows = 64;
    /** Training window: oldest rows beyond this are dropped, which
     *  bounds every refit to O(max_rows) regardless of uptime. */
    std::size_t max_rows = 4096;
    /** Boosted regression stumps fitted on the ridge residuals. */
    int boost_rounds = 24;
    /** Shrinkage applied to each stump's leaf values. */
    double learning_rate = 0.25;
    /** Tikhonov damping of the ridge normal equations. */
    double ridge_lambda = 1e-3;
    /** Candidate split thresholds per feature (quantile grid). */
    int quantile_cuts = 8;
    /**
     * When set, every observation is appended to this corpus file
     * (magic + CRC'd records) and loadCorpus() rehydrates from it.
     * Append failures never fail the serving path; they are counted.
     */
    std::string corpus_path;
};

/** Monotonic surrogate counters. */
struct SurrogateCounters
{
    std::uint64_t observations = 0;
    std::uint64_t rows = 0;
    std::uint64_t refits = 0;
    std::uint64_t corpus_write_failures = 0;
};

/** Online-trained per-stage frequency predictor. */
class Surrogate
{
  public:
    explicit Surrogate(SurrogateOptions options = {});

    /**
     * Rehydrate from `corpus_path` (no-op when unset or missing) and
     * fit once if enough rows arrived.  Returns observations loaded.
     * @throws std::invalid_argument when the corpus file is corrupt —
     *         the caller decides whether to start fresh.
     */
    std::size_t loadCorpus();

    /** Ingest observations without touching the corpus file (tests,
     *  peer-to-peer corpus transfer).  Refits per the usual policy. */
    void seedCorpus(const std::vector<Observation> &corpus);

    /**
     * Record one finished search: stage rows with `target_mhz` set to
     * the winning strategy's per-stage frequencies.  Appends to the
     * corpus file when configured and refits per the policy.  Never
     * throws on corpus I/O failure (counted instead).
     */
    void observe(const Observation &observation);

    /** True once a model has been fitted (predictions available). */
    bool ready() const;

    /**
     * Predicted frequency (MHz, un-snapped) per row.  Rows must have
     * kStageFeatureCount features.
     * @throws std::logic_error when no model is ready.
     */
    std::vector<double>
    predictMhz(const std::vector<StageSample> &rows) const;

    SurrogateCounters counters() const;

    const SurrogateOptions &options() const { return options_; }

  private:
    struct Stump
    {
        std::size_t feature = 0;
        double threshold = 0.0;
        /** Leaf values (already shrunk): x[feature] <= threshold. */
        double left = 0.0;
        double right = 0.0;
    };

    struct Model
    {
        /** Ridge weights, one per feature plus trailing bias. */
        std::vector<double> weights;
        std::vector<Stump> stumps;
        std::size_t features = 0;
    };

    void ingestLocked(const Observation &observation);
    void maybeRefitLocked();
    void refitLocked();
    static double predictRow(const Model &model,
                             const std::vector<double> &features);

    SurrogateOptions options_;
    mutable std::mutex mutex_;
    std::deque<StageSample> rows_;
    std::size_t rows_since_fit_ = 0;
    SurrogateCounters counters_;
    std::shared_ptr<const Model> model_;
};

/** A surrogate prediction turned into a servable strategy. */
struct PredictedStrategy
{
    /** Frequency index per stage (table-snapped by construction). */
    std::vector<std::uint8_t> genome;
    /** The same strategy as MHz per stage. */
    std::vector<double> mhz;
    /** Eq. 17 score of the prediction (one model evaluation). */
    double score = 0.0;
    dvfs::StrategyEvaluation eval;
    dvfs::StrategyEvaluation baseline_eval;
    /** Single-gene raises the feasibility repair applied. */
    int repair_steps = 0;
};

/**
 * Predict a full strategy: per-stage model predictions snapped to the
 * frequency table, then deterministically repaired until the Eq. 17
 * performance lower bound `per_baseline * (1 - perf_loss_target)` is
 * met — each repair step raises the gene with the largest predicted
 * time saving (ties: lowest stage index), terminating at the all-max
 * baseline, which always meets the bound.  The returned score is
 * validated by one StageEvaluator evaluation, so a served prediction
 * is always freq-table-snapped and loss-target-feasible.
 *
 * @p rows must be extractStageRows() output for the same preprocess
 * result the evaluator was built from (one row per stage).
 */
PredictedStrategy
predictStrategy(const Surrogate &surrogate,
                const std::vector<StageSample> &rows,
                const dvfs::StageEvaluator &evaluator,
                double perf_loss_target);

} // namespace opdvfs::tune

#endif // OPDVFS_TUNE_SURROGATE_H
