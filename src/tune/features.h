/**
 * @file
 * Static feature extraction for the surrogate pre-ranker.
 *
 * Each candidate stage of a preprocessed workload becomes one feature
 * row: workload-context features (op-type mix, bottleneck-class
 * histogram, chip frequency envelope, loss target) shared by every
 * stage of the observation, plus stage-local features (frequency
 * sensitivity, duration share, per-stage bottleneck mix, bytes/cycle
 * ratio).  Everything is derived from data the service already has
 * before any search runs — profiled records and the workload spec —
 * so a prediction needs no extra profiling (the DSO-style
 * predict-without-profiling path).
 *
 * The row layout is versioned by kStageFeatureCount: a corpus written
 * with a different layout has a different feature count and is
 * rejected at load time rather than silently mis-trained on.
 */

#ifndef OPDVFS_TUNE_FEATURES_H
#define OPDVFS_TUNE_FEATURES_H

#include <cstddef>

#include "dvfs/preprocess.h"
#include "models/workload.h"
#include "npu/npu_chip.h"
#include "tune/corpus.h"

namespace opdvfs::tune {

/** Number of bottleneck classes (dvfs::Bottleneck enumerators). */
inline constexpr std::size_t kBottleneckClasses = 7;

/** Fixed length of one stage feature row. */
inline constexpr std::size_t kStageFeatureCount = 32;

/**
 * One feature row per candidate stage of @p prep, in stage order.
 * `target_mhz` is left 0: the caller fills it from a finished search
 * (training) or ignores it (prediction).  Stage op ids resolve
 * against @p workload by operator id; records with no matching
 * operator (idle gaps) contribute timing but no hardware parameters.
 */
std::vector<StageSample>
extractStageRows(const models::Workload &workload,
                 const npu::NpuConfig &chip, double perf_loss_target,
                 const dvfs::PreprocessResult &prep);

} // namespace opdvfs::tune

#endif // OPDVFS_TUNE_FEATURES_H
