#include "tune/incremental.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace opdvfs::tune {

namespace {

StageSums
combine(const StageSums &left, const StageSums &right)
{
    return StageSums{left.seconds + right.seconds,
                     left.aicore_joules_no_t + right.aicore_joules_no_t,
                     left.soc_joules_no_t + right.soc_joules_no_t,
                     left.volt_seconds + right.volt_seconds};
}

} // namespace

IncrementalFitness::IncrementalFitness(
    const dvfs::StageEvaluator &evaluator)
    : n_(evaluator.stageCount()),
      m_(std::bit_ceil(std::max<std::size_t>(evaluator.stageCount(), 1))),
      freqs_(evaluator.frequenciesMhz()),
      gamma_aicore_(evaluator.gammaAicore()),
      gamma_soc_(evaluator.gammaSoc()),
      k_per_watt_(evaluator.kPerWatt())
{
    cells_.resize(n_ * freqs_.size());
    for (std::size_t s = 0; s < n_; ++s) {
        for (std::size_t f = 0; f < freqs_.size(); ++f) {
            const auto &cell = evaluator.cellAt(s, f);
            cells_[s * freqs_.size() + f] =
                StageSums{cell.seconds, cell.aicore_joules_no_t,
                          cell.soc_joules_no_t, cell.volt_seconds};
        }
    }
}

void
IncrementalFitness::buildFull(State &state,
                              const std::vector<std::uint8_t> &genome) const
{
    if (genome.size() != n_)
        throw std::invalid_argument(
            "IncrementalFitness: genome length mismatch");
    state.assign(2 * m_, StageSums{});
    for (std::size_t s = 0; s < n_; ++s)
        state[m_ + s] = cells_[s * freqs_.size() + genome[s]];
    for (std::size_t i = m_ - 1; i >= 1; --i)
        state[i] = combine(state[2 * i], state[2 * i + 1]);
}

std::size_t
IncrementalFitness::patch(State &state,
                          const std::vector<std::uint8_t> &genome,
                          const std::vector<dvfs::GeneSpan> &dirty) const
{
    if (genome.size() != n_)
        throw std::invalid_argument(
            "IncrementalFitness: genome length mismatch");
    // Rewrite the dirty leaves, then recompute exactly their ancestor
    // chain level by level.  Every recomputed node is left + right —
    // the same expression a full build evaluates — over children that
    // are already bitwise full-build values, so the patched tree is
    // bitwise the full-build tree of the child genome.
    std::vector<std::size_t> level;
    for (const dvfs::GeneSpan &span : dirty) {
        std::size_t end = std::min(span.end, n_);
        for (std::size_t s = span.begin; s < end; ++s) {
            state[m_ + s] = cells_[s * freqs_.size() + genome[s]];
            level.push_back(m_ + s);
        }
    }
    std::sort(level.begin(), level.end());
    level.erase(std::unique(level.begin(), level.end()), level.end());
    std::size_t patched = level.size(); // unique leaves rewritten
    while (!level.empty() && level.front() > 1) {
        std::vector<std::size_t> parents;
        parents.reserve(level.size());
        for (std::size_t index : level) {
            std::size_t parent = index / 2;
            if (parents.empty() || parents.back() != parent)
                parents.push_back(parent);
        }
        for (std::size_t parent : parents)
            state[parent] = combine(state[2 * parent],
                                    state[2 * parent + 1]);
        level = std::move(parents);
    }
    return patched;
}

dvfs::StrategyEvaluation
IncrementalFitness::evaluateRoot(const State &state) const
{
    const StageSums &root = state[1];
    dvfs::StrategyEvaluation eval;
    eval.seconds = root.seconds;
    if (root.seconds <= 0.0)
        return eval;

    double mean_volts = root.volt_seconds / root.seconds;
    double p_soc_no_t = root.soc_joules_no_t / root.seconds;

    // Same fix point as StageEvaluator::evaluate (Sect. 5.4.2); only
    // the reduction producing the sums differs (pairwise vs serial).
    double delta_t = 0.0;
    for (int iter = 0; iter < 16; ++iter) {
        double p_soc = p_soc_no_t + gamma_soc_ * delta_t * mean_volts;
        double next = k_per_watt_ * p_soc;
        if (std::abs(next - delta_t) < 0.01) {
            delta_t = next;
            break;
        }
        delta_t = next;
    }

    eval.delta_t = delta_t;
    eval.soc_watts = p_soc_no_t + gamma_soc_ * delta_t * mean_volts;
    eval.aicore_watts = root.aicore_joules_no_t / root.seconds
                        + gamma_aicore_ * delta_t * mean_volts;
    eval.soc_joules = eval.soc_watts * root.seconds;
    eval.aicore_joules = eval.aicore_watts * root.seconds;
    return eval;
}

void
IncrementalFitness::scoreGeneration(
    const std::vector<std::vector<std::uint8_t>> &genomes,
    const std::vector<dvfs::GenomeLineage> &lineage,
    double perf_lower_bound, const dvfs::ParallelFor &parallel_for,
    std::vector<double> &scores,
    std::vector<dvfs::StrategyEvaluation> &evals)
{
    next_.resize(genomes.size());
    scores.resize(genomes.size());
    evals.resize(genomes.size());
    auto worker = [&](std::size_t i) {
        State &state = next_[i];
        std::size_t parent = i < lineage.size()
                                 ? lineage[i].parent
                                 : dvfs::GenomeLineage::kNoParent;
        if (parent != dvfs::GenomeLineage::kNoParent
            && parent < prev_.size() && !prev_[parent].empty()) {
            state = prev_[parent];
            std::size_t patched =
                patch(state, genomes[i], lineage[i].dirty);
            incremental_builds_.fetch_add(1, std::memory_order_relaxed);
            genes_patched_.fetch_add(patched, std::memory_order_relaxed);
        } else {
            buildFull(state, genomes[i]);
            full_builds_.fetch_add(1, std::memory_order_relaxed);
            genes_patched_.fetch_add(n_, std::memory_order_relaxed);
        }
        genes_total_.fetch_add(n_, std::memory_order_relaxed);
        evals[i] = evaluateRoot(state);
        scores[i] = dvfs::strategyScore(evals[i], perf_lower_bound);
    };
    if (parallel_for) {
        parallel_for(genomes.size(), worker);
    } else {
        for (std::size_t i = 0; i < genomes.size(); ++i)
            worker(i);
    }
    std::swap(prev_, next_);
}

void
IncrementalFitness::scoreOne(const std::vector<std::uint8_t> &genome,
                             double perf_lower_bound, double &score,
                             dvfs::StrategyEvaluation &eval)
{
    State state;
    buildFull(state, genome);
    full_builds_.fetch_add(1, std::memory_order_relaxed);
    eval = evaluateRoot(state);
    score = dvfs::strategyScore(eval, perf_lower_bound);
}

IncrementalStats
IncrementalFitness::stats() const
{
    IncrementalStats out;
    out.full_builds = full_builds_.load(std::memory_order_relaxed);
    out.incremental_builds =
        incremental_builds_.load(std::memory_order_relaxed);
    out.genes_patched = genes_patched_.load(std::memory_order_relaxed);
    out.genes_total = genes_total_.load(std::memory_order_relaxed);
    return out;
}

} // namespace opdvfs::tune
