#include "tune/features.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace opdvfs::tune {

namespace {

/** log10 scale squashed into [0, ~1] (same idiom as the fingerprint). */
double
logScale(double value, double decades)
{
    return std::log10(std::max(value, 0.0) + 1.0) / decades;
}

} // namespace

std::vector<StageSample>
extractStageRows(const models::Workload &workload,
                 const npu::NpuConfig &chip, double perf_loss_target,
                 const dvfs::PreprocessResult &prep)
{
    std::unordered_map<std::uint64_t, const ops::Op *> by_id;
    by_id.reserve(workload.iteration.size());
    for (const ops::Op &op : workload.iteration)
        by_id.emplace(op.id, &op);

    // --- workload-context features (shared by every stage row) ----------
    double ops = static_cast<double>(workload.opCount());
    double per_category[4] = {0.0, 0.0, 0.0, 0.0};
    double total_cycles = 0.0;
    double total_bytes = 0.0;
    for (const ops::Op &op : workload.iteration) {
        auto cat = static_cast<std::size_t>(op.hw.category);
        if (cat < 4)
            per_category[cat] += 1.0;
        if (op.hw.category == npu::OpCategory::Compute) {
            double reps = static_cast<double>(op.hw.n);
            total_cycles += op.hw.core_cycles * reps;
            total_bytes +=
                (op.hw.ld_volume_bytes + op.hw.st_volume_bytes) * reps;
        }
    }

    double global_bottleneck[kBottleneckClasses] = {};
    for (dvfs::Bottleneck b : prep.bottlenecks) {
        auto cls = static_cast<std::size_t>(b);
        if (cls < kBottleneckClasses)
            global_bottleneck[cls] += 1.0;
    }
    double records = static_cast<double>(prep.bottlenecks.size());

    double total_ticks = 0.0;
    for (const dvfs::Stage &stage : prep.stages)
        total_ticks += static_cast<double>(stage.duration);

    std::vector<double> context;
    context.reserve(17);
    context.push_back(logScale(ops, 5.0));
    for (double count : per_category)
        context.push_back(ops > 0.0 ? count / ops : 0.0);
    context.push_back(perf_loss_target * 10.0);
    context.push_back(chip.freq.max_mhz > 0.0
                          ? chip.freq.min_mhz / chip.freq.max_mhz
                          : 0.0);
    context.push_back(chip.freq.max_mhz > 0.0
                          ? chip.freq.step_mhz / chip.freq.max_mhz
                          : 0.0);
    for (double count : global_bottleneck)
        context.push_back(records > 0.0 ? count / records : 0.0);
    context.push_back(logScale(total_bytes / (total_cycles + 1.0), 3.0));
    context.push_back(
        logScale(static_cast<double>(prep.stages.size()), 3.0));

    // --- stage-local features --------------------------------------------
    std::vector<StageSample> rows;
    rows.reserve(prep.stages.size());
    std::size_t stage_count = prep.stages.size();
    for (std::size_t s = 0; s < stage_count; ++s) {
        const dvfs::Stage &stage = prep.stages[s];

        double stage_bottleneck[kBottleneckClasses] = {};
        for (std::size_t j = 0; j < stage.op_ids.size(); ++j) {
            std::size_t record = stage.first_op + j;
            if (record >= prep.bottlenecks.size())
                break;
            auto cls = static_cast<std::size_t>(prep.bottlenecks[record]);
            if (cls < kBottleneckClasses)
                stage_bottleneck[cls] += 1.0;
        }
        double stage_records =
            static_cast<double>(std::min(stage.op_ids.size(),
                                         prep.bottlenecks.size()));

        double stage_cycles = 0.0;
        double stage_bytes = 0.0;
        double cube_ops = 0.0;
        double hit_sum = 0.0;
        double compute_ops = 0.0;
        for (std::uint64_t op_id : stage.op_ids) {
            auto found = by_id.find(op_id);
            if (found == by_id.end())
                continue; // idle gap record: no hardware parameters
            const npu::HwOpParams &hw = found->second->hw;
            if (hw.category != npu::OpCategory::Compute)
                continue;
            compute_ops += 1.0;
            double reps = static_cast<double>(hw.n);
            stage_cycles += hw.core_cycles * reps;
            stage_bytes +=
                (hw.ld_volume_bytes + hw.st_volume_bytes) * reps;
            hit_sum += hw.ld_l2_hit;
            if (hw.core_pipe == npu::CorePipe::Cube)
                cube_ops += 1.0;
        }

        double busy = stage.sensitive_seconds + stage.insensitive_seconds;

        StageSample sample;
        sample.features = context;
        sample.features.push_back(stage.high_frequency ? 1.0 : 0.0);
        sample.features.push_back(
            total_ticks > 0.0
                ? static_cast<double>(stage.duration) / total_ticks
                : 0.0);
        sample.features.push_back(
            busy > 0.0 ? stage.sensitive_seconds / busy : 0.0);
        for (double count : stage_bottleneck)
            sample.features.push_back(
                stage_records > 0.0 ? count / stage_records : 0.0);
        sample.features.push_back(
            stage_count > 1
                ? static_cast<double>(s)
                      / static_cast<double>(stage_count - 1)
                : 0.0);
        sample.features.push_back(
            logScale(static_cast<double>(stage.op_ids.size()), 4.0));
        sample.features.push_back(
            logScale(stage_bytes / (stage_cycles + 1.0), 3.0));
        sample.features.push_back(
            compute_ops > 0.0 ? cube_ops / compute_ops : 0.0);
        sample.features.push_back(
            compute_ops > 0.0 ? hit_sum / compute_ops : 0.0);
        rows.push_back(std::move(sample));
    }
    return rows;
}

} // namespace opdvfs::tune
