#include "ops/op_stats.h"

#include <algorithm>

#include "npu/aicore_timeline.h"

namespace opdvfs::ops {

const TypeStats *
WorkloadStats::find(const std::string &type) const
{
    for (const auto &row : types) {
        if (row.type == type)
            return &row;
    }
    return nullptr;
}

WorkloadStats
summarize(const OpSequence &iteration, const std::string &workload_name,
          const npu::MemorySystem &memory, double reference_mhz)
{
    WorkloadStats stats;
    stats.workload = workload_name;
    stats.op_count = iteration.size();

    std::map<std::string, TypeStats> by_type;
    double compute = 0.0, comm = 0.0, aicpu = 0.0, idle = 0.0;

    for (const auto &op : iteration) {
        npu::AicoreTimeline timeline(op.hw, memory);
        double seconds = timeline.seconds(reference_mhz);
        stats.iteration_seconds += seconds;

        switch (op.hw.category) {
          case npu::OpCategory::Compute:       compute += seconds; break;
          case npu::OpCategory::Communication: comm += seconds; break;
          case npu::OpCategory::Aicpu:         aicpu += seconds; break;
          case npu::OpCategory::Idle:          idle += seconds; break;
        }

        TypeStats &row = by_type[op.type];
        row.type = op.type;
        ++row.count;
        row.seconds += seconds;
        if (seconds < 20e-6)
            ++row.tiny_count;
    }

    if (stats.iteration_seconds > 0.0) {
        stats.compute_share = compute / stats.iteration_seconds;
        stats.communication_share = comm / stats.iteration_seconds;
        stats.aicpu_share = aicpu / stats.iteration_seconds;
        stats.idle_share = idle / stats.iteration_seconds;
    }

    for (auto &[type, row] : by_type) {
        row.time_share = stats.iteration_seconds > 0.0
            ? row.seconds / stats.iteration_seconds
            : 0.0;
        row.mean_seconds =
            row.seconds / static_cast<double>(std::max<std::size_t>(
                              row.count, 1));
        stats.types.push_back(row);
    }
    std::sort(stats.types.begin(), stats.types.end(),
              [](const TypeStats &a, const TypeStats &b) {
                  return a.seconds > b.seconds;
              });
    return stats;
}

} // namespace opdvfs::ops
