/**
 * @file
 * An operator instance as it appears in a workload's execution
 * sequence: a type name, a unique id, and the hardware-level
 * ground-truth parameters the simulator executes.
 */

#ifndef OPDVFS_OPS_OP_H
#define OPDVFS_OPS_OP_H

#include <cstdint>
#include <string>
#include <vector>

#include "npu/op_params.h"

namespace opdvfs::ops {

/** One operator invocation. */
struct Op
{
    /** Unique within one workload sequence. */
    std::uint64_t id = 0;
    /** Operator type name, e.g. "MatMul", "Gelu", "AllReduce". */
    std::string type;
    /** Ground-truth execution parameters. */
    npu::HwOpParams hw;
};

/** A whole iteration's operator sequence. */
using OpSequence = std::vector<Op>;

} // namespace opdvfs::ops

#endif // OPDVFS_OPS_OP_H
