/**
 * @file
 * Workload composition statistics: per-operator-type counts, time
 * shares and bottleneck-relevant properties, computed analytically
 * from ground truth (no simulation run needed).  Backs the
 * workload-characterisation output of the examples and report.
 */

#ifndef OPDVFS_OPS_OP_STATS_H
#define OPDVFS_OPS_OP_STATS_H

#include <map>
#include <string>
#include <vector>

#include "npu/memory_system.h"
#include "ops/op.h"

namespace opdvfs::ops {

/** Aggregate statistics of one operator type within a workload. */
struct TypeStats
{
    std::string type;
    std::size_t count = 0;
    /** Total execution time at the reference frequency, seconds. */
    double seconds = 0.0;
    /** Share of the whole iteration's time. */
    double time_share = 0.0;
    /** Mean duration, seconds. */
    double mean_seconds = 0.0;
    /** Operators of this type under the 20 us threshold. */
    std::size_t tiny_count = 0;
};

/** Whole-workload composition summary. */
struct WorkloadStats
{
    std::string workload;
    std::size_t op_count = 0;
    /** Iteration time at the reference frequency, seconds. */
    double iteration_seconds = 0.0;
    /** Time shares by category. */
    double compute_share = 0.0;
    double communication_share = 0.0;
    double aicpu_share = 0.0;
    double idle_share = 0.0;
    /** Per-type rows, sorted by descending time share. */
    std::vector<TypeStats> types;

    /** Row for @p type; nullptr if absent. */
    const TypeStats *find(const std::string &type) const;
};

/**
 * Summarise an iteration sequence at @p reference_mhz using the
 * analytic timelines (ground truth, noise-free).
 */
WorkloadStats summarize(const OpSequence &iteration,
                        const std::string &workload_name,
                        const npu::MemorySystem &memory,
                        double reference_mhz = 1800.0);

} // namespace opdvfs::ops

#endif // OPDVFS_OPS_OP_STATS_H
