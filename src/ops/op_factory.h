/**
 * @file
 * Factory for operator instances with realistic ground-truth hardware
 * parameters.
 *
 * Shapes map to core-cycle counts and Ld/St volumes through nominal
 * chip throughput constants (cube MACs/cycle, vector lanes/cycle); the
 * factory adds controlled per-instance variation so that two operators
 * of the same type but different shapes exhibit different activity
 * factors and bottlenecks, as the paper observes (Sect. 5.4.1).
 */

#ifndef OPDVFS_OPS_OP_FACTORY_H
#define OPDVFS_OPS_OP_FACTORY_H

#include <cstdint>
#include <string>

#include "common/random.h"
#include "npu/memory_system.h"
#include "ops/op.h"

namespace opdvfs::ops {

/** Nominal chip throughput constants used to derive cycle counts. */
struct ChipThroughput
{
    /** FP16 multiply-accumulate flops per cycle, whole chip (cube). */
    double cube_flops_per_cycle = 786432.0;
    /** FP32 element operations per cycle, whole chip (vector). */
    double vector_elems_per_cycle = 8192.0;
    /** Intra-node collective bandwidth (HCCS-class links), bytes/s. */
    double link_bandwidth = 2.0e11;
};

/** Builds Op instances with ground-truth parameters. */
class OpFactory
{
  public:
    OpFactory(const npu::MemorySystem &memory, Rng rng,
              const ChipThroughput &throughput = {});

    // --- cube (matrix) operators -------------------------------------

    /** Dense matrix multiply (m x k) * (k x n), fp16. */
    Op matMul(int m, int k, int n);

    /** Batched matmul, as in attention score computation. */
    Op batchMatMul(int batch, int m, int k, int n);

    /** 2-D convolution; lowered to implicit GEMM on the cube unit. */
    Op conv2d(int batch, int in_ch, int out_ch, int h, int w, int kernel);

    // --- vector / memory operators -----------------------------------

    /** Elementwise add over @p elems fp32 elements (2 in, 1 out). */
    Op add(std::int64_t elems);

    /** ReLU activation (1 in, 1 out, trivial math; bandwidth bound). */
    Op relu(std::int64_t elems);

    /** Elementwise division. */
    Op realDiv(std::int64_t elems);

    /** GELU activation (heavier per-element math than add). */
    Op gelu(std::int64_t elems);

    /** LayerNorm over rows x cols. */
    Op layerNorm(std::int64_t rows, std::int64_t cols);

    /** Softmax over rows x cols. */
    Op softmax(std::int64_t rows, std::int64_t cols);

    /** Batch-norm statistics update (training). */
    Op bnTrainingUpdate(std::int64_t elems);

    /** Mean-reduction over @p elems to @p outputs values. */
    Op reduceMean(std::int64_t elems, std::int64_t outputs);

    /** Dropout mask + apply. */
    Op dropout(std::int64_t elems);

    /** Data movement / layout change (MTE1-heavy). */
    Op transpose(std::int64_t elems);

    /**
     * A deliberately tiny operator dominated by fixed overheads;
     * profiles as no-pipeline bound.
     */
    Op tinyScalarOp(const std::string &type_name);

    // --- AICore-frequency-insensitive operators ------------------------

    /** Ring all-reduce of @p bytes across devices. */
    Op allReduce(std::int64_t bytes);

    /** Host-side AICPU operator of roughly @p seconds. */
    Op aicpu(const std::string &type_name, double seconds);

    /** Scheduling gap of @p seconds. */
    Op idle(double seconds);

    const ChipThroughput &throughput() const { return throughput_; }

  private:
    /** Shared assembly for compute ops. */
    Op makeCompute(const std::string &type, npu::CorePipe pipe,
                   npu::Scenario scenario, double core_cycles_total,
                   double ld_bytes_total, double st_bytes_total,
                   double l2_hit, double alpha_nominal);

    /** Uncore-bandwidth utilisation of the op at the max frequency. */
    double uncoreActivity(const npu::HwOpParams &params) const;

    const npu::MemorySystem &memory_;
    Rng rng_;
    ChipThroughput throughput_;
    std::uint64_t next_id_ = 0;
};

} // namespace opdvfs::ops

#endif // OPDVFS_OPS_OP_FACTORY_H
