#include "ops/op_factory.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "npu/aicore_timeline.h"

namespace opdvfs::ops {

using npu::CorePipe;
using npu::HwOpParams;
using npu::OpCategory;
using npu::Scenario;

namespace {

/** Bytes of one fp16 element. */
constexpr double kFp16 = 2.0;
/** Bytes of one fp32 element. */
constexpr double kFp32 = 4.0;

} // namespace

OpFactory::OpFactory(const npu::MemorySystem &memory, Rng rng,
                     const ChipThroughput &throughput)
    : memory_(memory), rng_(rng), throughput_(throughput)
{
}

double
OpFactory::uncoreActivity(const HwOpParams &params) const
{
    if (params.category != OpCategory::Compute)
        return params.uncore_activity;

    npu::AicoreTimeline timeline(params, memory_);
    double seconds = timeline.seconds(1800.0);
    if (seconds <= 0.0)
        return 0.0;
    double bytes = static_cast<double>(params.n)
        * (params.ld_volume_bytes + params.st_volume_bytes);
    double hit = (params.ld_l2_hit + params.st_l2_hit) / 2.0;
    double demand = bytes / seconds;
    // Prefetchers, write-backs and refresh keep the uncore partially
    // busy even under compute-bound operators: a floor plus a scaled
    // demand ratio.
    return std::clamp(0.12 + 1.2 * demand / memory_.uncoreBandwidth(hit),
                      0.0, 1.0);
}

Op
OpFactory::makeCompute(const std::string &type, CorePipe pipe,
                       Scenario scenario, double core_cycles_total,
                       double ld_bytes_total, double st_bytes_total,
                       double l2_hit, double alpha_nominal)
{
    HwOpParams hw;
    hw.category = OpCategory::Compute;
    hw.scenario = scenario;
    hw.core_pipe = pipe;

    // Tile so each core computation is ~20k cycles or ~2 MB of
    // move-in traffic, whichever yields more tiles.
    double tiles_by_core = core_cycles_total / 20'000.0;
    double tiles_by_mem = ld_bytes_total / 2.0e6;
    int n = static_cast<int>(
        std::ceil(std::max({tiles_by_core, tiles_by_mem, 1.0})));
    hw.n = std::clamp(n, 1, 64);

    double dn = static_cast<double>(hw.n);
    hw.core_cycles = core_cycles_total / dn;
    hw.ld_volume_bytes = ld_bytes_total / dn;
    hw.st_volume_bytes = st_bytes_total / dn;
    hw.ld_l2_hit = std::clamp(l2_hit + rng_.gaussian(0.0, 0.04), 0.0, 0.98);
    hw.st_l2_hit =
        std::clamp(l2_hit - 0.1 + rng_.gaussian(0.0, 0.04), 0.0, 0.98);
    hw.t0_seconds = rng_.uniform(2e-7, 6e-7);
    hw.overhead_seconds = rng_.uniform(1e-6, 4e-6);

    // The activity factor scales with how busy the core pipes are:
    // stalled (memory-bound) operators burn less dynamic power, though
    // the MTE/cache machinery keeps a substantial floor.
    npu::AicoreTimeline timeline(hw, memory_);
    npu::PipelineRatios ratios = timeline.ratios(1800.0);
    double core_busy =
        std::max({ratios.cube, ratios.vector, ratios.scalar, ratios.mte1});
    hw.alpha_core = alpha_nominal * (0.55 + 0.45 * core_busy)
        * rng_.noiseFactor(0.08);
    hw.uncore_activity = uncoreActivity(hw);

    return Op{next_id_++, type, hw};
}

Op
OpFactory::matMul(int m, int k, int n)
{
    if (m <= 0 || k <= 0 || n <= 0)
        throw std::invalid_argument("matMul: non-positive dimension");
    double flops = 2.0 * m * k * n;
    double core_cycles = flops / throughput_.cube_flops_per_cycle;
    // Tiling re-reads operands; ~2x captures typical reuse loss for
    // large GEMMs streaming from HBM.
    double reread = rng_.uniform(1.8, 2.4);
    double ld = reread * kFp16 * (static_cast<double>(m) * k
                                  + static_cast<double>(k) * n);
    double st = kFp16 * static_cast<double>(m) * n;
    Scenario scenario = rng_.chance(0.3) ? Scenario::PingPongDependent
                                         : Scenario::PingPongIndependent;
    return makeCompute("MatMul", CorePipe::Cube, scenario, core_cycles, ld,
                       st, 0.4, 3.2e-8);
}

Op
OpFactory::batchMatMul(int batch, int m, int k, int n)
{
    double flops = 2.0 * batch * static_cast<double>(m) * k * n;
    double core_cycles = flops / throughput_.cube_flops_per_cycle;
    double ld = 1.8 * kFp16 * batch
        * (static_cast<double>(m) * k + static_cast<double>(k) * n);
    double st = kFp16 * batch * static_cast<double>(m) * n;
    return makeCompute("BatchMatMul", CorePipe::Cube,
                       Scenario::PingPongIndependent, core_cycles, ld, st,
                       0.4, 3.1e-8);
}

Op
OpFactory::conv2d(int batch, int in_ch, int out_ch, int h, int w, int kernel)
{
    double pixels = static_cast<double>(batch) * h * w;
    double flops =
        2.0 * pixels * in_ch * out_ch * kernel * kernel;
    double core_cycles = flops / throughput_.cube_flops_per_cycle;
    double ld = kFp16 * (pixels * in_ch * 2.2 // im2col expansion
                         + static_cast<double>(out_ch) * in_ch * kernel
                             * kernel);
    double st = kFp16 * pixels * out_ch;
    Scenario scenario = rng_.chance(0.5) ? Scenario::PingPongDependent
                                         : Scenario::PingPongIndependent;
    return makeCompute("Conv2D", CorePipe::Cube, scenario, core_cycles, ld,
                       st, 0.7, 3.3e-8);
}

Op
OpFactory::add(std::int64_t elems)
{
    double e = static_cast<double>(elems);
    double core_cycles = e / throughput_.vector_elems_per_cycle;
    return makeCompute("Add", CorePipe::Vector,
                       Scenario::PingPongIndependent, core_cycles,
                       2.0 * kFp32 * e, kFp32 * e, 0.15, 2.1e-8);
}

Op
OpFactory::relu(std::int64_t elems)
{
    double e = static_cast<double>(elems);
    double core_cycles = e / throughput_.vector_elems_per_cycle;
    return makeCompute("Relu", CorePipe::Vector,
                       Scenario::PingPongIndependent, core_cycles,
                       kFp32 * e, kFp32 * e, 0.2, 2.3e-8);
}

Op
OpFactory::realDiv(std::int64_t elems)
{
    double e = static_cast<double>(elems);
    double core_cycles = 2.0 * e / throughput_.vector_elems_per_cycle;
    return makeCompute("RealDiv", CorePipe::Vector,
                       Scenario::PingPongIndependent, core_cycles,
                       2.0 * kFp32 * e, kFp32 * e, 0.15, 2.5e-8);
}

Op
OpFactory::gelu(std::int64_t elems)
{
    double e = static_cast<double>(elems);
    double core_cycles = 8.0 * e / throughput_.vector_elems_per_cycle;
    return makeCompute("Gelu", CorePipe::Vector,
                       Scenario::PingPongIndependent, core_cycles,
                       kFp32 * e, kFp32 * e, 0.2, 2.5e-8);
}

Op
OpFactory::layerNorm(std::int64_t rows, std::int64_t cols)
{
    double e = static_cast<double>(rows) * static_cast<double>(cols);
    double core_cycles = 6.0 * e / throughput_.vector_elems_per_cycle;
    // Two passes over the data; the second mostly hits in L2.
    return makeCompute("LayerNorm", CorePipe::Vector,
                       Scenario::PingPongFreeIndependent, core_cycles,
                       2.0 * kFp32 * e, kFp32 * e, 0.5, 2.3e-8);
}

Op
OpFactory::softmax(std::int64_t rows, std::int64_t cols)
{
    double e = static_cast<double>(rows) * static_cast<double>(cols);
    double core_cycles = 10.0 * e / throughput_.vector_elems_per_cycle;
    return makeCompute("SoftMax", CorePipe::Vector,
                       Scenario::PingPongFreeDependent, core_cycles,
                       2.0 * kFp32 * e, kFp32 * e, 0.6, 2.5e-8);
}

Op
OpFactory::bnTrainingUpdate(std::int64_t elems)
{
    double e = static_cast<double>(elems);
    double core_cycles = 8.0 * e / throughput_.vector_elems_per_cycle;
    return makeCompute("BNTrainingUpdate", CorePipe::Vector,
                       Scenario::PingPongFreeIndependent, core_cycles,
                       2.0 * kFp32 * e, kFp32 * e, 0.4, 2.3e-8);
}

Op
OpFactory::reduceMean(std::int64_t elems, std::int64_t outputs)
{
    double e = static_cast<double>(elems);
    double core_cycles = e / throughput_.vector_elems_per_cycle;
    return makeCompute("ReduceMean", CorePipe::Vector,
                       Scenario::PingPongIndependent, core_cycles,
                       kFp32 * e, kFp32 * static_cast<double>(outputs), 0.3,
                       2.3e-8);
}

Op
OpFactory::dropout(std::int64_t elems)
{
    double e = static_cast<double>(elems);
    double core_cycles = 2.0 * e / throughput_.vector_elems_per_cycle;
    return makeCompute("Dropout", CorePipe::Vector,
                       Scenario::PingPongIndependent, core_cycles,
                       kFp32 * e + e /* mask bytes */, kFp32 * e, 0.15,
                       2.1e-8);
}

Op
OpFactory::transpose(std::int64_t elems)
{
    double e = static_cast<double>(elems);
    // Layout shuffles run on the intra-core transfer engine.
    double core_cycles = kFp32 * e / 2048.0;
    return makeCompute("Transpose", CorePipe::Mte1,
                       Scenario::PingPongIndependent, core_cycles,
                       kFp32 * e, kFp32 * e, 0.5, 1.5e-8);
}

Op
OpFactory::tinyScalarOp(const std::string &type_name)
{
    HwOpParams hw;
    hw.category = OpCategory::Compute;
    hw.scenario = Scenario::PingPongFreeIndependent;
    hw.core_pipe = CorePipe::Scalar;
    hw.n = 1;
    hw.core_cycles = rng_.uniform(2'000.0, 8'000.0);
    hw.ld_volume_bytes = rng_.uniform(8.0e3, 64.0e3);
    hw.st_volume_bytes = hw.ld_volume_bytes / 2.0;
    hw.ld_l2_hit = 0.9;
    hw.st_l2_hit = 0.9;
    hw.t0_seconds = rng_.uniform(5e-7, 1.5e-6);
    // Dispatch overhead dominates: no-pipeline bound.
    hw.overhead_seconds = rng_.uniform(5e-6, 15e-6);
    hw.alpha_core = 0.4e-8 * rng_.noiseFactor(0.1);
    hw.uncore_activity = 0.02;
    return Op{next_id_++, type_name, hw};
}

Op
OpFactory::allReduce(std::int64_t bytes)
{
    HwOpParams hw;
    hw.category = OpCategory::Communication;
    hw.comm_bytes = static_cast<double>(bytes);
    hw.fixed_seconds = 2.0 * static_cast<double>(bytes)
            / throughput_.link_bandwidth
        + rng_.uniform(30e-6, 80e-6);
    hw.alpha_core = 0.0;
    hw.uncore_activity = 0.25;
    return Op{next_id_++, "AllReduce", hw};
}

Op
OpFactory::aicpu(const std::string &type_name, double seconds)
{
    if (seconds <= 0.0)
        throw std::invalid_argument("aicpu: non-positive duration");
    HwOpParams hw;
    hw.category = OpCategory::Aicpu;
    hw.fixed_seconds = seconds * rng_.noiseFactor(0.1);
    hw.uncore_activity = 0.05;
    return Op{next_id_++, type_name, hw};
}

Op
OpFactory::idle(double seconds)
{
    if (seconds < 0.0)
        throw std::invalid_argument("idle: negative duration");
    HwOpParams hw;
    hw.category = OpCategory::Idle;
    hw.fixed_seconds = seconds;
    hw.uncore_activity = 0.0;
    return Op{next_id_++, "Idle", hw};
}

} // namespace opdvfs::ops
