/**
 * @file
 * Online calibration (right half of Fig. 11): recovers load-dependent
 * activity factors (alpha) from telemetry gathered while the target
 * workload runs.
 *
 * Telemetry samples are aligned to the profiled operator timeline;
 * each aligned sample yields an instantaneous alpha estimate via
 * Eq. 14.  Operators observed too rarely inherit their type's pooled
 * estimate, falling back to the global estimate — the practical
 * resolution limit of millisecond-scale power telemetry against
 * sub-millisecond operators.
 */

#ifndef OPDVFS_POWER_ONLINE_CALIBRATION_H
#define OPDVFS_POWER_ONLINE_CALIBRATION_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "power/power_model.h"
#include "trace/workload_runner.h"

namespace opdvfs::power {

/** Accumulates telemetry-aligned alpha estimates. */
class OnlinePowerCalibrator
{
  public:
    explicit OnlinePowerCalibrator(const PowerModel &model)
        : model_(model)
    {}

    /** Ingest one profiled run (fixed or varying frequency). */
    void addRun(const trace::RunResult &run);

    /** Per-operator models with type/global pooling. */
    std::unordered_map<std::uint64_t, OpPowerModel> perOpModels() const;

    /** Pooled model for one operator type (throws if unseen). */
    OpPowerModel typeModel(const std::string &type) const;

    /** Whole-workload model from all aligned samples. */
    OpPowerModel workloadModel() const;

    /** Number of telemetry samples aligned to an operator. */
    std::size_t alignedSampleCount() const { return global_.count; }

    /**
     * Whole-workload calibration from run-level aggregates at fixed
     * frequencies (the Sect. 7.3 protocol: build from 1000 and
     * 1800 MHz data).  Least squares over the given (f, run) pairs.
     */
    static OpPowerModel
    calibrateWorkloadAggregate(const PowerModel &model,
                               const std::vector<std::pair<
                                   double, const trace::RunResult *>> &runs);

  private:
    struct Estimate
    {
        double sum_aicore = 0.0;
        double sum_soc = 0.0;
        std::size_t count = 0;

        void
        add(double a_core, double a_soc)
        {
            sum_aicore += a_core;
            sum_soc += a_soc;
            ++count;
        }
        OpPowerModel mean() const;
    };

    /** Minimum own samples before an operator trusts its own alpha. */
    static constexpr std::size_t kMinOwnSamples = 3;

    const PowerModel &model_;
    std::unordered_map<std::uint64_t, Estimate> per_op_;
    std::unordered_map<std::uint64_t, std::string> op_types_;
    std::unordered_map<std::string, Estimate> per_type_;
    Estimate global_;
};

} // namespace opdvfs::power

#endif // OPDVFS_POWER_ONLINE_CALIBRATION_H
