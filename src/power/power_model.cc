#include "power/power_model.h"

#include <cmath>

#include "common/units.h"

namespace opdvfs::power {

CalibratedConstants
CalibratedConstants::withoutTemperature() const
{
    CalibratedConstants copy = *this;
    copy.gamma_aicore = 0.0;
    copy.gamma_soc = 0.0;
    copy.k_per_watt = 0.0;
    return copy;
}

double
PowerModel::aicoreIdle(double f_mhz) const
{
    double volts = table_.voltageFor(f_mhz);
    return constants_.beta_aicore * mhzToHz(f_mhz) * volts * volts
        + constants_.theta_aicore * volts;
}

double
PowerModel::socIdle(double f_mhz) const
{
    double volts = table_.voltageFor(f_mhz);
    return constants_.beta_soc * mhzToHz(f_mhz) * volts * volts
        + constants_.theta_soc * volts;
}

OpPowerModel
PowerModel::calibrate(double f_mhz, double measured_aicore_w,
                      double measured_soc_w, double delta_t) const
{
    double volts = table_.voltageFor(f_mhz);
    double fv2 = mhzToHz(f_mhz) * volts * volts;

    OpPowerModel op;
    op.alpha_aicore = (measured_aicore_w - aicoreIdle(f_mhz)
                       - constants_.gamma_aicore * delta_t * volts)
        / fv2;
    op.alpha_soc = (measured_soc_w - socIdle(f_mhz)
                    - constants_.gamma_soc * delta_t * volts)
        / fv2;
    return op;
}

PowerPrediction
PowerModel::predict(const OpPowerModel &op, double f_mhz) const
{
    double volts = table_.voltageFor(f_mhz);
    double fv2 = mhzToHz(f_mhz) * volts * volts;

    PowerPrediction prediction;
    double delta_t = 0.0;
    double p_soc = 0.0;
    // Sect. 5.4.2: start from dT = 0 and iterate Eq. 16 <-> Eq. 15.
    for (int iter = 1; iter <= 16; ++iter) {
        prediction.iterations = iter;
        p_soc = op.alpha_soc * fv2 + socIdle(f_mhz)
            + constants_.gamma_soc * delta_t * volts;
        double next_delta_t = constants_.k_per_watt * p_soc;
        if (std::abs(next_delta_t - delta_t) < 0.01) {
            delta_t = next_delta_t;
            break;
        }
        delta_t = next_delta_t;
    }

    prediction.delta_t = delta_t;
    prediction.soc_watts = op.alpha_soc * fv2 + socIdle(f_mhz)
        + constants_.gamma_soc * delta_t * volts;
    prediction.aicore_watts = op.alpha_aicore * fv2 + aicoreIdle(f_mhz)
        + constants_.gamma_aicore * delta_t * volts;
    return prediction;
}

} // namespace opdvfs::power
