#include "power/offline_calibration.h"

#include <stdexcept>
#include <vector>

#include "common/statistics.h"
#include "common/units.h"
#include "math/linear_solve.h"
#include "ops/op_factory.h"
#include "trace/workload_runner.h"

namespace opdvfs::power {

namespace {

/** Micro-workload: one operator repeated to fill ~@p seconds. */
models::Workload
operatorLoop(const npu::MemorySystem &memory, const std::string &kind,
             double seconds, std::uint64_t seed)
{
    models::Workload workload;
    workload.name = "cal-" + kind;
    ops::OpFactory factory(memory, Rng(seed));

    double accumulated = 0.0;
    while (accumulated < seconds) {
        ops::Op op;
        if (kind == "idle") {
            op = factory.idle(0.05);
            accumulated += 0.05;
        } else if (kind == "gelu") {
            op = factory.gelu(24 * 1024 * 1024);
            accumulated += 100e-6;
        } else if (kind == "matmul") {
            op = factory.matMul(4096, 4096, 4096);
            accumulated += 600e-6;
        } else if (kind == "mixed") {
            if (workload.iteration.size() % 2 == 0)
                op = factory.matMul(2048, 2048, 2048);
            else
                op = factory.add(32 * 1024 * 1024);
            accumulated += 200e-6;
        } else {
            throw std::invalid_argument("operatorLoop: unknown kind");
        }
        workload.iteration.push_back(std::move(op));
    }
    return workload;
}

/** Average AICore/SoC power over a run's samples. */
struct AvgPower
{
    double aicore = 0.0;
    double soc = 0.0;
};

AvgPower
averagePower(const trace::RunResult &run)
{
    std::vector<double> core, soc;
    for (const auto &s : run.samples) {
        core.push_back(s.aicore_watts);
        soc.push_back(s.soc_watts);
    }
    return {stats::mean(core), stats::mean(soc)};
}

} // namespace

CalibratedConstants
calibrateOffline(const npu::NpuConfig &config, const OfflineOptions &options)
{
    CalibratedConstants constants;
    npu::MemorySystem memory(config.memory);
    trace::WorkloadRunner runner(config);
    npu::FreqTable table(config.freq);

    // ------------------------------------------------------------------
    // Step 1: idle power at two frequencies -> beta, theta.
    // Short windows from a cold die keep dT (and thus the leakage
    // contamination of the estimate) small.
    // ------------------------------------------------------------------
    models::Workload idle_load = operatorLoop(
        memory, "idle", options.idle_measure_seconds, options.seed);

    std::vector<double> freqs = {options.low_mhz, options.high_mhz};
    std::vector<AvgPower> idle_power;
    for (double f : freqs) {
        trace::RunOptions run_options;
        run_options.initial_mhz = f;
        run_options.sample_period = 25 * kTicksPerMs;
        run_options.seed = options.seed + static_cast<std::uint64_t>(f);
        idle_power.push_back(averagePower(runner.run(idle_load,
                                                     run_options)));
    }

    auto solveIdle = [&](double p1, double p2) {
        math::Matrix m(2, 2);
        std::vector<double> rhs = {p1, p2};
        for (int i = 0; i < 2; ++i) {
            double volts = table.voltageFor(freqs[static_cast<size_t>(i)]);
            m(static_cast<size_t>(i), 0) =
                mhzToHz(freqs[static_cast<size_t>(i)]) * volts * volts;
            m(static_cast<size_t>(i), 1) = volts;
        }
        return math::solve(std::move(m), std::move(rhs));
    };

    auto core_idle = solveIdle(idle_power[0].aicore, idle_power[1].aicore);
    constants.beta_aicore = core_idle[0];
    constants.theta_aicore = core_idle[1];
    auto soc_idle = solveIdle(idle_power[0].soc, idle_power[1].soc);
    constants.beta_soc = soc_idle[0];
    constants.theta_soc = soc_idle[1];

    // ------------------------------------------------------------------
    // Step 2: test load + cool-down trace -> gamma.
    // After the load retires, power decays with temperature at slope
    // gamma * V (Sect. 5.4.2).
    // ------------------------------------------------------------------
    // A cube-heavy load maximises the temperature contrast between
    // the loaded and idle states, giving the gamma regression a wide
    // decay range to fit.
    models::Workload test_load = operatorLoop(
        memory, "matmul", options.test_load_seconds, options.seed + 17);
    trace::RunOptions cool_options;
    cool_options.initial_mhz = options.high_mhz;
    cool_options.sample_period = 100 * kTicksPerMs;
    cool_options.cooldown_seconds = options.cooldown_seconds;
    cool_options.seed = options.seed + 29;
    trace::RunResult cool_run = runner.run(test_load, cool_options);

    Tick load_end = 0;
    for (const auto &r : cool_run.records)
        load_end = std::max(load_end, r.end);

    std::vector<double> cool_t, cool_p_core, cool_p_soc;
    for (const auto &s : cool_run.samples) {
        if (s.tick <= load_end)
            continue;
        cool_t.push_back(s.temperature_c);
        cool_p_core.push_back(s.aicore_watts);
        cool_p_soc.push_back(s.soc_watts);
    }
    if (cool_t.size() < 8)
        throw std::runtime_error("calibrateOffline: cool-down trace too "
                                 "short");

    double volts_high = table.voltageFor(options.high_mhz);
    constants.gamma_aicore =
        stats::fitLine(cool_t, cool_p_core).slope / volts_high;
    constants.gamma_soc =
        stats::fitLine(cool_t, cool_p_soc).slope / volts_high;

    // ------------------------------------------------------------------
    // Step 3: steady-state load sweep -> k (Fig. 10) and ambient.
    // ------------------------------------------------------------------
    std::vector<double> sweep_p, sweep_t;
    int sweep_index = 0;
    for (const std::string kind : {"idle", "gelu", "mixed", "matmul"}) {
        models::Workload load =
            operatorLoop(memory, kind, 1.0, options.seed + 31);
        trace::RunOptions sweep_options;
        sweep_options.initial_mhz = options.high_mhz;
        sweep_options.warmup_seconds = options.sweep_warmup_seconds;
        sweep_options.sample_period = 50 * kTicksPerMs;
        sweep_options.seed =
            options.seed + 37 + static_cast<std::uint64_t>(sweep_index++);
        trace::RunResult run = runner.run(load, sweep_options);
        AvgPower avg = averagePower(run);
        sweep_p.push_back(avg.soc);
        sweep_t.push_back(run.avg_temperature_c);
    }
    auto fit = stats::fitLine(sweep_p, sweep_t);
    constants.k_per_watt = fit.slope;
    constants.ambient_c = fit.intercept;

    return constants;
}

} // namespace opdvfs::power
