/**
 * @file
 * Offline calibration (left half of Fig. 11): recovers the
 * hardware-dependent constants of the power model from three
 * experiment families run on the device:
 *
 *  1. idle power at two frequencies -> beta, theta (AICore and SoC);
 *  2. a test load followed by a cool-down trace: power decays with
 *     temperature at slope gamma V (Sect. 5.4.2) -> gamma;
 *  3. a sweep of steady-state loads: AICore temperature is linear in
 *     SoC power (Fig. 10) -> k and the ambient estimate.
 */

#ifndef OPDVFS_POWER_OFFLINE_CALIBRATION_H
#define OPDVFS_POWER_OFFLINE_CALIBRATION_H

#include <cstdint>

#include "npu/npu_chip.h"
#include "power/power_model.h"

namespace opdvfs::power {

/** Knobs of the offline protocol. */
struct OfflineOptions
{
    double low_mhz = 1000.0;
    double high_mhz = 1800.0;
    /** Idle measurement window (kept short: near-ambient die). */
    double idle_measure_seconds = 0.6;
    /** Test-load duration before the cool-down trace. */
    double test_load_seconds = 25.0;
    /** Cool-down trace length. */
    double cooldown_seconds = 30.0;
    /** Warm-up per load-sweep point (steady state). */
    double sweep_warmup_seconds = 30.0;
    std::uint64_t seed = 42;
};

/**
 * Run the offline protocol against a simulated chip described by
 * @p config and return the recovered constants.
 */
CalibratedConstants calibrateOffline(const npu::NpuConfig &config,
                                     const OfflineOptions &options = {});

} // namespace opdvfs::power

#endif // OPDVFS_POWER_OFFLINE_CALIBRATION_H
