#include "power/online_calibration.h"

#include <algorithm>
#include <stdexcept>

#include "common/units.h"

namespace opdvfs::power {

OpPowerModel
OnlinePowerCalibrator::Estimate::mean() const
{
    OpPowerModel model;
    if (count > 0) {
        model.alpha_aicore = sum_aicore / static_cast<double>(count);
        model.alpha_soc = sum_soc / static_cast<double>(count);
    }
    return model;
}

void
OnlinePowerCalibrator::addRun(const trace::RunResult &run)
{
    // Records are produced in completion order == start order (one
    // compute stream), so binary search by start tick aligns samples.
    const auto &records = run.records;

    for (const auto &sample : run.samples) {
        auto it = std::upper_bound(
            records.begin(), records.end(), sample.tick,
            [](Tick tick, const trace::OpRecord &r) {
                return tick < r.start;
            });
        if (it == records.begin())
            continue;
        const trace::OpRecord &record = *std::prev(it);
        if (sample.tick >= record.end)
            continue; // Fell in a gap between records.

        double delta_t =
            sample.temperature_c - model_.constants().ambient_c;
        OpPowerModel estimate = model_.calibrate(
            sample.f_mhz, sample.aicore_watts, sample.soc_watts, delta_t);

        per_op_[record.op_id].add(estimate.alpha_aicore,
                                  estimate.alpha_soc);
        op_types_.emplace(record.op_id, record.type);
        per_type_[record.type].add(estimate.alpha_aicore,
                                   estimate.alpha_soc);
        global_.add(estimate.alpha_aicore, estimate.alpha_soc);
    }

    // Remember every operator's type so pooling can cover unsampled ops.
    for (const auto &record : records)
        op_types_.emplace(record.op_id, record.type);
}

std::unordered_map<std::uint64_t, OpPowerModel>
OnlinePowerCalibrator::perOpModels() const
{
    std::unordered_map<std::uint64_t, OpPowerModel> models;
    models.reserve(op_types_.size());
    for (const auto &[op_id, type] : op_types_) {
        auto own = per_op_.find(op_id);
        if (own != per_op_.end() && own->second.count >= kMinOwnSamples) {
            models[op_id] = own->second.mean();
            continue;
        }
        auto pooled = per_type_.find(type);
        if (pooled != per_type_.end() && pooled->second.count > 0) {
            models[op_id] = pooled->second.mean();
            continue;
        }
        models[op_id] = global_.mean();
    }
    return models;
}

OpPowerModel
OnlinePowerCalibrator::typeModel(const std::string &type) const
{
    auto it = per_type_.find(type);
    if (it == per_type_.end() || it->second.count == 0)
        throw std::invalid_argument("typeModel: unseen type " + type);
    return it->second.mean();
}

OpPowerModel
OnlinePowerCalibrator::workloadModel() const
{
    return global_.mean();
}

OpPowerModel
OnlinePowerCalibrator::calibrateWorkloadAggregate(
    const PowerModel &model,
    const std::vector<std::pair<double, const trace::RunResult *>> &runs)
{
    if (runs.empty())
        throw std::invalid_argument("calibrateWorkloadAggregate: no runs");

    OpPowerModel result;
    for (const auto &[f_mhz, run] : runs) {
        double delta_t =
            run->avg_temperature_c - model.constants().ambient_c;
        OpPowerModel estimate = model.calibrate(
            f_mhz, run->aicore_avg_w, run->soc_avg_w, delta_t);
        result.alpha_aicore += estimate.alpha_aicore;
        result.alpha_soc += estimate.alpha_soc;
    }
    result.alpha_aicore /= static_cast<double>(runs.size());
    result.alpha_soc /= static_cast<double>(runs.size());
    return result;
}

} // namespace opdvfs::power
