/**
 * @file
 * The temperature-aware power model of paper Sect. 5:
 *
 *   P        = alpha f V^2 + beta f V^2 + gamma dT V + theta V   (Eq. 11)
 *   P_idle   = beta f V^2 + theta V                              (Eq. 12)
 *   alpha    = (P - P_idle - gamma dT V) / (f V^2)               (Eq. 14)
 *   T        = T0 + k P_soc                                      (Eq. 15)
 *
 * Offline calibration recovers the hardware constants (beta, theta,
 * gamma, k) from idle measurements, a cool-down trace and a load
 * sweep; online calibration recovers the load-dependent alpha per
 * operator (or per workload).  Prediction at a new frequency resolves
 * the P_soc / dT interdependence with the iterative fix point of
 * Sect. 5.4.2, which converges in a handful of iterations.
 */

#ifndef OPDVFS_POWER_POWER_MODEL_H
#define OPDVFS_POWER_POWER_MODEL_H

#include "npu/freq_table.h"

namespace opdvfs::power {

/** Hardware constants recovered by offline calibration (Fig. 11). */
struct CalibratedConstants
{
    /** AICore idle model: beta f V^2 + theta V. */
    double beta_aicore = 0.0;
    double theta_aicore = 0.0;
    /** SoC idle model (same functional form). */
    double beta_soc = 0.0;
    double theta_soc = 0.0;
    /** AICore leakage temperature slope, W / (K V). */
    double gamma_aicore = 0.0;
    /** SoC leakage temperature slope, W / (K V). */
    double gamma_soc = 0.0;
    /** Equilibrium temperature slope k of Eq. 15, K / W. */
    double k_per_watt = 0.0;
    /** Ambient temperature estimate, Celsius. */
    double ambient_c = 25.0;

    /** Copy with the temperature terms zeroed (the Sect. 7.3 ablation). */
    CalibratedConstants withoutTemperature() const;
};

/** Load-dependent activity factors of one operator (or workload). */
struct OpPowerModel
{
    double alpha_aicore = 0.0;
    double alpha_soc = 0.0;
};

/** Prediction output. */
struct PowerPrediction
{
    double aicore_watts = 0.0;
    double soc_watts = 0.0;
    double delta_t = 0.0;
    /** Fix-point iterations used. */
    int iterations = 0;
};

/** The assembled predictive model. */
class PowerModel
{
  public:
    PowerModel(const CalibratedConstants &constants, npu::FreqTable table)
        : constants_(constants), table_(std::move(table))
    {}

    /** Modelled AICore idle power at @p f_mhz (Eq. 12). */
    double aicoreIdle(double f_mhz) const;

    /** Modelled SoC idle power at @p f_mhz. */
    double socIdle(double f_mhz) const;

    /**
     * Recover activity factors from one measurement (Eq. 14).
     * @p delta_t is the measured temperature rise during collection.
     */
    OpPowerModel calibrate(double f_mhz, double measured_aicore_w,
                           double measured_soc_w, double delta_t) const;

    /**
     * Predict power at @p f_mhz with the iterative dT fix point
     * (Sect. 5.4.2).
     */
    PowerPrediction predict(const OpPowerModel &op, double f_mhz) const;

    const CalibratedConstants &constants() const { return constants_; }

    const npu::FreqTable &table() const { return table_; }

  private:
    CalibratedConstants constants_;
    npu::FreqTable table_;
};

} // namespace opdvfs::power

#endif // OPDVFS_POWER_POWER_MODEL_H
