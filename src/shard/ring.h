/**
 * @file
 * Consistent-hash ring over workload fingerprint digests.
 *
 * Each shard contributes a fixed number of *virtual nodes*: points on
 * a 64-bit ring derived purely from (shard id, vnode index) by an
 * integer mixer, so the ring a given membership set produces is
 * identical in every process, on every platform, regardless of the
 * order shards were added.  A key (a fingerprint digest) is owned by
 * the shard whose vnode point is the first at or clockwise-after the
 * key's own ring position.
 *
 * The classic consistent-hashing guarantee follows: when a shard
 * joins a ring of N shards, only the keys that land between the new
 * shard's vnodes and their predecessors move — in expectation 1/(N+1)
 * of the key space — and every moved key moves *to* the new shard.
 * Symmetrically, a leave moves exactly the departed shard's keys, and
 * nothing else.  tests/prop_shard.cc holds the implementation to
 * those bounds.
 */

#ifndef OPDVFS_SHARD_RING_H
#define OPDVFS_SHARD_RING_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace opdvfs::shard {

/** splitmix64 finaliser: one well-mixed word from any 64-bit input. */
std::uint64_t mix64(std::uint64_t value);

/** One virtual node: a ring position owned by a shard. */
struct RingPoint
{
    std::uint64_t point = 0;
    std::uint32_t shard = 0;
};

/**
 * The ring itself: sorted vnode points for one membership set.
 * Immutable after construction; rebuild on membership change (the
 * ShardMap does).  A ring over zero shards owns nothing — callers
 * must check empty() before ownerOf().
 */
class HashRing
{
  public:
    HashRing() = default;

    /** Build @p vnodes_per_shard points for every id in @p shard_ids.
     *  Duplicate ids are collapsed. */
    HashRing(const std::vector<std::uint32_t> &shard_ids,
             std::size_t vnodes_per_shard);

    bool empty() const { return points_.empty(); }

    /** Total vnode count (shards x vnodes per shard). */
    std::size_t size() const { return points_.size(); }

    /**
     * The shard owning @p digest: the digest is re-mixed onto the
     * ring (digests are already hashes, but re-mixing decouples ring
     * placement from any structure in the digest function) and the
     * first vnode point at or after it wins, wrapping at the top.
     * @throws std::logic_error on an empty ring.
     */
    std::uint32_t ownerOf(std::uint64_t digest) const;

    /**
     * The first @p count distinct shards clockwise from @p digest:
     * the owner first, then its ring successors in replica-placement
     * order.  Fewer than @p count shards on the ring returns them
     * all.  The walk order is a pure function of (membership, digest),
     * so every process derives the same replica set.
     * @throws std::logic_error on an empty ring.
     */
    std::vector<std::uint32_t> ownersOf(std::uint64_t digest,
                                        std::size_t count) const;

    const std::vector<RingPoint> &points() const { return points_; }

  private:
    /** Sorted by (point, shard); the shard tie-break keeps lookups
     *  deterministic even in the astronomically unlikely event of a
     *  vnode point collision between shards. */
    std::vector<RingPoint> points_;
};

} // namespace opdvfs::shard

#endif // OPDVFS_SHARD_RING_H
