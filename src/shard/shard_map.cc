#include "shard/shard_map.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace opdvfs::shard {

namespace {

bool
addressIsClean(const std::string &address)
{
    if (address.empty() || address.size() > 255)
        return false;
    for (char byte : address)
        if (std::isspace(static_cast<unsigned char>(byte))
            || !std::isprint(static_cast<unsigned char>(byte)))
            return false;
    return true;
}

void
validateShard(const ShardInfo &info)
{
    if (!addressIsClean(info.address))
        throw std::invalid_argument(
            "shard: address must be non-empty printable text without "
            "whitespace");
    std::string host;
    std::uint16_t port = 0;
    parseAddress(info.address, &host, &port);
}

} // namespace

void
parseAddress(const std::string &address, std::string *host,
             std::uint16_t *port)
{
    std::size_t colon = address.rfind(':');
    if (colon == std::string::npos || colon == 0
        || colon + 1 >= address.size())
        throw std::invalid_argument("shard: address is not host:port: "
                                    + address);
    long value = 0;
    for (std::size_t i = colon + 1; i < address.size(); ++i) {
        char byte = address[i];
        if (byte < '0' || byte > '9')
            throw std::invalid_argument("shard: non-numeric port in "
                                        + address);
        value = value * 10 + (byte - '0');
        if (value > 65535)
            throw std::invalid_argument("shard: port out of range in "
                                        + address);
    }
    if (value == 0)
        throw std::invalid_argument("shard: zero port in " + address);
    if (host)
        *host = address.substr(0, colon);
    if (port)
        *port = static_cast<std::uint16_t>(value);
}

ShardMap::ShardMap(std::vector<ShardInfo> shards,
                   std::size_t vnodes_per_shard, std::uint64_t epoch)
    : epoch_(epoch), vnodes_per_shard_(vnodes_per_shard),
      shards_(std::move(shards))
{
    if (vnodes_per_shard_ == 0)
        throw std::invalid_argument("shard: zero vnodes per shard");
    std::sort(shards_.begin(), shards_.end(),
              [](const ShardInfo &a, const ShardInfo &b) {
                  return a.id < b.id;
              });
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        validateShard(shards_[i]);
        if (i > 0 && shards_[i].id == shards_[i - 1].id)
            throw std::invalid_argument(
                "shard: duplicate shard id "
                + std::to_string(shards_[i].id));
    }
    rebuildRing();
}

void
ShardMap::rebuildRing()
{
    std::vector<std::uint32_t> ids;
    ids.reserve(shards_.size());
    for (const ShardInfo &info : shards_)
        ids.push_back(info.id);
    ring_ = HashRing(ids, vnodes_per_shard_);
}

const ShardInfo *
ShardMap::find(std::uint32_t id) const
{
    auto it = std::lower_bound(shards_.begin(), shards_.end(), id,
                               [](const ShardInfo &info,
                                  std::uint32_t value) {
                                   return info.id < value;
                               });
    if (it == shards_.end() || it->id != id)
        return nullptr;
    return &*it;
}

const ShardInfo &
ShardMap::ownerOf(std::uint64_t digest) const
{
    std::uint32_t id = ring_.ownerOf(digest); // throws on empty
    const ShardInfo *info = find(id);
    if (!info)
        throw std::logic_error("shard: ring names a shard the map "
                               "does not hold");
    return *info;
}

std::vector<ShardInfo>
ShardMap::successorsOf(std::uint64_t digest, std::size_t count) const
{
    std::vector<std::uint32_t> ids =
        ring_.ownersOf(digest, count + 1); // throws on empty
    std::vector<ShardInfo> successors;
    for (std::size_t at = 1; at < ids.size(); ++at) {
        const ShardInfo *info = find(ids[at]);
        if (!info)
            throw std::logic_error("shard: ring names a shard the map "
                                   "does not hold");
        successors.push_back(*info);
    }
    return successors;
}

void
ShardMap::join(ShardInfo info)
{
    validateShard(info);
    auto it = std::lower_bound(shards_.begin(), shards_.end(), info.id,
                               [](const ShardInfo &entry,
                                  std::uint32_t value) {
                                   return entry.id < value;
                               });
    if (it != shards_.end() && it->id == info.id)
        *it = std::move(info);
    else
        shards_.insert(it, std::move(info));
    ++epoch_;
    rebuildRing();
}

void
ShardMap::leave(std::uint32_t id)
{
    auto it = std::lower_bound(shards_.begin(), shards_.end(), id,
                               [](const ShardInfo &entry,
                                  std::uint32_t value) {
                                   return entry.id < value;
                               });
    if (it == shards_.end() || it->id != id)
        return;
    shards_.erase(it);
    ++epoch_;
    rebuildRing();
}

std::string
ShardMap::encode() const
{
    std::ostringstream os;
    os << "shardmap v1\n"
       << "epoch " << epoch_ << '\n'
       << "vnodes " << vnodes_per_shard_ << '\n'
       << "count " << shards_.size() << '\n';
    for (const ShardInfo &info : shards_)
        os << "shard " << info.id << ' ' << info.address << '\n';
    return os.str();
}

ShardMap
ShardMap::decode(std::string_view text)
{
    std::istringstream is{std::string(text)};
    std::string line;

    auto nextLine = [&is, &line](const char *what) {
        while (std::getline(is, line)) {
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (!line.empty() && line[0] != '#')
                return;
        }
        throw std::invalid_argument(std::string("shard: truncated map: "
                                                "missing ")
                                    + what);
    };

    nextLine("header");
    if (line != "shardmap v1")
        throw std::invalid_argument("shard: bad map header: " + line);

    auto parseUint = [](const std::string &record, const char *prefix,
                        std::uint64_t max) -> std::uint64_t {
        std::istringstream fields(record);
        std::string token;
        std::uint64_t value = 0;
        if (!(fields >> token >> value) || token != prefix
            || value > max || !(fields >> std::ws).eof())
            throw std::invalid_argument("shard: bad map record: "
                                        + record);
        return value;
    };

    nextLine("epoch");
    std::uint64_t epoch = parseUint(line, "epoch", ~0ull);
    nextLine("vnodes");
    std::uint64_t vnodes = parseUint(line, "vnodes", 4096);
    if (vnodes == 0)
        throw std::invalid_argument("shard: zero vnodes in map");
    nextLine("count");
    std::uint64_t count = parseUint(line, "count", 100000);

    std::vector<ShardInfo> shards;
    shards.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
        nextLine("shard record");
        std::istringstream fields(line);
        std::string token;
        ShardInfo info;
        std::uint64_t id = 0;
        if (!(fields >> token >> id >> info.address) || token != "shard"
            || id > 0xFFFFFFFFull || !(fields >> std::ws).eof())
            throw std::invalid_argument("shard: bad shard record: "
                                        + line);
        info.id = static_cast<std::uint32_t>(id);
        shards.push_back(std::move(info));
    }
    // Anything after the promised records is a framing error: a
    // concatenated or truncated-then-glued map must not half-parse.
    while (std::getline(is, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (!line.empty() && line[0] != '#')
            throw std::invalid_argument(
                "shard: trailing garbage after map records: " + line);
    }
    // The constructor validates addresses and duplicate ids; epoch 0
    // would claim "never changed" for a non-trivial map, so floor it.
    ShardMap map(std::move(shards), static_cast<std::size_t>(vnodes),
                 epoch == 0 ? 1 : epoch);
    if (count == 0)
        map.setEpoch(epoch);
    return map;
}

SharedShardMap::SharedShardMap(ShardMap map)
    : map_(std::make_shared<const ShardMap>(std::move(map)))
{}

std::shared_ptr<const ShardMap>
SharedShardMap::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_;
}

void
SharedShardMap::update(ShardMap map)
{
    auto fresh = std::make_shared<const ShardMap>(std::move(map));
    std::lock_guard<std::mutex> lock(mutex_);
    map_ = std::move(fresh);
}

std::uint64_t
SharedShardMap::join(ShardInfo info)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ShardMap next = *map_;
    next.join(std::move(info));
    std::uint64_t epoch = next.epoch();
    map_ = std::make_shared<const ShardMap>(std::move(next));
    return epoch;
}

std::uint64_t
SharedShardMap::leave(std::uint32_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ShardMap next = *map_;
    next.leave(id);
    std::uint64_t epoch = next.epoch();
    map_ = std::make_shared<const ShardMap>(std::move(next));
    return epoch;
}

} // namespace opdvfs::shard
