#include "shard/ring.h"

#include <algorithm>
#include <stdexcept>

namespace opdvfs::shard {

std::uint64_t
mix64(std::uint64_t value)
{
    value += 0x9E3779B97F4A7C15ull;
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9ull;
    value = (value ^ (value >> 27)) * 0x94D049BB133111EBull;
    return value ^ (value >> 31);
}

HashRing::HashRing(const std::vector<std::uint32_t> &shard_ids,
                   std::size_t vnodes_per_shard)
{
    std::vector<std::uint32_t> ids = shard_ids;
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    points_.reserve(ids.size() * vnodes_per_shard);
    for (std::uint32_t id : ids) {
        for (std::size_t vnode = 0; vnode < vnodes_per_shard; ++vnode) {
            // Two rounds over a word that packs (id, vnode) without
            // overlap: pure integer arithmetic, so every process (and
            // platform) derives the identical ring for a membership.
            std::uint64_t word = (static_cast<std::uint64_t>(id) << 32)
                                 | static_cast<std::uint64_t>(vnode);
            points_.push_back({mix64(mix64(word)), id});
        }
    }
    std::sort(points_.begin(), points_.end(),
              [](const RingPoint &a, const RingPoint &b) {
                  return a.point != b.point ? a.point < b.point
                                            : a.shard < b.shard;
              });
}

std::uint32_t
HashRing::ownerOf(std::uint64_t digest) const
{
    if (points_.empty())
        throw std::logic_error("shard: ownership lookup on an empty ring");
    std::uint64_t position = mix64(digest);
    auto it = std::lower_bound(
        points_.begin(), points_.end(), position,
        [](const RingPoint &entry, std::uint64_t value) {
            return entry.point < value;
        });
    if (it == points_.end())
        it = points_.begin(); // wrap past the top of the ring
    return it->shard;
}

std::vector<std::uint32_t>
HashRing::ownersOf(std::uint64_t digest, std::size_t count) const
{
    if (points_.empty())
        throw std::logic_error("shard: ownership lookup on an empty ring");
    std::uint64_t position = mix64(digest);
    auto it = std::lower_bound(
        points_.begin(), points_.end(), position,
        [](const RingPoint &entry, std::uint64_t value) {
            return entry.point < value;
        });
    if (it == points_.end())
        it = points_.begin();
    std::vector<std::uint32_t> owners;
    // Walk clockwise collecting distinct shards; one full lap visits
    // every shard, so the loop is bounded even when count exceeds the
    // membership.
    for (std::size_t step = 0;
         step < points_.size() && owners.size() < count; ++step) {
        std::uint32_t shard = it->shard;
        if (std::find(owners.begin(), owners.end(), shard)
            == owners.end())
            owners.push_back(shard);
        ++it;
        if (it == points_.end())
            it = points_.begin();
    }
    return owners;
}

} // namespace opdvfs::shard
