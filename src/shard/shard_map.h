/**
 * @file
 * Versioned shard membership for the strategy-service cluster.
 *
 * A ShardMap is the single routing truth shared by clients and
 * servers: the member shards (id + "host:port" address), the number
 * of virtual nodes each contributes to the consistent-hash ring, and
 * a monotonically increasing *map epoch* bumped by every membership
 * change.  The epoch lets a server answer a mis-routed request with
 * `NotOwner{owner, map_epoch}`: a client holding an older epoch knows
 * its map is stale and self-heals from the map text the response
 * carries.
 *
 * The map serialises to a line-oriented text format (stable across
 * processes, order-independent: decode(encode(m)) routes every key
 * exactly as m does):
 *
 *   shardmap v1
 *   epoch <E>
 *   vnodes <V>
 *   count <N>
 *   shard <id> <host:port>
 *
 * SharedShardMap is the thread-safe holder a live server consults:
 * snapshots are immutable shared_ptrs, so the event loop reads
 * without blocking membership updates (admin JOIN/LEAVE).
 */

#ifndef OPDVFS_SHARD_SHARD_MAP_H
#define OPDVFS_SHARD_SHARD_MAP_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "shard/ring.h"

namespace opdvfs::shard {

/** One member shard. */
struct ShardInfo
{
    std::uint32_t id = 0;
    /** "host:port"; whitespace-free, validated on construction. */
    std::string address;

    bool operator==(const ShardInfo &other) const
    {
        return id == other.id && address == other.address;
    }
};

/** Membership + ring + epoch; value type, cheap to copy. */
class ShardMap
{
  public:
    /** Virtual nodes per shard when unspecified. */
    static constexpr std::size_t kDefaultVnodes = 64;

    /** An empty map (epoch 0): routing disabled. */
    ShardMap() = default;

    /**
     * Build a map from @p shards (sorted by id internally; insertion
     * order never matters).
     * @throws std::invalid_argument on duplicate ids, bad addresses
     *         or zero vnodes.
     */
    explicit ShardMap(std::vector<ShardInfo> shards,
                      std::size_t vnodes_per_shard = kDefaultVnodes,
                      std::uint64_t epoch = 1);

    bool empty() const { return shards_.empty(); }
    std::size_t size() const { return shards_.size(); }
    std::uint64_t epoch() const { return epoch_; }
    std::size_t vnodesPerShard() const { return vnodes_per_shard_; }

    /** Members sorted by id. */
    const std::vector<ShardInfo> &shards() const { return shards_; }

    /** The member with @p id, or nullptr. */
    const ShardInfo *find(std::uint32_t id) const;

    /**
     * The shard owning @p digest on the consistent-hash ring.
     * @throws std::logic_error when the map is empty.
     */
    const ShardInfo &ownerOf(std::uint64_t digest) const;

    /**
     * The @p count distinct ring successors of @p digest's owner, in
     * replica-placement order (the owner itself is excluded).  This is
     * both where the owner replicates the key and where a router
     * fails over when the owner is down.  A map smaller than
     * count + 1 returns every non-owner member.
     * @throws std::logic_error when the map is empty.
     */
    std::vector<ShardInfo> successorsOf(std::uint64_t digest,
                                        std::size_t count) const;

    /** Add or replace a member; bumps the epoch. */
    void join(ShardInfo info);

    /** Remove a member (no-op for unknown ids never bumps); bumps the
     *  epoch when something was removed. */
    void leave(std::uint32_t id);

    /** Force the epoch (decode and tests); never lowers it below the
     *  membership-change count already applied. */
    void setEpoch(std::uint64_t epoch) { epoch_ = epoch; }

    /** Stable text serialisation (see the file comment). */
    std::string encode() const;

    /**
     * Parse an encoded map.
     * @throws std::invalid_argument on any malformed record.
     */
    static ShardMap decode(std::string_view text);

    bool operator==(const ShardMap &other) const
    {
        return epoch_ == other.epoch_
               && vnodes_per_shard_ == other.vnodes_per_shard_
               && shards_ == other.shards_;
    }

  private:
    void rebuildRing();

    std::uint64_t epoch_ = 0;
    std::size_t vnodes_per_shard_ = kDefaultVnodes;
    /** Sorted by id. */
    std::vector<ShardInfo> shards_;
    HashRing ring_;
};

/** Split "host:port" into its parts.
 *  @throws std::invalid_argument on a malformed address. */
void parseAddress(const std::string &address, std::string *host,
                  std::uint16_t *port);

/**
 * Thread-safe holder of the current map.  Readers take an immutable
 * snapshot (one mutex acquisition, no copy); writers install a new
 * map wholesale or apply a membership change.
 */
class SharedShardMap
{
  public:
    explicit SharedShardMap(ShardMap map = {});

    /** The current map; never null (possibly empty). */
    std::shared_ptr<const ShardMap> snapshot() const;

    /** Replace the map wholesale (router self-heal, initial fill). */
    void update(ShardMap map);

    /** Membership changes; return the resulting epoch. */
    std::uint64_t join(ShardInfo info);
    std::uint64_t leave(std::uint32_t id);

  private:
    mutable std::mutex mutex_;
    std::shared_ptr<const ShardMap> map_;
};

} // namespace opdvfs::shard

#endif // OPDVFS_SHARD_SHARD_MAP_H
