/**
 * @file
 * The drift watchdog state machine:
 *
 *   Steady --(alarm)--> Suspect --(confirmed)--> Recalibrating
 *     ^                    |                          |
 *     +---(alarm clears)---+                          |
 *     +-------------(recalibrated())------------------+
 *
 * A single alarming iteration only raises suspicion; the alarm must
 * persist for `confirm_iterations` consecutive iterations before the
 * (expensive, strategy-invalidating) recalibration is triggered.  The
 * caller performs the actual recalibration while the machine sits in
 * Recalibrating, then reports completion — which bumps the model
 * epoch that invalidates cached strategies downstream.
 */

#ifndef OPDVFS_CALIB_WATCHDOG_H
#define OPDVFS_CALIB_WATCHDOG_H

#include <cstdint>

#include "calib/residual_tracker.h"

namespace opdvfs::calib {

/** Watchdog control state. */
enum class WatchdogState
{
    /** Models trusted; residuals within their CUSUM envelopes. */
    Steady,
    /** An alarm fired; awaiting confirmation. */
    Suspect,
    /** Drift confirmed; a recalibration is owed. */
    Recalibrating,
};

/** Watchdog tuning. */
struct WatchdogOptions
{
    /** Consecutive alarming iterations required to confirm a drift. */
    int confirm_iterations = 2;
};

/** Watchdog event counters. */
struct WatchdogStats
{
    std::uint64_t suspects = 0;
    std::uint64_t confirmations = 0;
    std::uint64_t recalibrations = 0;
    /** Suspicions that cleared without confirming (transients). */
    std::uint64_t dismissals = 0;
};

/** Debounces drift verdicts into recalibration decisions. */
class DriftWatchdog
{
  public:
    explicit DriftWatchdog(const WatchdogOptions &options = {});

    /**
     * Feed one iteration's verdict; returns the state the caller must
     * act on (Recalibrating = perform a recalibration now).
     */
    WatchdogState observe(const DriftVerdict &verdict);

    /**
     * Report that the owed recalibration was applied; returns to
     * Steady and advances the model epoch.
     */
    void recalibrated();

    WatchdogState state() const { return state_; }

    /** Last verdict that drove a transition into Recalibrating. */
    const DriftVerdict &confirmedVerdict() const
    {
        return confirmed_verdict_;
    }

    /** Model epoch: number of completed recalibrations. */
    std::uint64_t epoch() const { return epoch_; }

    const WatchdogStats &stats() const { return stats_; }
    const WatchdogOptions &options() const { return options_; }

  private:
    WatchdogOptions options_;
    WatchdogState state_ = WatchdogState::Steady;
    int consecutive_alarms_ = 0;
    DriftVerdict confirmed_verdict_;
    std::uint64_t epoch_ = 0;
    WatchdogStats stats_;
};

} // namespace opdvfs::calib

#endif // OPDVFS_CALIB_WATCHDOG_H
