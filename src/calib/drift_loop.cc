#include "calib/drift_loop.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <string>

#include "sim/simulator.h"
#include "trace/power_sampler.h"
#include "trace/profiler.h"

namespace opdvfs::calib {

namespace {

std::multimap<std::size_t, double>
buildTriggerMap(const std::vector<trace::SetFreqTrigger> &triggers,
                std::size_t op_count)
{
    std::multimap<std::size_t, double> map;
    for (const auto &t : triggers) {
        if (t.after_op_index >= op_count)
            throw std::invalid_argument(
                "runDriftLoop: trigger index out of range");
        map.emplace(t.after_op_index, t.mhz);
    }
    return map;
}

/** Queue one iteration (same trigger wiring as the guarded runner). */
void
enqueueIteration(npu::NpuChip &chip, const models::Workload &workload,
                 const std::multimap<std::size_t, double> &triggers,
                 bool guard_set_freqs, const dvfs::GuardOptions &guard,
                 dvfs::GuardStats &stats)
{
    for (std::size_t i = 0; i < workload.iteration.size(); ++i) {
        const ops::Op &op = workload.iteration[i];
        chip.enqueueOp(op.hw, op.id);

        auto range = triggers.equal_range(i);
        for (auto it = range.first; it != range.second; ++it) {
            auto event = std::make_shared<sim::SyncEvent>();
            chip.computeStream().enqueueRecord(event);
            chip.setFreqStream().enqueueWait(event);
            if (guard_set_freqs) {
                dvfs::enqueueGuardedSetFreq(chip, it->second,
                                            guard.set_freq_retries,
                                            guard.retry_backoff, stats);
            } else {
                chip.enqueueSetFreq(it->second);
            }
        }
    }
}

double
medianOf(std::vector<double> values)
{
    std::size_t mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + mid, values.end());
    return values[mid];
}

/** Accumulates a mean incrementally. */
struct MeanAccumulator
{
    double sum = 0.0;
    std::size_t count = 0;

    void add(double v)
    {
        sum += v;
        ++count;
    }
    bool empty() const { return count == 0; }
    double mean() const
    {
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
};

} // namespace

DriftLoopResult
runDriftLoop(const npu::NpuConfig &chip_config,
             const models::Workload &workload,
             perf::PerfModelRepository perf_models,
             const power::PowerModel &power_model,
             const std::unordered_map<std::uint64_t, power::OpPowerModel>
                 &op_power,
             std::vector<trace::SetFreqTrigger> triggers,
             double baseline_seconds, const DriftLoopOptions &options)
{
    if (workload.iteration.empty())
        throw std::invalid_argument("runDriftLoop: empty workload");
    if (options.iterations <= 0)
        throw std::invalid_argument("runDriftLoop: no iterations");
    if (options.hold_iterations < 1)
        throw std::invalid_argument(
            "runDriftLoop: hold_iterations must be >= 1");

    std::multimap<std::size_t, double> trigger_map =
        buildTriggerMap(triggers, workload.iteration.size());

    sim::Simulator simulator;
    npu::NpuConfig config = chip_config;
    config.initial_mhz = options.run.initial_mhz;
    npu::NpuChip chip(simulator, config);

    trace::Profiler profiler(chip, options.run.profiler_noise,
                             options.run.seed * 7919 + 1);
    profiler.registerSequence(workload.iteration);
    trace::PowerSampler sampler(chip, options.run.sample_period,
                                options.run.sampler_noise,
                                options.run.seed * 104729 + 2);

    dvfs::DvfsGuard guard(options.guard, baseline_seconds);
    dvfs::GuardStats &stats = guard.mutableStats();

    ResidualTracker tracker(options.tracker);
    Recalibrator recalibrator(options.recalibrator);
    DriftWatchdog watchdog(options.watchdog);

    const double initial_baseline = baseline_seconds;
    double current_baseline = baseline_seconds;

    // Warm-up repetitions (unmeasured, plain SetFreqs) bring the die
    // to thermal steady state before residuals are scored.
    while (ticksToSeconds(simulator.now()) < options.run.warmup_seconds) {
        enqueueIteration(chip, workload, trigger_map,
                         /*guard_set_freqs=*/false, options.guard, stats);
        simulator.run();
    }

    DriftLoopResult result;
    double max_mhz = chip.freqTable().maxMhz();
    double strategy_mhz = options.run.initial_mhz;
    bool was_active = true;
    const power::CalibratedConstants &constants = power_model.constants();

    for (int iter = 0; iter < options.iterations; ++iter) {
        bool strategy_active = guard.strategyEnabled();
        // Captured before observe() ticks the hold counter down.
        bool safe_hold = guard.safeHoldActive();
        if (guard.wantsThrottleReset()) {
            chip.resetThrottleGovernor();
            ++stats.throttle_resets;
        }

        profiler.clear();
        std::size_t samples_before = sampler.samples().size();
        chip.syncAccounting();
        npu::EnergyCounters energy_before = chip.energy();
        sampler.start(/*stop_when_idle=*/true);

        if (strategy_active) {
            // Resuming from a fallback or safe hold left the chip
            // pinned at the maximum frequency; re-assert the
            // strategy's cycle-entry frequency (a trigger-less
            // constant-pin strategy has no trigger to do it).
            if (!was_active) {
                if (options.guard.enabled) {
                    dvfs::enqueueGuardedSetFreq(
                        chip, strategy_mhz, options.guard.set_freq_retries,
                        options.guard.retry_backoff, stats);
                } else {
                    chip.enqueueSetFreq(strategy_mhz);
                }
            }
            enqueueIteration(chip, workload, trigger_map,
                             options.guard.enabled, options.guard, stats);
        } else {
            // Fallback / safe hold: pin the maximum frequency and run
            // with the strategy disabled.
            dvfs::enqueueGuardedSetFreq(chip, max_mhz,
                                        options.guard.set_freq_retries,
                                        options.guard.retry_backoff,
                                        stats);
            enqueueIteration(chip, workload, {},
                             /*guard_set_freqs=*/false, options.guard,
                             stats);
        }
        simulator.run();
        chip.syncAccounting();
        npu::EnergyCounters energy_after = chip.energy();

        DriftIteration record;
        record.strategy_active = strategy_active;
        record.aicore_joules =
            energy_after.aicore_joules - energy_before.aicore_joules;
        record.soc_joules =
            energy_after.soc_joules - energy_before.soc_joules;

        const std::vector<trace::OpRecord> &records = profiler.records();
        Tick first = records.empty() ? 0 : records.front().start;
        Tick last = 0;
        for (const auto &r : records)
            last = std::max(last, r.end);
        record.seconds = ticksToSeconds(last - first);

        // ---- guard bookkeeping (median-filtered telemetry) -----------
        std::vector<double> temps;
        const auto &samples = sampler.samples();
        for (std::size_t s = samples_before; s < samples.size(); ++s)
            temps.push_back(samples[s].temperature_c);
        bool telemetry_ok = !temps.empty();
        double median_temp = temps.empty() ? 0.0 : medianOf(temps);

        dvfs::GuardObservation observation;
        observation.iteration_seconds = record.seconds;
        observation.temperature_c = median_temp;
        observation.telemetry_ok = telemetry_ok;
        observation.throttled = chip.dvfs().throttled();
        record.guard_state = guard.observe(observation);
        record.loss = guard.lastLoss();

        const ModelPatch &patch = recalibrator.patch();

        // ---- duration residuals vs the (patched) perf models ---------
        std::unordered_map<std::string, MeanAccumulator> time_by_type;
        MeanAccumulator time_abs, time_signed;
        for (const auto &r : records) {
            const perf::OpPerfModel *model = perf_models.find(r.op_id);
            if (!model || r.duration_s <= 0.0)
                continue;
            double predicted = model->predictSeconds(r.f_mhz);
            if (!(predicted > 0.0))
                continue;
            double residual = (r.duration_s - predicted) / predicted;
            time_by_type[r.type].add(residual);
            time_abs.add(std::abs(residual));
            time_signed.add(residual);
            recalibrator.addTime({r.type, predicted, r.duration_s});
        }
        record.mean_abs_time_residual = time_abs.mean();
        record.mean_time_residual = time_signed.mean();

        // ---- power + thermal residuals from aligned telemetry --------
        double ambient = patch.thermal_updated ? patch.ambient_c
                                               : constants.ambient_c;
        double k = patch.thermal_updated ? patch.k_per_watt
                                         : constants.k_per_watt;
        MeanAccumulator power_residuals, power_abs;
        MeanAccumulator soc_watts_mean, temperature_mean;
        for (std::size_t s = samples_before; s < samples.size(); ++s) {
            const trace::PowerSample &sample = samples[s];
            auto it = std::upper_bound(
                records.begin(), records.end(), sample.tick,
                [](Tick tick, const trace::OpRecord &r) {
                    return tick < r.start;
                });
            if (it == records.begin())
                continue;
            const trace::OpRecord &r = *std::prev(it);
            if (sample.tick >= r.end)
                continue; // Fell in a gap between records.

            soc_watts_mean.add(sample.soc_watts);
            temperature_mean.add(sample.temperature_c);

            auto op_it = op_power.find(r.op_id);
            if (op_it == op_power.end())
                continue;
            // Evaluate the power model at the MEASURED temperature
            // rise: thermal-model error then cancels out of the power
            // residual, keeping the two channels separable.
            double delta_t = sample.temperature_c - ambient;
            PatchedPowerPrediction predicted = predictPatchedAt(
                power_model, op_it->second, sample.f_mhz, patch,
                delta_t);
            if (!(predicted.aicore_watts > 0.0))
                continue;
            double residual =
                (sample.aicore_watts - predicted.aicore_watts)
                / predicted.aicore_watts;
            power_residuals.add(residual);
            power_abs.add(std::abs(residual));
            recalibrator.addPower({predicted.aicore_dynamic_w,
                                   predicted.aicore_rest_w,
                                   sample.aicore_watts});
        }
        record.mean_abs_power_residual = power_abs.mean();
        record.mean_power_residual = power_residuals.mean();
        if (!soc_watts_mean.empty()) {
            record.mean_thermal_residual = temperature_mean.mean()
                - (ambient + k * soc_watts_mean.mean());
        }

        // ---- feed the tracker one observation per channel ------------
        if (options.watchdog_enabled) {
            // Safe-hold iterations run at the maximum frequency, whose
            // systematic fit bias differs from the strategy's
            // operating point; feeding them would pollute the anchors
            // a just-reset channel re-establishes.  The recalibrator
            // windows above still get every observation — the refit is
            // frequency-explicit and needs the parked data.
            if (!safe_hold) {
                for (const auto &[type, acc] : time_by_type)
                    tracker.addTimeResidual(type, acc.mean());
                if (!power_residuals.empty())
                    tracker.addPowerResidual(power_residuals.mean());
            }
            if (!soc_watts_mean.empty()) {
                // Equilibrium pair: iteration-mean power vs
                // iteration-mean temperature (Eq. 15 operating point).
                if (!safe_hold)
                    tracker.addThermalResidual(
                        record.mean_thermal_residual);
                recalibrator.addThermal({soc_watts_mean.mean(),
                                         temperature_mean.mean()});
            }

            record.verdict = tracker.verdict();
            bool was_recalibrating =
                watchdog.state() == WatchdogState::Recalibrating;
            record.watchdog_state = watchdog.observe(record.verdict);

            if (record.watchdog_state == WatchdogState::Recalibrating) {
                // Park the chip at the safe frequency while models
                // and strategy are swapped out underneath the run.
                if (options.guard.enabled)
                    guard.holdSafe(options.hold_iterations);

                // On confirmation, drop the mixed clean+drifting
                // window: the refit waits parked until it has enough
                // pure post-confirmation observations, then fits the
                // drifted behaviour in one accurate shot.
                if (!was_recalibrating)
                    recalibrator.clearWindows();

                if (recalibrator.recalibrate(
                        watchdog.confirmedVerdict())) {
                    const ModelPatch &applied = recalibrator.patch();
                    perf_models.scaleDurations(
                        applied.time_scale_by_type,
                        applied.time_scale_global);

                    current_baseline =
                        initial_baseline * applied.time_scale_global;
                    if (options.regenerate) {
                        RegeneratedStrategy regenerated =
                            options.regenerate(applied);
                        trigger_map = buildTriggerMap(
                            regenerated.triggers,
                            workload.iteration.size());
                        if (regenerated.baseline_seconds)
                            current_baseline =
                                *regenerated.baseline_seconds;
                        if (regenerated.initial_mhz)
                            strategy_mhz = *regenerated.initial_mhz;
                    }
                    guard.rebase(current_baseline);

                    watchdog.recalibrated();
                    // Re-anchor only the refit families; an unrefit
                    // channel keeps its accumulated drift evidence.
                    tracker.reset(watchdog.confirmedVerdict());
                    if (options.on_recalibrated)
                        options.on_recalibrated(applied);
                    record.recalibrated = true;
                    record.watchdog_state = watchdog.state();
                }
                // else: not enough window data yet; stay parked and
                // retry with a fuller window next iteration.
            }
        }

        result.iterations.push_back(record);
        was_active = strategy_active;
    }

    result.guard = guard.stats();
    result.watchdog = watchdog.stats();
    if (const npu::FaultInjector *injector = chip.faultInjector())
        result.faults = injector->counters();
    result.patch = recalibrator.patch();
    result.final_baseline_seconds = current_baseline;
    return result;
}

} // namespace opdvfs::calib
