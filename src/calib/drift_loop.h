/**
 * @file
 * The closed drift-recovery loop: run a DVFS strategy iteration after
 * iteration on one (possibly aging) chip, score every iteration's
 * residuals against the models that produced the strategy, and when
 * the watchdog confirms a drift:
 *
 *   1. hold the chip at the safe maximum frequency (DvfsGuard),
 *   2. refit the implicated coefficients (Recalibrator),
 *   3. apply the patch to the perf models and rebase the guard's
 *      baseline,
 *   4. optionally regenerate the strategy on the patched models
 *      (caller-supplied callback — typically a GA re-search),
 *   5. advance the model epoch and resume monitoring.
 *
 * Without the watchdog this degrades to the PR-1 behaviour: the guard
 * sees a stale baseline, falls back to the maximum frequency and the
 * strategy's energy savings are forfeited for as long as the drift
 * persists — which is exactly what bench_drift_recovery measures.
 */

#ifndef OPDVFS_CALIB_DRIFT_LOOP_H
#define OPDVFS_CALIB_DRIFT_LOOP_H

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "calib/recalibrator.h"
#include "calib/residual_tracker.h"
#include "calib/watchdog.h"
#include "dvfs/guard.h"
#include "models/workload.h"
#include "npu/npu_chip.h"
#include "perf/perf_model.h"
#include "power/power_model.h"
#include "trace/workload_runner.h"

namespace opdvfs::calib {

/** What a strategy-regeneration callback hands back. */
struct RegeneratedStrategy
{
    std::vector<trace::SetFreqTrigger> triggers;
    /**
     * Expected iteration time of the regenerated strategy; when unset
     * the guard rebases onto the patched prediction of the old
     * baseline (initial baseline x global duration scale).
     */
    std::optional<double> baseline_seconds;
    /**
     * Frequency the regenerated strategy starts its cycle at; when
     * unset the previous strategy frequency is kept.  Re-asserted
     * whenever the strategy resumes after a fallback or safe hold, so
     * trigger-less (constant-pin) strategies survive a guard trip.
     */
    std::optional<double> initial_mhz;
};

/** Drift-loop tuning. */
struct DriftLoopOptions
{
    dvfs::GuardOptions guard;
    trace::RunOptions run;
    /** Measured iterations (after warm-up). */
    int iterations = 24;
    TrackerOptions tracker;
    RecalibratorOptions recalibrator;
    WatchdogOptions watchdog;
    /** Master switch; off = PR-1 guard-only behaviour. */
    bool watchdog_enabled = true;
    /** Safe-frequency hold length while models are swapped. */
    int hold_iterations = 1;
    /** Called after every applied recalibration (epoch advance). */
    std::function<void(const ModelPatch &)> on_recalibrated;
    /** Re-search the strategy on the patched models. */
    std::function<RegeneratedStrategy(const ModelPatch &)> regenerate;
};

/** One measured iteration of the drift loop. */
struct DriftIteration
{
    double seconds = 0.0;
    /** Relative loss vs the guard's (possibly rebased) baseline. */
    double loss = 0.0;
    double aicore_joules = 0.0;
    double soc_joules = 0.0;
    bool strategy_active = true;
    dvfs::GuardState guard_state = dvfs::GuardState::Monitoring;
    WatchdogState watchdog_state = WatchdogState::Steady;
    DriftVerdict verdict;
    /** A recalibration was applied at the end of this iteration. */
    bool recalibrated = false;
    /** Mean |relative| duration residual across scored operators. */
    double mean_abs_time_residual = 0.0;
    /** Mean |relative| AICore power residual across aligned samples. */
    double mean_abs_power_residual = 0.0;
    /**
     * Signed residual means — the systematic model bias.  These are
     * what drift moves and recalibration must pull back; the absolute
     * means above additionally carry irreducible per-sample scatter
     * (op misattribution at sampling boundaries, noise).
     */
    double mean_time_residual = 0.0;
    double mean_power_residual = 0.0;
    /** Temperature bias vs the (patched) Eq. 15 equilibrium, Celsius. */
    double mean_thermal_residual = 0.0;
};

/** Everything the drift loop measured. */
struct DriftLoopResult
{
    std::vector<DriftIteration> iterations;
    dvfs::GuardStats guard;
    WatchdogStats watchdog;
    npu::FaultCounters faults;
    /** Cumulative patch at loop exit. */
    ModelPatch patch;
    /** Guard baseline at loop exit (rebased by recalibrations). */
    double final_baseline_seconds = 0.0;

    std::uint64_t recalibrations() const
    {
        return watchdog.recalibrations;
    }
};

/**
 * Run @p workload for `options.iterations` measured iterations on one
 * persistent chip built from @p chip_config (faults and drift
 * included), applying @p triggers while the guard allows, and running
 * the watchdog/recalibration machinery on the supplied models.
 * @p perf_models is taken by value: recalibrations mutate the copy.
 * @p baseline_seconds is the model-predicted iteration time the guard
 * starts from.
 */
DriftLoopResult
runDriftLoop(const npu::NpuConfig &chip_config,
             const models::Workload &workload,
             perf::PerfModelRepository perf_models,
             const power::PowerModel &power_model,
             const std::unordered_map<std::uint64_t, power::OpPowerModel>
                 &op_power,
             std::vector<trace::SetFreqTrigger> triggers,
             double baseline_seconds, const DriftLoopOptions &options);

} // namespace opdvfs::calib

#endif // OPDVFS_CALIB_DRIFT_LOOP_H
