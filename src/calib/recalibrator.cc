#include "calib/recalibrator.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/units.h"
#include "math/curve_fit.h"
#include "math/linear_solve.h"

namespace opdvfs::calib {

namespace {

/**
 * Fit the one-parameter model y = m * x with math::curveFit, bounded
 * away from zero so a degenerate window cannot produce a negative or
 * vanishing duration scale.
 */
double
fitScale(const std::vector<double> &x, const std::vector<double> &y)
{
    math::CurveFitOptions options;
    options.lower_bounds = {0.05};
    options.upper_bounds = {20.0};
    math::CurveFitResult result = math::curveFit(
        [](double xi, const std::vector<double> &params) {
            return params[0] * xi;
        },
        x, y, {1.0}, options);
    return result.params[0];
}

bool
usableScale(double scale)
{
    return std::isfinite(scale) && scale > 0.0;
}

template <typename T>
void
pushBounded(std::deque<T> &window, const T &observation,
            std::size_t capacity)
{
    window.push_back(observation);
    while (window.size() > capacity)
        window.pop_front();
}

} // namespace

Recalibrator::Recalibrator(const RecalibratorOptions &options)
    : options_(options)
{
    if (options_.window < 2)
        throw std::invalid_argument("Recalibrator: window must be >= 2");
}

void
Recalibrator::addTime(const TimeObservation &observation)
{
    if (!std::isfinite(observation.predicted_s)
        || !std::isfinite(observation.measured_s)
        || observation.predicted_s <= 0.0
        || observation.measured_s <= 0.0)
        return;
    pushBounded(time_, observation, options_.window);
}

void
Recalibrator::addPower(const PowerObservation &observation)
{
    if (!std::isfinite(observation.predicted_dynamic_w)
        || !std::isfinite(observation.predicted_rest_w)
        || !std::isfinite(observation.measured_w)
        || observation.predicted_dynamic_w <= 0.0)
        return;
    pushBounded(power_, observation, options_.window);
}

void
Recalibrator::addThermal(const ThermalObservation &observation)
{
    if (!std::isfinite(observation.soc_watts)
        || !std::isfinite(observation.temperature_c))
        return;
    pushBounded(thermal_, observation, options_.window);
}

bool
Recalibrator::refitTime()
{
    if (time_.size() < options_.min_time_samples)
        return false;

    // Group the window by op type; types with enough of their own
    // samples get an individual scale, the rest share the global one.
    std::unordered_map<std::string,
                       std::pair<std::vector<double>, std::vector<double>>>
        by_type;
    std::vector<double> all_x, all_y;
    all_x.reserve(time_.size());
    all_y.reserve(time_.size());
    for (const auto &obs : time_) {
        auto &[xs, ys] = by_type[obs.type];
        xs.push_back(obs.predicted_s);
        ys.push_back(obs.measured_s);
        all_x.push_back(obs.predicted_s);
        all_y.push_back(obs.measured_s);
    }

    double global_increment = fitScale(all_x, all_y);
    if (!usableScale(global_increment))
        return false;

    // Per-type absolute scales compose the increment onto whatever
    // scale produced the (patched) predictions in the window.
    for (const auto &[type, samples] : by_type) {
        const auto &[xs, ys] = samples;
        if (xs.size() < options_.min_time_samples_per_type)
            continue;
        double increment = fitScale(xs, ys);
        if (!usableScale(increment))
            continue;
        patch_.time_scale_by_type[type] =
            patch_.timeScaleFor(type) * increment;
    }
    patch_.time_scale_global *= global_increment;
    return true;
}

bool
Recalibrator::refitPower()
{
    if (power_.size() < options_.min_power_samples)
        return false;

    // measured - rest ~= m * dynamic + b  ->  scale increment m,
    // static-bias increment b.
    math::Matrix a(power_.size(), 2);
    std::vector<double> b(power_.size());
    for (std::size_t i = 0; i < power_.size(); ++i) {
        a(i, 0) = power_[i].predicted_dynamic_w;
        a(i, 1) = 1.0;
        b[i] = power_[i].measured_w - power_[i].predicted_rest_w;
    }

    double scale_increment = 1.0;
    double bias_increment = 0.0;
    try {
        std::vector<double> fit = math::leastSquares(a, b);
        scale_increment = fit[0];
        bias_increment = fit[1];
    } catch (const std::runtime_error &) {
        // Degenerate window (e.g. one frequency point only): fall
        // back to a pure scale, which is always well conditioned.
        double num = 0.0, den = 0.0;
        for (std::size_t i = 0; i < power_.size(); ++i) {
            num += a(i, 0) * b[i];
            den += a(i, 0) * a(i, 0);
        }
        if (den <= 0.0)
            return false;
        scale_increment = num / den;
    }
    if (!usableScale(scale_increment) || !std::isfinite(bias_increment))
        return false;

    patch_.power_dynamic_scale *= scale_increment;
    patch_.power_static_bias_w += bias_increment;
    return true;
}

bool
Recalibrator::refitThermal()
{
    if (thermal_.size() < options_.min_thermal_samples)
        return false;

    // T ~= ambient + k * P_soc (Eq. 15), absolute refit: the window
    // stores raw measurements, not residuals.
    math::Matrix a(thermal_.size(), 2);
    std::vector<double> b(thermal_.size());
    for (std::size_t i = 0; i < thermal_.size(); ++i) {
        a(i, 0) = thermal_[i].soc_watts;
        a(i, 1) = 1.0;
        b[i] = thermal_[i].temperature_c;
    }
    std::vector<double> fit;
    try {
        fit = math::leastSquares(a, b);
    } catch (const std::runtime_error &) {
        return false;
    }
    if (!std::isfinite(fit[0]) || !std::isfinite(fit[1]) || fit[0] < 0.0)
        return false;

    patch_.k_per_watt = fit[0];
    patch_.ambient_c = fit[1];
    patch_.thermal_updated = true;
    return true;
}

bool
Recalibrator::recalibrate(const DriftVerdict &verdict)
{
    bool changed = false;
    if (verdict.perf)
        changed = refitTime() || changed;
    if (verdict.power)
        changed = refitPower() || changed;
    if (verdict.thermal)
        changed = refitThermal() || changed;

    if (!changed)
        return false;

    ++patch_.epoch;
    // The windows were collected against the PREVIOUS patch; after a
    // refit their predictions are stale, so they must not feed the
    // next increment.
    time_.clear();
    power_.clear();
    thermal_.clear();
    return true;
}

void
Recalibrator::clearWindows()
{
    time_.clear();
    power_.clear();
    thermal_.clear();
}

PatchedPowerPrediction
predictPatchedAt(const power::PowerModel &model,
                 const power::OpPowerModel &op, double f_mhz,
                 const ModelPatch &patch, double delta_t)
{
    const power::CalibratedConstants &c = model.constants();
    double volts = model.table().voltageFor(f_mhz);
    double fv2 = mhzToHz(f_mhz) * volts * volts;

    double ambient = patch.thermal_updated ? patch.ambient_c : c.ambient_c;
    double s = patch.power_dynamic_scale;
    double bias = patch.power_static_bias_w;

    // Aging scales the activity-dependent AND clock-tree dynamic
    // terms (alpha + beta) f V^2, exactly as the injected capacitance
    // drift does on the simulated die.
    PatchedPowerPrediction prediction;
    prediction.delta_t = delta_t;
    prediction.temperature_c = ambient + delta_t;
    prediction.soc_watts = s * (op.alpha_soc + c.beta_soc) * fv2
        + c.theta_soc * volts + c.gamma_soc * delta_t * volts + bias;
    prediction.aicore_dynamic_w =
        s * (op.alpha_aicore + c.beta_aicore) * fv2;
    prediction.aicore_rest_w = c.theta_aicore * volts
        + c.gamma_aicore * delta_t * volts + bias;
    prediction.aicore_watts =
        prediction.aicore_dynamic_w + prediction.aicore_rest_w;
    return prediction;
}

PatchedPowerPrediction
predictPatched(const power::PowerModel &model,
               const power::OpPowerModel &op, double f_mhz,
               const ModelPatch &patch)
{
    const power::CalibratedConstants &c = model.constants();
    double volts = model.table().voltageFor(f_mhz);
    double fv2 = mhzToHz(f_mhz) * volts * volts;

    double k = patch.thermal_updated ? patch.k_per_watt : c.k_per_watt;
    double s = patch.power_dynamic_scale;
    double bias = patch.power_static_bias_w;

    double dyn_soc = (op.alpha_soc + c.beta_soc) * fv2;
    double static_soc = c.theta_soc * volts;

    double delta_t = 0.0;
    // Sect. 5.4.2 fix point, same iteration budget and tolerance as
    // the unpatched PowerModel::predict().
    for (int iter = 1; iter <= 16; ++iter) {
        double p_soc = s * dyn_soc + static_soc
            + c.gamma_soc * delta_t * volts + bias;
        double next_delta_t = k * p_soc;
        if (std::abs(next_delta_t - delta_t) < 0.01) {
            delta_t = next_delta_t;
            break;
        }
        delta_t = next_delta_t;
    }

    return predictPatchedAt(model, op, f_mhz, patch, delta_t);
}

} // namespace opdvfs::calib
