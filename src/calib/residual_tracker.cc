#include "calib/residual_tracker.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace opdvfs::calib {

ResidualTracker::ResidualTracker(const TrackerOptions &options)
    : options_(options)
{
    auto check = [](const CusumOptions &cusum, const char *name) {
        if (!std::isfinite(cusum.slack) || cusum.slack < 0.0)
            throw std::invalid_argument(
                std::string("ResidualTracker: negative ") + name
                + " slack");
        if (!std::isfinite(cusum.threshold) || cusum.threshold <= 0.0)
            throw std::invalid_argument(
                std::string("ResidualTracker: non-positive ") + name
                + " threshold");
    };
    check(options_.time, "time");
    check(options_.power, "power");
    check(options_.thermal, "thermal");
    if (options_.anchor_samples < 1)
        throw std::invalid_argument(
            "ResidualTracker: anchor_samples must be >= 1");
    if (options_.ewma_alpha <= 0.0 || options_.ewma_alpha > 1.0)
        throw std::invalid_argument(
            "ResidualTracker: ewma_alpha must be in (0, 1]");
}

void
ResidualTracker::observe(Channel &channel, const CusumOptions &cusum,
                         double residual)
{
    if (!std::isfinite(residual))
        return; // A corrupted measurement must not poison the sums.

    if (!channel.anchored) {
        // The first observations define "normal": with a repeating op
        // sequence the systematic part of the fit error repeats every
        // iteration, so anchoring on it leaves only genuine drift.
        channel.anchor_sum += residual;
        if (++channel.anchor_count >= options_.anchor_samples) {
            channel.anchor = channel.anchor_sum
                / static_cast<double>(channel.anchor_count);
            channel.ewma = channel.anchor;
            channel.anchored = true;
        }
        return;
    }

    channel.ewma = options_.ewma_alpha * residual
        + (1.0 - options_.ewma_alpha) * channel.ewma;

    double centered = residual - channel.anchor;
    channel.cusum_up =
        std::max(0.0, channel.cusum_up + centered - cusum.slack);
    channel.cusum_down =
        std::max(0.0, channel.cusum_down - centered - cusum.slack);
    channel.alarmed = channel.cusum_up > cusum.threshold
        || channel.cusum_down > cusum.threshold;
}

void
ResidualTracker::addTimeResidual(const std::string &type, double residual)
{
    observe(time_channels_[type], options_.time, residual);
}

void
ResidualTracker::addPowerResidual(double residual)
{
    observe(power_channel_, options_.power, residual);
}

void
ResidualTracker::addThermalResidual(double residual)
{
    observe(thermal_channel_, options_.thermal, residual);
}

DriftVerdict
ResidualTracker::verdict() const
{
    DriftVerdict verdict;
    for (const auto &[type, channel] : time_channels_)
        verdict.perf = verdict.perf || channel.alarmed;
    verdict.power = power_channel_.alarmed;
    verdict.thermal = thermal_channel_.alarmed;
    return verdict;
}

void
ResidualTracker::reset()
{
    time_channels_.clear();
    power_channel_ = Channel{};
    thermal_channel_ = Channel{};
}

void
ResidualTracker::reset(const DriftVerdict &families)
{
    if (families.perf)
        time_channels_.clear();
    if (families.power)
        power_channel_ = Channel{};
    if (families.thermal)
        thermal_channel_ = Channel{};
}

double
ResidualTracker::powerEwma() const
{
    return power_channel_.anchored ? power_channel_.ewma : 0.0;
}

double
ResidualTracker::timeEwma(const std::string &type) const
{
    auto it = time_channels_.find(type);
    if (it == time_channels_.end() || !it->second.anchored)
        return 0.0;
    return it->second.ewma;
}

} // namespace opdvfs::calib
