/**
 * @file
 * Model-drift detection from runtime residuals.
 *
 * The DVFS strategy is only as good as the models it was searched on;
 * silicon aging, sensor drift and cooling changes all push reality
 * away from the fit.  The tracker ingests one aggregated residual per
 * model channel per iteration:
 *
 *  - `time`    — per-op-type relative duration residuals against the
 *                performance model (Sect. 4.3 fits);
 *  - `power`   — relative power residuals against the Eq. 11 model;
 *  - `thermal` — absolute temperature residuals against the Eq. 15
 *                equilibrium model.
 *
 * Each channel anchors on the mean of its first few observations
 * (cancelling the systematic fit bias of a repeating op sequence),
 * smooths with an EWMA, and runs a two-sided CUSUM on the anchored
 * residual.  A channel alarms when either cumulative sum exceeds its
 * threshold; the verdict classifies the drift so the recalibrator can
 * refit only the affected coefficients.
 */

#ifndef OPDVFS_CALIB_RESIDUAL_TRACKER_H
#define OPDVFS_CALIB_RESIDUAL_TRACKER_H

#include <cstddef>
#include <string>
#include <unordered_map>

namespace opdvfs::calib {

/** Which model family a detected drift implicates. */
enum class DriftKind
{
    None,
    PerfModel,
    PowerModel,
    Thermal,
};

/** Per-channel classification of an active drift. */
struct DriftVerdict
{
    bool perf = false;
    bool power = false;
    bool thermal = false;

    bool any() const { return perf || power || thermal; }

    /** The dominant family (perf > power > thermal when several). */
    DriftKind primary() const
    {
        if (perf)
            return DriftKind::PerfModel;
        if (power)
            return DriftKind::PowerModel;
        if (thermal)
            return DriftKind::Thermal;
        return DriftKind::None;
    }
};

/** One channel's CUSUM tuning. */
struct CusumOptions
{
    /** Dead zone around the anchor; drifts below it never accumulate. */
    double slack = 0.01;
    /** Cumulative-sum level that raises the alarm. */
    double threshold = 0.08;
};

/** Tracker tuning. */
struct TrackerOptions
{
    /** Relative duration residuals (dimensionless). */
    CusumOptions time{0.01, 0.06};
    /** Relative power residuals (dimensionless). */
    CusumOptions power{0.015, 0.08};
    /**
     * Absolute temperature residuals, Celsius.  The slack absorbs the
     * k * sensor-bias coupling a power-sensor drift induces on the
     * temperature channel, so a power drift is not misclassified as
     * thermal.
     */
    CusumOptions thermal{2.0, 8.0};
    /** Observations averaged into each channel's anchor. */
    int anchor_samples = 3;
    /** EWMA smoothing factor for the reported residual level. */
    double ewma_alpha = 0.2;
};

/**
 * Anchored EWMA + two-sided CUSUM change-point detector over the
 * per-iteration model residuals.
 */
class ResidualTracker
{
  public:
    explicit ResidualTracker(const TrackerOptions &options = {});

    /**
     * One iteration's mean relative duration residual for op type
     * @p type ((measured - predicted) / predicted).
     */
    void addTimeResidual(const std::string &type, double residual);

    /** One iteration's mean relative power residual. */
    void addPowerResidual(double residual);

    /** One iteration's mean temperature residual, Celsius. */
    void addThermalResidual(double residual);

    /** Channels currently alarming, classified by model family. */
    DriftVerdict verdict() const;

    /**
     * Forget all anchors and cumulative sums; call after a
     * recalibration so the detector re-anchors on the new models.
     */
    void reset();

    /**
     * Reset only the channels of the families in @p families — the
     * ones a recalibration just refit — so they re-anchor on the new
     * models.  Channels whose family was NOT refit are untouched:
     * their accumulated drift evidence is still valid, and
     * re-anchoring them mid-drift would swallow the drift into the
     * new anchor.
     */
    void reset(const DriftVerdict &families);

    /** Smoothed residual of the power channel (0 before anchoring). */
    double powerEwma() const;

    /** Smoothed residual of a time channel (0 if unseen). */
    double timeEwma(const std::string &type) const;

    const TrackerOptions &options() const { return options_; }

  private:
    struct Channel
    {
        double anchor_sum = 0.0;
        int anchor_count = 0;
        double anchor = 0.0;
        bool anchored = false;
        double ewma = 0.0;
        double cusum_up = 0.0;
        double cusum_down = 0.0;
        bool alarmed = false;
    };

    void observe(Channel &channel, const CusumOptions &cusum,
                 double residual);

    TrackerOptions options_;
    std::unordered_map<std::string, Channel> time_channels_;
    Channel power_channel_;
    Channel thermal_channel_;
};

} // namespace opdvfs::calib

#endif // OPDVFS_CALIB_RESIDUAL_TRACKER_H
