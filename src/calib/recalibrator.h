/**
 * @file
 * Online model recalibration driven by the drift watchdog.
 *
 * When the residual tracker confirms a drift, the recalibrator refits
 * ONLY the implicated coefficients from a sliding window of runtime
 * observations — the full offline/online calibration pass (Fig. 11)
 * and the profiling sweep stay untouched:
 *
 *  - perf drift    -> one multiplicative duration scale per op type
 *                     (global fallback), reusing math::curveFit;
 *  - power drift   -> a dynamic-power scale (capacitance aging on the
 *                     alpha/beta f V^2 terms of Eq. 11) plus a static
 *                     bias (sensor offset), via math::leastSquares;
 *  - thermal drift -> the Eq. 15 (k, ambient) pair refit from
 *                     (P_soc, T) pairs.
 *
 * All corrections accumulate in a `ModelPatch`.  Observation windows
 * store PATCHED predictions, so each refit yields an increment that
 * composes onto the existing patch — repeated recalibrations converge
 * instead of re-deriving the same correction from stale residuals.
 */

#ifndef OPDVFS_CALIB_RECALIBRATOR_H
#define OPDVFS_CALIB_RECALIBRATOR_H

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "calib/residual_tracker.h"
#include "power/power_model.h"

namespace opdvfs::calib {

/** Cumulative model corrections; epoch 0 with no entries = pristine. */
struct ModelPatch
{
    /** Absolute duration scales for op types refit individually. */
    std::unordered_map<std::string, double> time_scale_by_type;
    /** Absolute duration scale for every other op type. */
    double time_scale_global = 1.0;
    /** Scale on the dynamic (f V^2) power terms of Eq. 11. */
    double power_dynamic_scale = 1.0;
    /** Additive power offset (absorbs sensor bias), watts. */
    double power_static_bias_w = 0.0;
    /** Refit Eq. 15 constants; meaningful when `thermal_updated`. */
    double k_per_watt = 0.0;
    double ambient_c = 0.0;
    bool thermal_updated = false;
    /** Bumped on every applied recalibration. */
    std::uint64_t epoch = 0;

    /** Effective duration scale for @p type. */
    double timeScaleFor(const std::string &type) const
    {
        auto it = time_scale_by_type.find(type);
        return it == time_scale_by_type.end() ? time_scale_global
                                              : it->second;
    }
};

/** One runtime duration measurement vs the (patched) perf model. */
struct TimeObservation
{
    std::string type;
    double predicted_s = 0.0;
    double measured_s = 0.0;
};

/** One telemetry sample decomposed against the (patched) Eq. 11. */
struct PowerObservation
{
    /** Patched dynamic (f V^2) part of the prediction, watts. */
    double predicted_dynamic_w = 0.0;
    /** Remaining predicted terms (static, leakage, bias), watts. */
    double predicted_rest_w = 0.0;
    double measured_w = 0.0;
};

/** One (SoC power, die temperature) equilibrium pair for Eq. 15. */
struct ThermalObservation
{
    double soc_watts = 0.0;
    double temperature_c = 0.0;
};

/** Recalibration tuning. */
struct RecalibratorOptions
{
    /** Sliding-window capacity per observation kind. */
    std::size_t window = 4096;
    /** Own samples before an op type gets its own duration scale. */
    std::size_t min_time_samples_per_type = 8;
    /** Total samples before any refit of that family is attempted. */
    std::size_t min_time_samples = 8;
    std::size_t min_power_samples = 8;
    std::size_t min_thermal_samples = 8;
};

/** Sliding-window coefficient refitter. */
class Recalibrator
{
  public:
    explicit Recalibrator(const RecalibratorOptions &options = {});

    void addTime(const TimeObservation &observation);
    void addPower(const PowerObservation &observation);
    void addThermal(const ThermalObservation &observation);

    /**
     * Refit the families implicated by @p verdict from the current
     * windows.  Returns true when the patch changed (epoch bumped and
     * windows cleared); false when no family had enough data, in
     * which case the windows are kept so the next attempt sees more.
     */
    bool recalibrate(const DriftVerdict &verdict);

    /**
     * Drop every buffered observation.  Called when a drift is
     * CONFIRMED: the window so far mixes clean-epoch and drifting
     * samples, and a refit over that mixture under-corrects.  Clearing
     * here means the refit waits (parked at the safe frequency) for
     * fresh post-confirmation observations and fits the drifted
     * behaviour in one accurate shot.
     */
    void clearWindows();

    const ModelPatch &patch() const { return patch_; }

    std::size_t timeWindowSize() const { return time_.size(); }
    std::size_t powerWindowSize() const { return power_.size(); }
    std::size_t thermalWindowSize() const { return thermal_.size(); }

    const RecalibratorOptions &options() const { return options_; }

  private:
    bool refitTime();
    bool refitPower();
    bool refitThermal();

    RecalibratorOptions options_;
    ModelPatch patch_;
    std::deque<TimeObservation> time_;
    std::deque<PowerObservation> power_;
    std::deque<ThermalObservation> thermal_;
};

/** Power/temperature prediction under a patch. */
struct PatchedPowerPrediction
{
    double aicore_watts = 0.0;
    double soc_watts = 0.0;
    /** Temperature rise over ambient, Celsius. */
    double delta_t = 0.0;
    /** Absolute die temperature, Celsius. */
    double temperature_c = 0.0;
    /** Patched dynamic (f V^2) part of the AICore prediction. */
    double aicore_dynamic_w = 0.0;
    /** aicore_watts - aicore_dynamic_w (static, leakage, bias). */
    double aicore_rest_w = 0.0;
};

/**
 * Re-run the Sect. 5.4.2 dT fix point (Eq. 15 <-> Eq. 16) with the
 * patch applied: dynamic terms scaled, static bias added, thermal
 * constants replaced.  With a pristine patch this reproduces
 * PowerModel::predict() exactly.
 */
PatchedPowerPrediction predictPatched(const power::PowerModel &model,
                                      const power::OpPowerModel &op,
                                      double f_mhz,
                                      const ModelPatch &patch);

/**
 * Patched prediction evaluated at a FIXED temperature rise @p delta_t
 * instead of the fix point.  Used with the measured die temperature so
 * a power-model residual is not polluted by thermal-model error —
 * that separation is what lets the verdict distinguish the two.
 */
PatchedPowerPrediction predictPatchedAt(const power::PowerModel &model,
                                        const power::OpPowerModel &op,
                                        double f_mhz,
                                        const ModelPatch &patch,
                                        double delta_t);

} // namespace opdvfs::calib

#endif // OPDVFS_CALIB_RECALIBRATOR_H
