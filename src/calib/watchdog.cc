#include "calib/watchdog.h"

#include <stdexcept>

namespace opdvfs::calib {

DriftWatchdog::DriftWatchdog(const WatchdogOptions &options)
    : options_(options)
{
    if (options_.confirm_iterations < 1)
        throw std::invalid_argument(
            "DriftWatchdog: confirm_iterations must be >= 1");
}

WatchdogState
DriftWatchdog::observe(const DriftVerdict &verdict)
{
    if (state_ == WatchdogState::Recalibrating)
        return state_; // Owed recalibration not performed yet.

    if (!verdict.any()) {
        if (state_ == WatchdogState::Suspect)
            ++stats_.dismissals;
        state_ = WatchdogState::Steady;
        consecutive_alarms_ = 0;
        return state_;
    }

    if (state_ == WatchdogState::Steady) {
        state_ = WatchdogState::Suspect;
        ++stats_.suspects;
        consecutive_alarms_ = 1;
    } else {
        ++consecutive_alarms_;
    }

    if (consecutive_alarms_ >= options_.confirm_iterations) {
        state_ = WatchdogState::Recalibrating;
        confirmed_verdict_ = verdict;
        ++stats_.confirmations;
        consecutive_alarms_ = 0;
    }
    return state_;
}

void
DriftWatchdog::recalibrated()
{
    if (state_ != WatchdogState::Recalibrating)
        throw std::logic_error(
            "DriftWatchdog: recalibrated() outside Recalibrating");
    state_ = WatchdogState::Steady;
    ++epoch_;
    ++stats_.recalibrations;
}

} // namespace opdvfs::calib
