/**
 * @file
 * Strategy client: request a DVFS strategy from a running
 * `strategy_server --listen <port>` over the src/net wire protocol.
 *
 * Sends the same request twice — the first answer is computed cold
 * (or warm-started), the second must come back as an exact cache hit
 * with the identical strategy — then queries the plaintext admin
 * endpoint.  Exits non-zero when any of that does not hold, so the CI
 * smoke job can assert the wire path end to end:
 *
 *   ./strategy_server --listen 38471 &
 *   ./strategy_client 127.0.0.1 38471
 */

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "models/transformer.h"
#include "net/client.h"

namespace {

/** Strategy text with the provenance token pinned: cold and exact-hit
 *  answers differ only in that token. */
std::string
normalisedStrategyText(opdvfs::dvfs::Strategy strategy)
{
    if (strategy.meta)
        strategy.meta->provenance = "normalised";
    std::ostringstream os;
    opdvfs::dvfs::saveStrategy(strategy, os);
    return os.str();
}

void
report(const char *label, const opdvfs::net::WireResponse &response)
{
    std::cout << label << ": provenance "
              << opdvfs::serve::provenanceToken(response.provenance)
              << ", score " << response.best_score << ", "
              << response.strategy.mhz_per_stage.size() << " stages, "
              << response.strategy.triggerCount() << " triggers, "
              << response.generations_run << " generations run, "
              << response.service_seconds << " s served, fingerprint "
              << std::hex << response.fingerprint_digest << std::dec
              << ", model epoch " << response.model_epoch << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace opdvfs;

    std::string host = argc >= 2 ? argv[1] : "127.0.0.1";
    int port = argc >= 3 ? std::atoi(argv[2]) : 38471;
    int seq = argc >= 4 ? std::atoi(argv[3]) : 256;
    if (port <= 0 || port > 65535 || seq <= 0) {
        std::cerr << "usage: strategy_client [host] [port] [seq]\n";
        return 2;
    }

    // The request: a small transformer iteration against the default
    // chip (which must equal the serving chip, or the server answers
    // ChipMismatch).
    net::WireRequest request;
    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);
    models::TransformerConfig model;
    model.name = "client-transformer";
    model.layers = 2;
    model.hidden = 1024;
    model.heads = 8;
    model.seq = seq;
    request.workload = models::buildTransformerTraining(memory, model, 5);
    request.chip = chip;
    request.seed = 7;

    net::ClientOptions options;
    options.request_timeout_seconds = 120.0;
    net::StrategyClient client(host, static_cast<std::uint16_t>(port),
                               options);

    try {
        net::WireResponse first = client.call(request);
        report("first call ", first);

        net::WireResponse second = client.call(request);
        report("second call", second);

        if (second.provenance != serve::Provenance::ExactHit) {
            std::cerr << "FAIL: second identical request was not an "
                         "exact cache hit\n";
            return 1;
        }
        if (normalisedStrategyText(second.strategy)
                != normalisedStrategyText(first.strategy)
            || second.best_score != first.best_score
            || second.fingerprint_digest != first.fingerprint_digest) {
            std::cerr << "FAIL: exact hit differs from the first "
                         "answer\n";
            return 1;
        }
        std::cout << "exact hit matches the first answer byte for "
                     "byte (retries: "
                  << client.retries() << ")\n";

        std::cout << "\nHEALTH: "
                  << net::adminQuery(host,
                                     static_cast<std::uint16_t>(port),
                                     "HEALTH");
        std::cout << "STATS:\n"
                  << net::adminQuery(host,
                                     static_cast<std::uint16_t>(port),
                                     "STATS");
    } catch (const net::BusyError &busy) {
        std::cerr << "FAIL: server stayed busy: " << busy.what() << "\n";
        return 1;
    } catch (const std::exception &error) {
        std::cerr << "FAIL: " << error.what() << "\n";
        return 1;
    }
    return 0;
}
