/**
 * @file
 * Shard client: exercise a running strategy-server fleet through the
 * client-side ShardRouter and assert the cluster contract end to end.
 *
 *   ./shard_client <id>=<host:port> <id>=<host:port> [...]
 *
 * Three phases, exiting non-zero when any assertion fails (the CI
 * 2-shard smoke job runs this against a loopback fleet):
 *
 *  1. Route a request with a correct map: the first answer is computed
 *     (cold or warm), the second must be an exact hit.
 *  2. Route the same request with a deliberately *wrong* map (the
 *     shard addresses swapped, epoch pinned below the fleet's): the
 *     first hop lands on a non-owner, which answers `NotOwner`; the
 *     router must adopt the carried (newer) map, follow the redirect,
 *     and return the byte-identical exact hit.
 *  3. Query each shard's admin endpoint: SHARDMAP must decode and
 *     route the request to the same owner everywhere.
 */

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "models/transformer.h"
#include "net/client.h"
#include "net/router.h"
#include "shard/shard_map.h"

namespace {

/** Strategy text with the provenance token pinned: cold and exact-hit
 *  answers differ only in that token. */
std::string
normalisedStrategyText(opdvfs::dvfs::Strategy strategy)
{
    if (strategy.meta)
        strategy.meta->provenance = "normalised";
    std::ostringstream os;
    opdvfs::dvfs::saveStrategy(strategy, os);
    return os.str();
}

bool
parseShardArg(const std::string &arg, opdvfs::shard::ShardInfo *out)
{
    std::size_t equals = arg.find('=');
    if (equals == std::string::npos || equals == 0
        || equals + 1 >= arg.size())
        return false;
    char *end = nullptr;
    unsigned long id = std::strtoul(arg.c_str(), &end, 10);
    if (end != arg.c_str() + equals || id == 0 || id > 0xFFFFFFFFul)
        return false;
    out->id = static_cast<std::uint32_t>(id);
    out->address = arg.substr(equals + 1);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace opdvfs;

    std::vector<shard::ShardInfo> shards;
    for (int arg = 1; arg < argc; ++arg) {
        shard::ShardInfo info;
        if (!parseShardArg(argv[arg], &info)) {
            std::cerr << "usage: shard_client <id>=<host:port> "
                         "<id>=<host:port> [...]\n";
            return 2;
        }
        shards.push_back(info);
    }
    if (shards.size() < 2) {
        std::cerr << "usage: shard_client needs at least two shards\n";
        return 2;
    }

    net::WireRequest request;
    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);
    models::TransformerConfig model;
    model.name = "shard-client-transformer";
    model.layers = 2;
    model.hidden = 1024;
    model.heads = 8;
    model.seq = 256;
    request.workload = models::buildTransformerTraining(memory, model, 5);
    request.chip = chip;
    request.seed = 7;

    net::RouterOptions options;
    options.client.request_timeout_seconds = 120.0;

    try {
        // Phase 1: correct map — cold, then exact hit at the owner.
        shard::ShardMap map(shards);
        net::ShardRouter router(map, options);
        std::cout << "owner for the request: "
                  << router.ownerAddress(request) << "\n";

        net::WireResponse first = router.call(request);
        net::WireResponse second = router.call(request);
        if (second.provenance != serve::Provenance::ExactHit) {
            std::cerr << "FAIL: second identical request was not an "
                         "exact cache hit\n";
            return 1;
        }
        if (router.redirectsFollowed() != 0) {
            std::cerr << "FAIL: a correct map should never be "
                         "redirected\n";
            return 1;
        }
        std::string expected = normalisedStrategyText(second.strategy);
        std::cout << "exact hit at the owner, score "
                  << second.best_score << "\n";

        // Phase 2: wrong map — swap every address one position so the
        // router dials a non-owner; pin the epoch below the fleet's so
        // the NotOwner self-heal can adopt the carried map.
        std::vector<shard::ShardInfo> swapped = shards;
        for (std::size_t at = 0; at < swapped.size(); ++at)
            swapped[at].address =
                shards[(at + 1) % shards.size()].address;
        shard::ShardMap stale(swapped, shard::ShardMap::kDefaultVnodes,
                              /*epoch=*/1);
        net::ShardRouter misrouted(stale, options);
        net::WireResponse redirected = misrouted.call(request);
        if (misrouted.redirectsFollowed() == 0) {
            std::cerr << "FAIL: the swapped map was not redirected\n";
            return 1;
        }
        if (redirected.provenance != serve::Provenance::ExactHit) {
            std::cerr << "FAIL: redirected request missed the exact "
                         "hit\n";
            return 1;
        }
        if (normalisedStrategyText(redirected.strategy) != expected
            || redirected.best_score != second.best_score
            || redirected.fingerprint_digest
                   != second.fingerprint_digest) {
            std::cerr << "FAIL: redirected exact hit differs from the "
                         "owner's answer\n";
            return 1;
        }
        std::cout << "byte-identical exact hit across "
                  << misrouted.redirectsFollowed()
                  << " NotOwner redirect(s), " << misrouted.mapRefreshes()
                  << " map refresh(es)\n";

        // Phase 3: every shard's served map must route to one owner.
        const std::string &owner = router.ownerAddress(request);
        for (const auto &info : shards) {
            std::string host;
            std::uint16_t port = 0;
            shard::parseAddress(info.address, &host, &port);
            shard::ShardMap served = shard::ShardMap::decode(
                net::adminQuery(host, port, "SHARDMAP"));
            const std::string &routed =
                served.ownerOf(net::ShardRouter::requestDigest(request))
                    .address;
            if (routed != owner) {
                std::cerr << "FAIL: shard " << info.id
                          << " routes the request to " << routed
                          << " but the fleet owner is " << owner << "\n";
                return 1;
            }
        }
        std::cout << "all " << shards.size()
                  << " shards agree on the owner\n";
    } catch (const std::exception &error) {
        std::cerr << "FAIL: " << error.what() << "\n";
        return 1;
    }
    return 0;
}
