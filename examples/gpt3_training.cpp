/**
 * @file
 * End-to-end energy optimisation of GPT-3 training (the paper's
 * headline experiment, Sect. 7.4): profile, build the performance and
 * power models, classify + preprocess the timeline, search a DVFS
 * strategy with the genetic algorithm, execute it with SetFreq
 * operators, and report the Table-3-style numbers.  Also exports the
 * optimised iteration's operator trace to CSV for inspection.
 */

#include <fstream>
#include <iostream>

#include "common/table.h"
#include "dvfs/pipeline.h"
#include "models/model_zoo.h"
#include "trace/trace_export.h"

int
main(int argc, char **argv)
{
    using namespace opdvfs;

    double target = 0.02;
    if (argc > 1)
        target = std::atof(argv[1]) / 100.0;

    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);
    std::cout << "building GPT-3 training iteration...\n";
    models::Workload gpt3 = models::buildWorkload("GPT3", memory, 1);
    std::cout << "  " << gpt3.opCount() << " operators per iteration, "
              << gpt3.countCategory(npu::OpCategory::Communication)
              << " collectives\n";

    dvfs::PipelineOptions options;
    options.chip = chip;
    options.perf_loss_target = target;
    options.warmup_seconds = 15.0;
    options.fit_kind = perf::FitFunction::PwlCycles;
    options.profile_freqs_mhz = {1000.0, 1400.0, 1800.0};
    dvfs::EnergyPipeline pipeline(options);

    std::cout << "running the Fig. 1 pipeline (offline calibration, "
                 "profiling, model fitting, GA search, execution)...\n";
    dvfs::PipelineResult result = pipeline.optimize(gpt3);

    Table table("GPT-3 end-to-end result (target "
                + Table::pct(target, 0) + ")");
    table.setHeader({"metric", "baseline (1800 MHz)", "under DVFS"});
    table.addRow({"iteration time",
                  Table::num(result.baseline.iteration_seconds, 3) + " s",
                  Table::num(result.dvfs.iteration_seconds, 3) + " s"});
    table.addRow({"SoC power",
                  Table::num(result.baseline.soc_avg_w, 1) + " W",
                  Table::num(result.dvfs.soc_avg_w, 1) + " W"});
    table.addRow({"AICore power",
                  Table::num(result.baseline.aicore_avg_w, 2) + " W",
                  Table::num(result.dvfs.aicore_avg_w, 2) + " W"});
    table.addRow({"die temperature",
                  Table::num(result.baseline.avg_temperature_c, 1) + " C",
                  Table::num(result.dvfs.avg_temperature_c, 1) + " C"});
    table.print(std::cout);

    std::cout << "\nperformance loss " << Table::pct(result.perfLoss(), 2)
              << ", AICore reduction "
              << Table::pct(result.aicoreReduction(), 2)
              << ", SoC reduction "
              << Table::pct(result.socReduction(), 2) << "\n";
    std::cout << "strategy: " << result.prep.stages.size()
              << " candidate stages ("
              << result.prep.lfcCount() << " LFC / "
              << result.prep.hfcCount() << " HFC), "
              << result.plan.triggers.size() << " SetFreq triggers, "
              << result.dvfs.set_freq_count << " SetFreq per iteration\n";
    std::cout << "GA converged at generation " << result.ga.converged_at
              << " of " << result.ga.score_history.size() << "\n";

    std::ofstream trace_csv("gpt3_dvfs_trace.csv");
    trace::exportOpRecordsCsv(result.dvfs.records, trace_csv);
    std::cout << "optimised iteration trace written to "
                 "gpt3_dvfs_trace.csv\n";
    return 0;
}
