/**
 * @file
 * Quickstart: run the full energy-optimisation pipeline (Fig. 1 of the
 * paper) on a small transformer training workload and print the
 * headline numbers: power reduction vs. performance loss.
 */

#include <iostream>

#include "dvfs/pipeline.h"
#include "models/transformer.h"
#include "npu/memory_system.h"

int
main()
{
    using namespace opdvfs;

    // 1. Describe the device (defaults model an Ascend-class NPU).
    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);

    // 2. Build a workload: a 12-layer transformer training iteration.
    models::TransformerConfig model;
    model.name = "quickstart-transformer";
    model.layers = 12;
    model.hidden = 2048;
    model.heads = 16;
    model.seq = 1024;
    model.tp_allreduce = true;
    model.tensor_parallel = 2;
    models::Workload workload =
        models::buildTransformerTraining(memory, model, /*seed=*/1);
    std::cout << "workload: " << workload.name << ", "
              << workload.opCount() << " operators per iteration\n";

    // 3. Configure and run the pipeline: profile -> model -> search ->
    //    execute.  2% performance-loss target, 5 ms adjustment interval.
    dvfs::PipelineOptions options;
    options.chip = chip;
    options.perf_loss_target = 0.02;
    options.warmup_seconds = 10.0;
    options.ga.generations = 200;
    dvfs::EnergyPipeline pipeline(options);

    dvfs::PipelineResult result = pipeline.optimize(workload);

    // 4. Report.
    std::cout << "baseline: " << result.baseline.iteration_seconds
              << " s/iter, AICore " << result.baseline.aicore_avg_w
              << " W, SoC " << result.baseline.soc_avg_w << " W\n";
    std::cout << "DVFS:     " << result.dvfs.iteration_seconds
              << " s/iter, AICore " << result.dvfs.aicore_avg_w
              << " W, SoC " << result.dvfs.soc_avg_w << " W\n";
    std::cout << "stages: " << result.prep.stages.size()
              << " (LFC " << result.prep.lfcCount() << ", HFC "
              << result.prep.hfcCount() << "), SetFreq per iteration: "
              << result.dvfs.set_freq_count << "\n";
    std::cout << "performance loss:      "
              << result.perfLoss() * 100.0 << "%\n";
    std::cout << "AICore power reduction: "
              << result.aicoreReduction() * 100.0 << "%\n";
    std::cout << "SoC power reduction:    "
              << result.socReduction() * 100.0 << "%\n";
    return 0;
}
