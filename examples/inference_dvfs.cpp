/**
 * @file
 * Host-bound inference scenario (paper Sect. 8.4): Llama2 decode
 * leaves the NPU idle between kernels because the host dispatches
 * slower than the accelerator executes.  Lowering the whole-run
 * frequency mostly fills the idle gaps, trading a small performance
 * loss for large power savings.  This example sweeps the fixed
 * frequency and finds the most energy-efficient point.
 */

#include <iostream>

#include "common/table.h"
#include "models/model_zoo.h"
#include "npu/freq_table.h"
#include "trace/workload_runner.h"

int
main()
{
    using namespace opdvfs;

    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);
    npu::FreqTable table(chip.freq);
    models::Workload llama =
        models::buildWorkload("Llama2-infer", memory, 1);

    double idle_fraction = llama.insensitiveSeconds();
    std::cout << "Llama2 decode: " << llama.opCount()
              << " operators per decode window, "
              << Table::num(idle_fraction * 1e3, 1)
              << " ms of host-dispatch gaps\n\n";

    trace::WorkloadRunner runner(chip);
    trace::RunOptions base_options;
    base_options.warmup_seconds = 10.0;
    trace::RunResult baseline = runner.run(llama, base_options);

    Table out("fixed-frequency sweep (tokens/s vs energy/token)");
    out.setHeader({"f (MHz)", "latency/token (ms)", "perf loss",
                   "SoC (W)", "AICore (W)", "energy/token (J)",
                   "tokens/s/W"});

    const int tokens = 16; // decode tokens per iteration window
    double best_efficiency = 0.0;
    double best_mhz = table.maxMhz();
    for (double f : table.frequenciesMhz()) {
        trace::RunOptions options = base_options;
        options.initial_mhz = f;
        options.seed = 1 + static_cast<std::uint64_t>(f);
        trace::RunResult run = runner.run(llama, options);

        double token_latency = run.iteration_seconds / tokens;
        double energy_per_token = run.soc_energy_j / tokens;
        double efficiency = 1.0 / (token_latency * run.soc_avg_w);
        if (efficiency > best_efficiency) {
            best_efficiency = efficiency;
            best_mhz = f;
        }
        out.addRow({Table::num(f, 0), Table::num(token_latency * 1e3, 2),
                    Table::pct(run.iteration_seconds
                                   / baseline.iteration_seconds - 1.0, 2),
                    Table::num(run.soc_avg_w, 1),
                    Table::num(run.aicore_avg_w, 2),
                    Table::num(energy_per_token, 2),
                    Table::num(efficiency, 4)});
    }
    out.print(std::cout);
    std::cout << "\nmost energy-efficient fixed frequency: "
              << Table::num(best_mhz, 0)
              << " MHz (the paper lowers all operators to 1300 MHz for "
                 "-2.48% perf, -11.26% SoC power, -25.06% AICore power)\n";
    return 0;
}
