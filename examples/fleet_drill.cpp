/**
 * @file
 * Fleet drill: drive a running shard fleet through a kill-and-restart
 * exercise, one phase per invocation (the CI chaos smoke job runs the
 * three phases around a `kill -9`):
 *
 *   ./fleet_drill prime    <id>=<host:port> [...]
 *   ./fleet_drill failover <id>=<host:port> [...] --dead <id>
 *   ./fleet_drill verify   <id>=<host:port> [...]
 *
 * Every phase routes the same fixed workload set (deterministic
 * transformer configs, fixed seed) through a failover-enabled
 * ShardRouter and exits non-zero when its phase contract is broken:
 *
 *  - `prime`: every request must answer; this seeds each owner's
 *    cache (and, server-side, its WAL and successor replicas).
 *  - `failover`: one shard is dead (`--dead` names it).  Every
 *    request must still answer — zero client-visible errors — and
 *    when the dead shard owned any of the keys, at least one answer
 *    must have come from a ring successor.
 *  - `verify`: the dead shard is back (rehydrated from snapshot +
 *    WAL).  Every request must answer as an exact cache hit: the
 *    restart lost nothing.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "models/transformer.h"
#include "net/client.h"
#include "net/router.h"
#include "shard/shard_map.h"

namespace {

bool
parseShardArg(const std::string &arg, opdvfs::shard::ShardInfo *out)
{
    std::size_t equals = arg.find('=');
    if (equals == std::string::npos || equals == 0
        || equals + 1 >= arg.size())
        return false;
    char *end = nullptr;
    unsigned long id = std::strtoul(arg.c_str(), &end, 10);
    if (end != arg.c_str() + equals || id == 0 || id > 0xFFFFFFFFul)
        return false;
    out->id = static_cast<std::uint32_t>(id);
    out->address = arg.substr(equals + 1);
    return true;
}

/** The drill's fixed workload set: enough keys that every shard of a
 *  small fleet owns at least one. */
std::vector<opdvfs::net::WireRequest>
drillRequests()
{
    using namespace opdvfs;
    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);
    std::vector<net::WireRequest> requests;
    for (int seq = 256; seq <= 480; seq += 32) {
        models::TransformerConfig model;
        model.name = "fleet-drill-transformer-" + std::to_string(seq);
        model.layers = 2;
        model.hidden = 1024;
        model.heads = 8;
        model.seq = seq;
        net::WireRequest request;
        request.workload =
            models::buildTransformerTraining(memory, model, 5);
        request.chip = chip;
        request.seed = 7;
        requests.push_back(std::move(request));
    }
    return requests;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace opdvfs;

    constexpr const char *kUsage =
        "usage: fleet_drill <prime|failover|verify> <id>=<host:port> "
        "[...] [--dead <id>]\n";
    if (argc < 3) {
        std::cerr << kUsage;
        return 2;
    }
    std::string phase = argv[1];
    if (phase != "prime" && phase != "failover" && phase != "verify") {
        std::cerr << kUsage;
        return 2;
    }
    std::vector<shard::ShardInfo> shards;
    std::uint32_t dead_id = 0;
    for (int arg = 2; arg < argc; ++arg) {
        std::string text = argv[arg];
        if (text == "--dead" && arg + 1 < argc) {
            long id = std::atol(argv[++arg]);
            if (id <= 0) {
                std::cerr << kUsage;
                return 2;
            }
            dead_id = static_cast<std::uint32_t>(id);
            continue;
        }
        shard::ShardInfo info;
        if (!parseShardArg(text, &info)) {
            std::cerr << kUsage;
            return 2;
        }
        shards.push_back(info);
    }
    if (shards.size() < 2) {
        std::cerr << "fleet_drill needs at least two shards\n";
        return 2;
    }

    // Short connect timeout and no transport retries: a dead shard
    // must cost milliseconds before failover kicks in, not the default
    // multi-second retry ladder.
    net::RouterOptions options;
    options.client.request_timeout_seconds = 120.0;
    options.client.connect_timeout_seconds = 0.3;
    options.client.max_attempts = 2;
    options.failover = true;
    options.max_failover_successors = 2;

    try {
        shard::ShardMap map(shards);
        net::ShardRouter router(map, options);
        std::vector<net::WireRequest> requests = drillRequests();

        std::size_t dead_owned = 0;
        for (const net::WireRequest &request : requests) {
            std::uint64_t digest =
                net::ShardRouter::requestDigest(request);
            if (dead_id != 0 && map.ownerOf(digest).id == dead_id)
                ++dead_owned;
        }

        std::size_t exact_hits = 0;
        for (std::size_t at = 0; at < requests.size(); ++at) {
            net::WireResponse response = router.call(requests[at]);
            if (response.provenance == serve::Provenance::ExactHit)
                ++exact_hits;
            std::cout << "request " << at << " provenance "
                      << provenanceToken(response.provenance) << "\n";
        }
        std::cout << phase << ": " << requests.size() << " answered, "
                  << exact_hits << " exact hits, "
                  << router.failoversServed() << " failovers";
        if (dead_id != 0)
            std::cout << " (dead shard owned " << dead_owned << " keys)";
        std::cout << std::endl;

        if (phase == "failover" && dead_owned > 0
            && router.failoversServed() == 0) {
            std::cerr << "FAIL: the dead shard owned keys but no "
                         "request was served by a successor\n";
            return 1;
        }
        if (phase == "verify" && exact_hits != requests.size()) {
            std::cerr << "FAIL: " << (requests.size() - exact_hits)
                      << " requests were recomputed after the restart "
                         "(cache recovery lost entries)\n";
            return 1;
        }
    } catch (const std::exception &error) {
        std::cerr << "FAIL (" << phase << "): " << error.what() << "\n";
        return 1;
    }
    return 0;
}
