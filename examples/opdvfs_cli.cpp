/**
 * @file
 * Command-line front end for the energy-optimisation pipeline.
 *
 *   opdvfs_cli [--model NAME] [--target PCT] [--fai MS]
 *              [--latency MS] [--fit quad|pwl] [--seed N]
 *              [--save-strategy FILE] [--list]
 *
 * Runs the full Fig. 1 pipeline on a zoo workload and prints the
 * Table-3-style row; optionally persists the generated strategy for a
 * separate execution pass.
 */

#include <cstring>
#include <iostream>
#include <string>

#include "common/table.h"
#include "dvfs/pipeline.h"
#include "dvfs/report.h"

#include <fstream>
#include "models/model_zoo.h"

namespace {

void
usage()
{
    std::cout <<
        "usage: opdvfs_cli [options]\n"
        "  --model NAME        workload to optimise (default GPT3)\n"
        "  --target PCT        performance-loss target in percent "
        "(default 2)\n"
        "  --fai MS            frequency adjustment interval in ms "
        "(default 5)\n"
        "  --latency MS        true SetFreq latency in ms (default 1)\n"
        "  --fit quad|pwl      fitting family: the paper's Func. 2 or "
        "piecewise-linear cycles (default pwl)\n"
        "  --seed N            experiment seed (default 1)\n"
        "  --save-strategy F   write the generated strategy to file F\n"
        "  --report F          write a markdown report to file F\n"
        "  --list              list available workloads and exit\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace opdvfs;

    std::string model = "GPT3";
    double target = 0.02;
    double fai_ms = 5.0;
    double latency_ms = 1.0;
    std::string fit = "pwl";
    std::string strategy_path;
    std::string report_path;
    std::uint64_t seed = 1;

    for (int i = 1; i < argc; ++i) {
        auto need_value = [&](const char *flag) {
            if (i + 1 >= argc) {
                std::cerr << flag << " needs a value\n";
                std::exit(2);
            }
            return std::string(argv[++i]);
        };
        if (!std::strcmp(argv[i], "--model")) {
            model = need_value("--model");
        } else if (!std::strcmp(argv[i], "--target")) {
            target = std::stod(need_value("--target")) / 100.0;
        } else if (!std::strcmp(argv[i], "--fai")) {
            fai_ms = std::stod(need_value("--fai"));
        } else if (!std::strcmp(argv[i], "--latency")) {
            latency_ms = std::stod(need_value("--latency"));
        } else if (!std::strcmp(argv[i], "--fit")) {
            fit = need_value("--fit");
        } else if (!std::strcmp(argv[i], "--seed")) {
            seed = std::stoull(need_value("--seed"));
        } else if (!std::strcmp(argv[i], "--save-strategy")) {
            strategy_path = need_value("--save-strategy");
        } else if (!std::strcmp(argv[i], "--report")) {
            report_path = need_value("--report");
        } else if (!std::strcmp(argv[i], "--list")) {
            for (const auto &name : models::workloadNames())
                std::cout << name << "\n";
            return 0;
        } else {
            usage();
            return !std::strcmp(argv[i], "--help") ? 0 : 2;
        }
    }

    npu::NpuConfig chip;
    chip.set_freq_latency = secondsToTicks(latency_ms * 1e-3);
    npu::MemorySystem memory(chip.memory);

    models::Workload workload;
    try {
        workload = models::buildWorkload(model, memory, seed);
    } catch (const std::invalid_argument &e) {
        std::cerr << e.what() << " (use --list)\n";
        return 2;
    }

    dvfs::PipelineOptions options;
    options.chip = chip;
    options.perf_loss_target = target;
    options.preprocess.fai = secondsToTicks(fai_ms * 1e-3);
    options.fit_kind = fit == "quad" ? perf::FitFunction::QuadOverF
                                     : perf::FitFunction::PwlCycles;
    options.profile_freqs_mhz = {1000.0, 1400.0, 1800.0};
    options.warmup_seconds = 15.0;
    options.seed = seed;

    std::cout << "optimising " << model << " (" << workload.opCount()
              << " ops/iter) at a " << Table::pct(target, 1)
              << " loss target, FAI " << fai_ms << " ms, SetFreq latency "
              << latency_ms << " ms, fit=" << fit << "\n";

    dvfs::EnergyPipeline pipeline(options);
    dvfs::PipelineResult result = pipeline.optimize(workload);

    Table out(model + " result");
    out.setHeader({"metric", "baseline", "DVFS", "delta"});
    out.addRow({"iteration (s)",
                Table::num(result.baseline.iteration_seconds, 4),
                Table::num(result.dvfs.iteration_seconds, 4),
                Table::pct(result.perfLoss(), 2)});
    out.addRow({"AICore (W)", Table::num(result.baseline.aicore_avg_w, 2),
                Table::num(result.dvfs.aicore_avg_w, 2),
                "-" + Table::pct(result.aicoreReduction(), 2)});
    out.addRow({"SoC (W)", Table::num(result.baseline.soc_avg_w, 1),
                Table::num(result.dvfs.soc_avg_w, 1),
                "-" + Table::pct(result.socReduction(), 2)});
    out.print(std::cout);
    std::cout << result.prep.stages.size() << " stages, "
              << result.dvfs.set_freq_count << " SetFreq/iter, GA best "
                 "score reached at generation "
              << result.ga.converged_at << "\n";

    if (!strategy_path.empty()) {
        dvfs::saveStrategyFile(result.strategy(), strategy_path);
        std::cout << "strategy written to " << strategy_path << "\n";
    }
    if (!report_path.empty()) {
        std::ofstream report(report_path);
        dvfs::writeReport(result, workload, memory, report);
        std::cout << "report written to " << report_path << "\n";
    }
    return 0;
}
