/**
 * @file
 * Fleet deployment of a generated DVFS strategy across a
 * tensor-parallel NPU group: generate the strategy once on a
 * single-device profile (exactly as the paper does), then study what
 * partial rollout does to an 8-device group whose collectives
 * synchronise every member.
 */

#include <iostream>

#include "cluster/cluster_runner.h"
#include "common/table.h"
#include "dvfs/pipeline.h"
#include "models/transformer.h"
#include "power/offline_calibration.h"

int
main()
{
    using namespace opdvfs;

    cluster::ClusterConfig cluster_config;
    cluster_config.devices = 8;
    npu::MemorySystem memory(cluster_config.chip.memory);

    // A GPT-3 slice sized for a quick demo.
    models::TransformerConfig model;
    model.name = "GPT3-slice";
    model.layers = 8;
    model.hidden = 12288;
    model.heads = 96;
    model.seq = 2048;
    model.batch = 2;
    model.tensor_parallel = 8;
    model.tp_allreduce = true;
    model.grad_allreduce = false;
    models::Workload workload =
        models::buildTransformerTraining(memory, model, 1);

    // 1. Generate the strategy on one device (the paper's flow).
    std::cout << "generating strategy on a single device ("
              << workload.opCount() << " ops/iter)...\n";
    dvfs::PipelineOptions options;
    options.chip = cluster_config.chip;
    options.perf_loss_target = 0.02;
    options.warmup_seconds = 5.0;
    options.fit_kind = perf::FitFunction::PwlCycles;
    dvfs::EnergyPipeline pipeline(options);
    dvfs::PipelineResult single = pipeline.optimize(workload);
    std::cout << "  single-device result: "
              << Table::pct(single.perfLoss(), 2) << " loss, "
              << Table::pct(single.aicoreReduction(), 2)
              << " AICore reduction, " << single.plan.triggers.size()
              << " triggers\n\n";

    // 2. Roll it out to 0/1/4/8 of the 8 devices.
    cluster::ClusterRunner runner(cluster_config);
    cluster::ClusterRunOptions run_options;
    run_options.warmup_iterations = 2;

    cluster::ClusterRunResult baseline = runner.run(workload, {},
                                                    run_options);
    Table table("rollout study (8-device tensor-parallel group)");
    table.setHeader({"devices with strategy", "iter (ms)", "perf loss",
                     "mean AICore (W)", "AICore red.",
                     "collective wait (device-ms)"});
    auto add_row = [&](const std::string &name,
                       const cluster::ClusterRunResult &run) {
        table.addRow(
            {name, Table::num(run.iteration_seconds * 1e3, 1),
             Table::pct(run.iteration_seconds
                            / baseline.iteration_seconds - 1.0, 2),
             Table::num(run.aicoreAvgWatts(), 2),
             Table::pct(1.0 - run.aicoreAvgWatts()
                            / baseline.aicoreAvgWatts(), 2),
             Table::num(run.collective_wait_seconds * 1e3, 1)});
    };
    add_row("0 (baseline)", baseline);
    for (int count : {1, 4, 8}) {
        std::vector<std::vector<trace::SetFreqTrigger>> triggers(8);
        for (int d = 0; d < count; ++d)
            triggers[static_cast<std::size_t>(d)] =
                single.plan.triggers;
        add_row(std::to_string(count),
                runner.run(workload, triggers, run_options));
    }
    table.print(std::cout);

    std::cout << "\ncollectives synchronise the group: partial rollout "
                 "pays the strategy's full performance cost for a "
                 "fraction of its savings - ship it fleet-wide\n";
    return 0;
}
