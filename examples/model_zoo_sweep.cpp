/**
 * @file
 * Sweep the whole built-in model zoo through the energy-optimisation
 * pipeline at one loss target and print a compact leaderboard:
 * which workloads are most "DVFS-able" and why (their bottleneck
 * time mix).
 */

#include <iostream>
#include <map>

#include "common/table.h"
#include "dvfs/classification.h"
#include "dvfs/pipeline.h"
#include "models/model_zoo.h"
#include "power/offline_calibration.h"

int
main(int argc, char **argv)
{
    using namespace opdvfs;

    double target = 0.02;
    if (argc > 1)
        target = std::atof(argv[1]) / 100.0;

    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);

    std::cout << "offline power calibration...\n";
    power::CalibratedConstants constants = power::calibrateOffline(chip);

    Table table("model zoo at the " + Table::pct(target, 0)
                + " loss target");
    table.setHeader({"model", "ops/iter", "iter (s)", "AICore red.",
                     "SoC red.", "perf loss", "core-bound time",
                     "uncore-bound time", "insensitive time"});

    const std::vector<std::string> zoo = {
        "GPT3", "BERT", "ResNet50", "ResNet152", "Vit_base",
        "Deit_small", "VGG19", "AlexNet", "ShuffleNetV2Plus"};

    for (const auto &name : zoo) {
        models::Workload workload = models::buildWorkload(name, memory, 1);

        dvfs::PipelineOptions options;
        options.chip = chip;
        options.perf_loss_target = target;
        options.constants = constants;
        options.warmup_seconds = name == "GPT3" ? 15.0 : 25.0;
        options.fit_kind = perf::FitFunction::PwlCycles;
        options.profile_freqs_mhz = {1000.0, 1400.0, 1800.0};
        dvfs::EnergyPipeline pipeline(options);
        dvfs::PipelineResult result = pipeline.optimize(workload);

        // Time mix by bottleneck class.
        double core = 0.0, uncore = 0.0, insensitive = 0.0, total = 0.0;
        for (std::size_t i = 0; i < result.baseline.records.size(); ++i) {
            const auto &record = result.baseline.records[i];
            double seconds = ticksToSeconds(record.end - record.start);
            total += seconds;
            switch (result.prep.bottlenecks[i]) {
              case dvfs::Bottleneck::Core:
              case dvfs::Bottleneck::Latency:
                core += seconds;
                break;
              case dvfs::Bottleneck::Uncore:
                uncore += seconds;
                break;
              default:
                insensitive += seconds;
                break;
            }
        }

        table.addRow({name, std::to_string(workload.opCount()),
                      Table::num(result.baseline.iteration_seconds, 3),
                      Table::pct(result.aicoreReduction(), 2),
                      Table::pct(result.socReduction(), 2),
                      Table::pct(result.perfLoss(), 2),
                      Table::pct(core / total, 0),
                      Table::pct(uncore / total, 0),
                      Table::pct(insensitive / total, 0)});
    }
    table.print(std::cout);
    std::cout << "\nworkloads with more uncore-bound and insensitive "
                 "time admit deeper savings at the same loss target\n";
    return 0;
}
