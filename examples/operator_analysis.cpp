/**
 * @file
 * White-box operator analysis (paper Sect. 4): for a handful of
 * operators, prints the exact convex piecewise-linear Cycle(f)
 * structure (segments, kinks, slopes), the bottleneck classification
 * its profile would produce, and the per-operator frequency
 * sensitivity that motivates fine-grained DVFS (Sect. 6: "MatMul
 * sacrifices 6.9% performance for a 7.9% power gain, Gelu trades 2%
 * for 5%+").
 */

#include <iostream>

#include "common/table.h"
#include "dvfs/classification.h"
#include "npu/aicore_timeline.h"
#include "npu/power.h"
#include "ops/op_factory.h"
#include "perf/timeline_analysis.h"

int
main()
{
    using namespace opdvfs;

    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);
    npu::FreqTable freq_table(chip.freq);
    ops::OpFactory factory(memory, Rng(4));
    npu::PowerCalculator power(chip.aicore_power, chip.uncore_power);

    std::vector<ops::Op> ops;
    ops.push_back(factory.matMul(4096, 12288, 4608));
    ops.push_back(factory.gelu(32 * 1024 * 1024));
    ops.push_back(factory.add(24 * 1024 * 1024));
    ops.push_back(factory.softmax(32768, 2048));
    ops.push_back(factory.conv2d(256, 256, 256, 14, 14, 3));
    ops.push_back(factory.tinyScalarOp("Cast"));

    Table table("operator frequency sensitivity (1800 -> 1600 MHz)");
    table.setHeader({"operator", "class", "pwl segments", "kinks (MHz)",
                     "time @1800 (us)", "perf loss @1600",
                     "power gain @1600"});

    for (const auto &op : ops) {
        npu::AicoreTimeline timeline(op.hw, memory);
        auto analysis =
            perf::analyzeTimeline(op.hw, memory, 1000.0, 1800.0);

        // Classify from the (noise-free) pipeline ratios.
        trace::OpRecord record;
        record.category = op.hw.category;
        record.ratios = timeline.ratios(1800.0);
        dvfs::Bottleneck bottleneck = dvfs::classify(record);

        auto power_at = [&](double f) {
            npu::PowerState state;
            state.f_mhz = f;
            state.volts = freq_table.voltageFor(f);
            state.alpha_core = op.hw.alpha_core;
            state.uncore_activity = op.hw.uncore_activity;
            state.delta_t = 35.0;
            return power.aicorePower(state);
        };

        double t1800 = timeline.seconds(1800.0);
        double t1600 = timeline.seconds(1600.0);
        std::string kinks;
        for (double bp : analysis.breakpoints_mhz) {
            if (!kinks.empty())
                kinks += " ";
            kinks += Table::num(bp, 0);
        }
        if (kinks.empty())
            kinks = "-";

        table.addRow(
            {op.type, dvfs::bottleneckName(bottleneck),
             std::to_string(analysis.segments), kinks,
             Table::num(t1800 * 1e6, 1),
             Table::pct(t1600 / t1800 - 1.0, 1),
             Table::pct(1.0 - power_at(1600.0) / power_at(1800.0), 1)});
    }
    table.print(std::cout);
    std::cout << "\ncompute-bound operators pay nearly the full "
                 "frequency ratio in time; uncore-saturated operators "
                 "trade almost nothing - the asymmetry fine-grained "
                 "DVFS exploits (Sect. 6)\n";
    return 0;
}
