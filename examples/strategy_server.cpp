/**
 * @file
 * Strategy server: drive the in-process StrategyService with a
 * request mix a production fleet would generate — repeated
 * resubmissions of known workloads (exact hits), new variants of a
 * known model family (warm starts), and genuinely new models (cold
 * searches) — then print the per-request provenance and the service
 * counters.
 *
 * With `--listen <port>` it instead serves the StrategyService over
 * TCP (the src/net wire protocol) until SIGINT/SIGTERM, for
 * examples/strategy_client.cpp and the CI network smoke job.  Port 0
 * binds an ephemeral port; the kernel-chosen port is printed on
 * stdout either way (`listening on 127.0.0.1:<port>`), so scripts can
 * scrape it instead of racing for a free one:
 *
 *   ./strategy_server --listen 38471 &
 *   ./strategy_client 127.0.0.1 38471
 *
 * Cluster mode adds `--shard-id <id>` (this server's identity on the
 * consistent-hash ring; the server self-joins after binding, so it
 * works with port 0) and `--peers <id>=<host:port>[,...]` (the other
 * fleet members).  A two-shard loopback fleet:
 *
 *   ./strategy_server --listen 38471 --shard-id 1 --peers 2=127.0.0.1:38472 &
 *   ./strategy_server --listen 38472 --shard-id 2 --peers 1=127.0.0.1:38471 &
 *   ./shard_client 1=127.0.0.1:38471 2=127.0.0.1:38472
 *
 * Fault-tolerance flags:
 *
 *   --snapshot <path> --wal <path>   crash-safe cache persistence:
 *       the cache is rehydrated from snapshot + WAL replay at startup
 *       (`restored <n> entries` is printed for scripts to scrape),
 *       owned inserts are WAL-logged as they happen, snapshots are
 *       written periodically and once more on graceful shutdown.
 *   --snapshot-interval <seconds>    period between snapshots (5).
 *   --reactors <N>                   event-loop threads; connections
 *       are dealt round-robin across them and exact cache hits are
 *       answered on the owning loop without a worker hop (default 1).
 *   --replication <R>                cluster mode only: replicate each
 *       owned insert to its R-1 ring successors so router failover
 *       finds warm replicas when this shard dies (default 1: off).
 *
 * SIGTERM/SIGINT drain the server and, when persistence is on, write
 * a final snapshot before exit.
 */

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "models/model_zoo.h"
#include "models/transformer.h"
#include "net/health.h"
#include "net/peer.h"
#include "net/server.h"
#include "serve/cache_store.h"
#include "serve/service.h"
#include "shard/shard_map.h"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void
requestStop(int)
{
    g_stop_requested = 1;
}

/** Parsed `--shard-id` / `--peers` flags. */
struct ClusterFlags
{
    bool enabled = false;
    std::uint32_t shard_id = 0;
    std::vector<opdvfs::shard::ShardInfo> peers;
};

/** Parsed fault-tolerance flags. */
struct RobustnessFlags
{
    std::string snapshot_path;
    std::string wal_path;
    double snapshot_interval_seconds = 5.0;
    std::size_t replication_factor = 1;
    std::size_t reactor_threads = 1;

    bool persistence() const { return !snapshot_path.empty(); }
};

/** Parse `<id>=<host:port>[,...]` into ShardInfo entries. */
bool
parsePeerList(const std::string &text,
              std::vector<opdvfs::shard::ShardInfo> *out)
{
    std::istringstream entries(text);
    std::string entry;
    while (std::getline(entries, entry, ',')) {
        std::size_t equals = entry.find('=');
        if (equals == std::string::npos || equals == 0
            || equals + 1 >= entry.size())
            return false;
        char *end = nullptr;
        unsigned long id = std::strtoul(entry.c_str(), &end, 10);
        if (end != entry.c_str() + equals || id == 0
            || id > 0xFFFFFFFFul)
            return false;
        out->push_back({static_cast<std::uint32_t>(id),
                        entry.substr(equals + 1)});
    }
    return !out->empty();
}

/** Serve over TCP until a termination signal arrives. */
int
listenMode(std::uint16_t port, const ClusterFlags &cluster,
           const RobustnessFlags &robustness)
{
    using namespace opdvfs;

    // A deliberately small GA budget: the smoke flow exercises the
    // serving path (cold vs exact hit over the wire), not search
    // quality.
    serve::ServiceOptions options;
    options.pipeline.warmup_seconds = 2.0;
    options.pipeline.profile_freqs_mhz = {1000.0, 1800.0};
    options.pipeline.ga.population = 30;
    options.pipeline.ga.generations = 24;
    options.workers = 2;

    net::ServerOptions server_options;
    server_options.port = port;
    server_options.reactor_threads = robustness.reactor_threads;

    std::shared_ptr<shard::SharedShardMap> shard_map;
    std::shared_ptr<net::ShardPeers> peers;
    std::shared_ptr<net::ShardReplicator> replicator;
    std::shared_ptr<net::HealthMonitor> health;
    if (cluster.enabled) {
        // The map starts empty: ownership checks stay off until the
        // self-join below fills in the bound port.
        shard_map = std::make_shared<shard::SharedShardMap>();
        peers = std::make_shared<net::ShardPeers>(cluster.shard_id,
                                                  shard_map);
        options.peer_donor_lookup = net::makePeerDonorLookup(peers);
        server_options.shard_id = cluster.shard_id;
        server_options.shard_map = shard_map;
        server_options.peers = peers;
        if (robustness.replication_factor > 1) {
            net::ReplicatorOptions replication;
            replication.replication_factor =
                robustness.replication_factor;
            replicator = std::make_shared<net::ShardReplicator>(
                cluster.shard_id, shard_map, replication);
            server_options.replicator = replicator;
        }
        health = std::make_shared<net::HealthMonitor>(cluster.shard_id,
                                                      shard_map);
        server_options.health = health;
    }

    serve::StrategyService service(options);

    std::unique_ptr<serve::CachePersister> persister;
    if (robustness.persistence()) {
        // Rehydrate before serving: every entry the previous
        // incarnation persisted answers as a local hit from request
        // one.  The printed line is scraped by the CI restart drill.
        serve::RestoreReport restored = serve::restoreServiceCache(
            service, robustness.snapshot_path, robustness.wal_path);
        std::cout << "restored " << restored.restored << " entries"
                  << " (snapshot " << restored.snapshot_entries
                  << ", wal " << restored.wal_entries
                  << (restored.wal_truncated ? ", wal tail truncated"
                                             : "")
                  << ")" << std::endl;
        serve::CachePersister::Options persist;
        persist.snapshot_path = robustness.snapshot_path;
        persist.wal_path = robustness.wal_path;
        persist.snapshot_interval_seconds =
            robustness.snapshot_interval_seconds;
        persister = std::make_unique<serve::CachePersister>(
            persist, [&service] {
                serve::CacheSnapshot snapshot;
                snapshot.model_epoch = service.modelEpoch();
                snapshot.entries = service.snapshotCache();
                return snapshot;
            });
    }
    if (persister || replicator) {
        // One listener fans the owned insert out to both sinks; the
        // service fires it off its worker threads, and both hooks are
        // bounded and non-blocking.
        service.setInsertListener(
            [&persister, &replicator](const serve::CacheEntry &entry) {
                if (persister)
                    persister->onInsert(entry);
                if (replicator)
                    replicator->onInsert(entry);
            });
    }

    net::StrategyServer server(service, server_options);
    server.start();

    if (cluster.enabled) {
        // Self-join with the *bound* port (resolves --listen 0), then
        // add the configured peers.  Every fleet member builds the
        // same membership, so they agree on ownership even though
        // their locally-counted epochs may differ.
        shard_map->join({cluster.shard_id,
                         "127.0.0.1:" + std::to_string(server.port())});
        for (const auto &peer : cluster.peers)
            shard_map->join(peer);
        std::cout << "shard " << cluster.shard_id << " of "
                  << shard_map->snapshot()->size() << std::endl;
    }
    std::cout << "reactors " << robustness.reactor_threads << std::endl;
    std::cout << "listening on 127.0.0.1:" << server.port() << std::endl;

    std::signal(SIGINT, requestStop);
    std::signal(SIGTERM, requestStop);
    while (!g_stop_requested)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    std::cout << "draining..." << std::endl;
    server.stop();
    if (replicator)
        replicator->stop();
    if (health)
        health->stop();
    if (persister) {
        // Graceful exit: drain the WAL queue and write a final
        // snapshot, so a clean restart restores the complete cache.
        persister->stop(true);
        std::cout << "final snapshot written" << std::endl;
    }
    std::cout << server.statsText();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace opdvfs;

    if (argc >= 2 && std::string(argv[1]) == "--listen") {
        constexpr const char *kUsage =
            "usage: strategy_server [--listen <port> "
            "[--shard-id <id>] [--peers <id>=<host:port>[,...]] "
            "[--snapshot <path> --wal <path>] "
            "[--snapshot-interval <seconds>] [--replication <R>] "
            "[--reactors <N>]]\n";
        int port = argc >= 3 ? std::atoi(argv[2]) : 0;
        if (port < 0 || port > 65535) {
            std::cerr << kUsage;
            return 2;
        }
        ClusterFlags cluster;
        RobustnessFlags robustness;
        for (int arg = 3; arg < argc; ++arg) {
            std::string flag = argv[arg];
            if (flag == "--shard-id" && arg + 1 < argc) {
                long id = std::atol(argv[++arg]);
                if (id <= 0) {
                    std::cerr << kUsage;
                    return 2;
                }
                cluster.enabled = true;
                cluster.shard_id = static_cast<std::uint32_t>(id);
            } else if (flag == "--peers" && arg + 1 < argc) {
                if (!parsePeerList(argv[++arg], &cluster.peers)) {
                    std::cerr << kUsage;
                    return 2;
                }
            } else if (flag == "--snapshot" && arg + 1 < argc) {
                robustness.snapshot_path = argv[++arg];
            } else if (flag == "--wal" && arg + 1 < argc) {
                robustness.wal_path = argv[++arg];
            } else if (flag == "--snapshot-interval" && arg + 1 < argc) {
                robustness.snapshot_interval_seconds =
                    std::atof(argv[++arg]);
                if (robustness.snapshot_interval_seconds <= 0.0) {
                    std::cerr << kUsage;
                    return 2;
                }
            } else if (flag == "--replication" && arg + 1 < argc) {
                long factor = std::atol(argv[++arg]);
                if (factor <= 0) {
                    std::cerr << kUsage;
                    return 2;
                }
                robustness.replication_factor =
                    static_cast<std::size_t>(factor);
            } else if (flag == "--reactors" && arg + 1 < argc) {
                long reactors = std::atol(argv[++arg]);
                if (reactors <= 0) {
                    std::cerr << kUsage;
                    return 2;
                }
                robustness.reactor_threads =
                    static_cast<std::size_t>(reactors);
            } else {
                std::cerr << kUsage;
                return 2;
            }
        }
        if (!cluster.peers.empty() && !cluster.enabled) {
            std::cerr << "--peers requires --shard-id\n" << kUsage;
            return 2;
        }
        if (robustness.snapshot_path.empty()
            != robustness.wal_path.empty()) {
            std::cerr << "--snapshot and --wal go together\n" << kUsage;
            return 2;
        }
        if (robustness.replication_factor > 1 && !cluster.enabled) {
            std::cerr << "--replication requires --shard-id\n" << kUsage;
            return 2;
        }
        return listenMode(static_cast<std::uint16_t>(port), cluster,
                          robustness);
    }

    npu::NpuConfig chip;
    npu::MemorySystem memory(chip.memory);

    // Configure the service: 4 workers, a modest GA budget, and
    // warm-started searches running a third of that budget.
    serve::ServiceOptions options;
    options.pipeline.chip = chip;
    options.pipeline.warmup_seconds = 4.0;
    options.pipeline.profile_freqs_mhz = {1000.0, 1800.0};
    options.pipeline.ga.population = 60;
    options.pipeline.ga.generations = 80;
    options.workers = 4;
    options.warm_generation_fraction = 1.0 / 3.0;
    serve::StrategyService service(options);

    auto transformer = [&memory](int seq) {
        models::TransformerConfig model;
        model.name = "tenant-transformer-" + std::to_string(seq);
        model.layers = 2;
        model.hidden = 1024;
        model.heads = 8;
        model.seq = seq;
        return models::buildTransformerTraining(memory, model, 7);
    };

    // The request stream arrives in waves: a tenant submits a
    // transformer twice at once (long-running jobs re-request on
    // restart; the duplicates coalesce), later scales it up (warm
    // start from the cached strategy), and another tenant brings an
    // unrelated model, then resubmits it (exact hit).
    auto report = [](const models::Workload &workload,
                     serve::StrategyResponse response) {
        std::cout << workload.name << "\n"
                  << "  provenance " << provenanceToken(response.provenance)
                  << ", " << response.generations_run
                  << " generations run, " << response.generations_saved
                  << " saved, " << response.service_seconds << " s\n"
                  << "  " << response.strategy.mhz_per_stage.size()
                  << " stages, " << response.strategy.triggerCount()
                  << " SetFreq triggers, score "
                  << response.ga.best_score << "\n";
    };

    std::cout << "submitting to " << options.workers << " workers\n\n";
    serve::StrategyRequest request;
    request.workload = transformer(256);
    auto original = service.submit(request);
    auto duplicate = service.submit(request);
    report(request.workload, original.get());
    report(request.workload, duplicate.get());

    request.workload = transformer(288);
    report(request.workload, service.submit(request).get());

    request.workload = models::buildWorkload("ResNet50", memory, 7);
    report(request.workload, service.submit(request).get());
    report(request.workload, service.submit(request).get());

    serve::ServiceStats stats = service.stats();
    std::cout << "\nservice stats:\n"
              << "  requests      " << stats.requests << "\n"
              << "  exact hits    " << stats.exact_hits << "\n"
              << "  coalesced     " << stats.coalesced << "\n"
              << "  warm hits     " << stats.warm_hits << "\n"
              << "  cold misses   " << stats.cold_misses << "\n"
              << "  cache size    " << stats.cache_size << "\n"
              << "  gens saved    " << stats.generations_saved << "\n"
              << "  p50 latency   " << stats.p50_service_seconds << " s\n"
              << "  p95 latency   " << stats.p95_service_seconds << " s\n";
    return 0;
}
